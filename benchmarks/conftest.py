"""Benchmark-suite configuration.

Every figure benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1)``): these are end-to-end experiment
regenerations whose value is the printed rows/series and the shape
assertions, not statistical timing.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows each figure's table as the paper reports it.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment once under the benchmark clock and return its
    result object."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
