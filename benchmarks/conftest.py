"""Benchmark-suite configuration.

Every figure benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1)``): these are end-to-end experiment
regenerations whose value is the printed rows/series and the shape
assertions, not statistical timing.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows each figure's table as the paper reports it.

Two suite-wide options thread the offline fastpath through every
figure experiment (results are bit-identical either way)::

    pytest benchmarks/ --benchmark-only --exp-workers 4 \\
        --exp-cache-dir /tmp/tunio-cache

``--exp-workers N`` fans each figure's independent tuning runs onto a
process pool; ``--exp-cache-dir DIR`` persists evaluated traces so
repeat benchmark sessions start warm.
"""

import inspect

import pytest

from repro.analysis.runner import ExperimentRunner


def pytest_addoption(parser):
    group = parser.getgroup("tunio experiments")
    group.addoption(
        "--exp-workers", type=int, default=None, metavar="N",
        help="process-pool size for each figure's independent tuning "
        "runs (default: serial; results are bit-identical)",
    )
    group.addoption(
        "--exp-cache-dir", default=None, metavar="DIR",
        help="persistent trace-cache directory shared by workers and "
        "across benchmark sessions",
    )


@pytest.fixture
def exp_runner(request) -> ExperimentRunner:
    """The suite-wide experiment runner built from --exp-workers /
    --exp-cache-dir."""
    return ExperimentRunner(
        workers=request.config.getoption("--exp-workers"),
        cache_dir=request.config.getoption("--exp-cache-dir"),
    )


@pytest.fixture
def run_once(benchmark, exp_runner):
    """Run an experiment once under the benchmark clock and return its
    result object.  Experiments that accept a ``runner`` kwarg receive
    the suite-wide :class:`ExperimentRunner` automatically."""

    def runner(fn, *args, **kwargs):
        if "runner" not in kwargs and "runner" in inspect.signature(fn).parameters:
            kwargs["runner"] = exp_runner
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
