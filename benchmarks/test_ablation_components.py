"""Ablation: what each TunIO component buys on its own.

DESIGN.md calls out three separable design choices; this bench runs the
FLASH pipeline with each component toggled individually and prints the
resulting (bandwidth, tuning-minutes, RoTI) triple:

* baseline      -- HSTuner, full budget, full application;
* +kernel       -- Application I/O Discovery only;
* +subsets      -- Smart Configuration Generation only;
* +stopper      -- RL Early Stopping only;
* full TunIO    -- all three (kernel + subsets + stopper).
"""

import numpy as np
import pytest

from repro.analysis import make_context
from repro.core.early_stopping import RLStopper
from repro.core.pipeline import TunIOTuner
from repro.discovery import DiscoveryOptions, discover_io
from repro.tuners import HSTuner, NoStop
from repro.workloads import flash
from repro.workloads.sources import canonical_hints, load_source


def test_ablation_components(run_once):
    def run_ablation():
        ctx = make_context(0)
        app = flash()
        kernel = discover_io(
            load_source("flash"), "flash",
            DiscoveryOptions(hints=canonical_hints("flash")),
        ).to_workload()
        eval_sim = ctx.simulator_for(app.n_nodes, salt=400)
        baseline_perf = eval_sim.evaluate(
            app, __import__("repro").StackConfiguration.default()
        ).perf_mbps

        def variant(name, target, use_subsets, use_stopper, salt):
            sim = ctx.simulator_for(app.n_nodes, salt=salt)
            rng = ctx.rng(salt)
            agents = ctx.fresh_agents()
            stopper = (
                RLStopper(agents.early_stopper, ctx.normalizer)
                if use_stopper
                else NoStop()
            )
            if use_subsets:
                tuner = TunIOTuner(
                    sim, smart_config=agents.smart_config, stopper=stopper, rng=rng
                )
            else:
                tuner = HSTuner(sim, stopper=stopper, rng=rng)
            res = tuner.tune(target, max_iterations=40)
            app_perf = eval_sim.evaluate(app, res.best_config).perf_mbps
            roti = (app_perf - baseline_perf) / max(res.total_minutes, 1e-9)
            return name, app_perf, res.total_minutes, roti

        return [
            # The kernel variant shares the baseline's seed so the two
            # runs walk the same GA trajectory and differ only in
            # evaluation cost -- the clean component isolation.
            variant("baseline (HSTuner)", app, False, False, 401),
            variant("+kernel", kernel, False, False, 401),
            variant("+subsets", app, True, False, 403),
            variant("+stopper", app, False, True, 404),
            variant("full TunIO + kernel", kernel, True, True, 405),
        ]

    rows = run_once(run_ablation)
    print("\nAblation on FLASH (evaluated on the full application):")
    print(f"{'variant':22s} {'perf GB/s':>10s} {'minutes':>9s} {'RoTI':>7s}")
    for name, perf, minutes, roti in rows:
        print(f"{name:22s} {perf / 1000:10.2f} {minutes:9.0f} {roti:7.2f}")

    by = {name: (perf, minutes, roti) for name, perf, minutes, roti in rows}
    base = by["baseline (HSTuner)"]
    # The kernel makes the identical GA trajectory cheaper to evaluate.
    assert by["+kernel"][1] < base[1]
    assert by["+kernel"][2] > base[2]
    # The stopper trades a full budget for a far better return.
    assert by["+stopper"][1] < base[1]
    assert by["+stopper"][2] > base[2]
    # The full pipeline spends a fraction of the baseline's budget and
    # still returns more bandwidth per tuning minute.
    assert by["full TunIO + kernel"][1] < 0.5 * base[1]
    assert by["full TunIO + kernel"][2] > base[2]
