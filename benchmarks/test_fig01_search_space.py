"""Figure 1: parameter-permutation growth across I/O stack compositions.

Paper claim: stacks composed of multiple I/O libraries have astronomically
many configuration permutations (e.g. HDF5+MPI ~ 3.81e21 with two values
per discrete and five per continuous parameter), and the evaluated
12-parameter space alone has over 2.18 billion.
"""

from repro.analysis import fig01_search_space


def test_fig01_search_space(run_once):
    result = run_once(fig01_search_space)
    print("\n" + result.report())

    stacks = dict(result.stack_rows)
    # Same order of magnitude as the paper's HDF5+MPI example.
    assert 1e20 < stacks["HDF5+MPI"] < 1e23
    # Composition strictly multiplies the space.
    assert stacks["HDF5+MPI+Hermes"] > stacks["HDF5+MPI"] > stacks["HDF5"]
    # The tuned space matches the paper's "over 2.18 billion".
    assert result.tuned_space_permutations > 2_180_000_000
