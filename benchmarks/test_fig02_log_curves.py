"""Figure 2: HSTuner tuning curves follow a logarithmic shape.

Paper claim: tuning HACC, FLASH and VPIC with HSTuner produces
bandwidth-vs-iteration curves where "performance is gained initially and
attenuates" -- the log-curve premise the early stopper is trained on.
"""

from repro.analysis import fig02_log_curves


def test_fig02_log_curves(run_once):
    result = run_once(fig02_log_curves, seed=0)
    print("\n" + result.report())

    for name, fit in result.log_fit_r2.items():
        assert fit > 0.4, f"{name} curve is not log-shaped (R^2={fit:.2f})"
    for name, res in result.results.items():
        series = res.perf_series()
        # Diminishing returns: the first half of the run captures most
        # of the total gain.
        half = series[len(series) // 2] - res.baseline_perf
        total = series[-1] - res.baseline_perf
        assert half > 0.6 * total, name
        assert res.best_perf > 2 * res.baseline_perf, name
