"""Figure 8(a): RoTI with and without Application I/O Discovery.

Paper claim: tuning MACSio's I/O kernel instead of the full application
raises peak RoTI from 2.47 to 2.87 MB/s/min and cuts time-to-peak by 14%
(639 -> 549 minutes), because each objective evaluation skips the
non-I/O work.
"""

from repro.analysis import fig08_discovery


def test_fig08a_discovery_roti(run_once):
    result = run_once(fig08_discovery, seed=0)
    print("\n" + result.report())

    # The kernel's RoTI peak exceeds the full application's.
    assert result.kernel_curve.peak > result.app_curve.peak
    # Time-to-peak shrinks (paper: -14%; the saving is the evaluation-cost
    # share of the sliced-away compute and logging).
    assert result.kernel_curve.peak_minutes < result.app_curve.peak_minutes
    saving = 1 - result.kernel_curve.peak_minutes / result.app_curve.peak_minutes
    assert 0.05 < saving < 0.5
    # Both reach the same tuned bandwidth (same GA trajectory).
    assert abs(
        result.kernel_result.best_perf - result.app_result.best_perf
    ) < 0.15 * result.app_result.best_perf
