"""Figure 8(b): RoTI with loop reduction.

Paper claim: reducing the kernel's I/O loop to 1% of its iterations
boosts peak RoTI from 2.47 to 23.30 (>9x) while the reported bandwidth
stays 97.10% accurate versus the full application.
"""

from repro.analysis import fig08_discovery


def test_fig08b_loop_reduction(run_once):
    result = run_once(fig08_discovery, seed=0)
    print("\n" + result.report())

    boost = result.reduced_curve.peak / result.app_curve.peak
    assert boost > 9.0, f"loop-reduction RoTI boost only {boost:.1f}x (paper: >9x)"
    # Bandwidth reported by the reduced kernel stays close to the truth
    # (paper: 97.10% accurate).
    assert result.reduced_bandwidth_accuracy > 0.9
    # Total tuning time collapses by an order of magnitude.
    assert result.reduced_result.total_minutes < result.app_result.total_minutes / 5
