"""Figure 8(c): kernel fidelity versus the original application.

Paper claims (absolute percentage error vs MACSio):
  bytes written -- kernel 0.0002%, reduced kernel 0.19%;
  write operations -- kernel 19.05% (dropped logging writes), reduced
  kernel 4.87% (extrapolation overcounts the heavier first iteration,
  compensating part of the logging undercount).
"""

from repro.analysis import fig08c_kernel_similarity


def test_fig08c_kernel_similarity(run_once):
    result = run_once(fig08c_kernel_similarity)
    print("\n" + result.report())

    # Bytes written: both kernels nearly exact.
    assert result.kernel_bytes_error < 0.005
    assert result.reduced_bytes_error < 0.01
    # Write ops: the kernel misses the ~19% logging share...
    assert 0.15 < result.kernel_ops_error < 0.25
    # ...and the reduced kernel's overcount compensates part of it.
    assert result.reduced_ops_error < result.kernel_ops_error
