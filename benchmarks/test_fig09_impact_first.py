"""Figure 9: Impact-First Tuning on FLASH.

Paper claim: with Smart Configuration Generation the pipeline reaches
2.3 GB/s at iteration 6 versus iteration 43 without it (-86%), and the
final configuration changes 7 of 12 parameters from their defaults.
"""

from repro.analysis import fig09_impact_first


def test_fig09_impact_first(run_once):
    result = run_once(fig09_impact_first, seed=0, repeats=3)
    print("\n" + result.report())

    assert result.impact_first_iteration is not None
    assert result.baseline_iteration is not None
    # Impact-first reaches the target in no more iterations than the
    # exhaustive pipeline (median over repeats; the paper reports -86%,
    # our GA baseline is stronger so the gap is smaller but one-sided).
    assert result.impact_first_iteration <= result.baseline_iteration
    # A minority of parameters carries the tune (paper: 7 of 12).
    assert 2 <= result.changed_parameters <= 9
