"""Figure 10(a): early stopping on a 50-generation HACC run.

Paper claim: TunIO's stopper ends tuning at generation 35 of 50 with
2.2 GB/s (~4x the untuned 0.55 GB/s) and rides out the generation-10..20
plateau; the 5%/5-iteration heuristic is trapped there, stopping at 14
with only 1.2 GB/s.

Seed 8 is the bundled representative run exhibiting the plateau trap.
"""

from repro.analysis import fig10_early_stopping


def outcome(result, name):
    return next(o for o in result.outcomes if o.name.startswith(name))


def test_fig10a_early_stopping(run_once):
    result = run_once(fig10_early_stopping, seed=8)
    print("\n" + result.report())

    tunio = outcome(result, "tunio")
    heuristic = outcome(result, "heuristic")

    # The heuristic stops first...
    assert heuristic.iteration < tunio.iteration
    # ...and TunIO ends with strictly more bandwidth (paper: 2.2 vs 1.2).
    assert tunio.perf_mbps > 1.2 * heuristic.perf_mbps
    # TunIO still stops before the budget runs out.
    assert tunio.iteration < len(result.full_run.history) - 1
    # ~4x over untuned (paper: 4x).
    gain = tunio.perf_mbps / result.full_run.baseline_perf
    assert gain > 3.0
