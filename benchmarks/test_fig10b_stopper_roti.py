"""Figure 10(b): RoTI of the stopping methods on HACC.

Paper claim (fraction of the best possible return): TunIO 90.5% >
Maximizing-Performance oracle 86.1% > 50-iteration budget 77.9% >
heuristic 59.3%.  The ordering -- TunIO beats every practical
alternative and the full budget is the worst way to spend time -- is
the shape under test.
"""

from repro.analysis import fig10_early_stopping


def test_fig10b_stopper_roti(run_once):
    result = run_once(fig10_early_stopping, seed=8)
    print("\n" + result.report())

    by_name = {o.name.split("-")[0]: o for o in result.outcomes}
    tunio = by_name["tunio"]
    heuristic = by_name["heuristic"]
    budget = by_name["full"]

    # TunIO's return beats the heuristic's and the exhausted budget's.
    assert tunio.roti > heuristic.roti
    assert tunio.roti > budget.roti
    # The perfect stop is an upper bound on everything.
    for o in result.outcomes:
        assert o.roti <= result.perfect.roti * 1.001
    # TunIO spends less time than the full budget (paper: 744 vs 800 min).
    assert tunio.minutes < budget.minutes
