"""Figure 11(a): end-to-end tuning of BD-CATS (500 nodes, 1600 procs).

Paper claims: TunIO converges by iteration ~6 and stops at ~9, spending
~468 minutes versus HSTuner-NoStop's 1750 (-73%); HSTuner-NoStop
eventually edges out TunIO's bandwidth by ~3% after the full budget;
HSTuner with the heuristic stop strands at ~54% of TunIO's bandwidth.
"""

from repro.analysis import fig11_pipeline


def test_fig11a_pipeline_bandwidth(run_once):
    result = run_once(fig11_pipeline, seed=0)
    print("\n" + result.report())

    tunio = result.get("tunio")
    nostop = result.get("hstuner-nostop")
    heuristic = result.get("hstuner-heuristic")

    # TunIO stops early (paper: iteration 9 of 50).
    assert len(tunio.result.history) <= 15
    # Massive tuning-time saving versus the no-stop baseline (paper ~73%).
    saving = 1 - tunio.result.total_minutes / nostop.result.total_minutes
    assert saving > 0.5, f"tuning-time saving only {saving:.0%}"
    # TunIO's found configuration is competitive with the full-budget
    # baseline's on the real application (paper: within ~3%).
    assert tunio.app_perf_mbps > 0.6 * nostop.app_perf_mbps
    # Everyone improves enormously over the untuned default.
    assert tunio.app_perf_mbps > 50 * result.app_baseline_mbps
