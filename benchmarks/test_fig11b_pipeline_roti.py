"""Figure 11(b): RoTI of the end-to-end pipelines on BD-CATS.

Paper claims: TunIO's RoTI is 215 versus HSTuner-Heuristic's 41.6
(~5x); running on the I/O kernel instead of the application lifts TunIO
to 250 and HSTuner-Heuristic to 91.6.
"""

from repro.analysis import fig11_pipeline


def test_fig11b_pipeline_roti(run_once):
    result = run_once(fig11_pipeline, seed=0)
    print("\n" + result.report())

    tunio = result.get("tunio")
    heuristic = result.get("hstuner-heuristic")
    tunio_kernel = result.get("tunio+kernel")
    nostop = result.get("hstuner-nostop")

    # TunIO returns far more bandwidth per tuning minute than either
    # HSTuner variant (paper: 215 vs 41.6).
    assert tunio.roti > 2 * heuristic.roti
    assert tunio.roti > 2 * nostop.roti
    # The I/O kernel boosts the return further (paper: 250 vs 215).
    assert tunio_kernel.roti > tunio.roti
    # Kernel-based tuning helps the no-stop baseline too (paper: 91.6
    # for heuristic+kernel vs 41.6 plain).
    assert result.get("hstuner-nostop+kernel").roti > nostop.roti
