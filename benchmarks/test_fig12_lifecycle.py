"""Figure 12: BD-CATS lifecycle viability.

Paper claims: TunIO tunes BD-CATS in 403 minutes vs H5Tuner's 1560; its
tuning becomes worthwhile after 1394 executions vs 5274 (-73.6%); TunIO
keeps the lower lifecycle total until ~3.99M executions, where
H5Tuner's marginally better configuration finally pays for its tuning
cost.
"""

from repro.analysis import fig12_lifecycle


def test_fig12_lifecycle(run_once):
    result = run_once(fig12_lifecycle, seed=0)
    print("\n" + result.report())

    # TunIO tunes much faster (paper: 403 vs 1560 minutes).
    assert result.tunio.tuning_minutes < 0.5 * result.hstuner.tuning_minutes
    # Both tuned lifecycles run faster per execution than no tuning.
    assert result.tunio.run_minutes < result.untuned.run_minutes
    assert result.hstuner.run_minutes < result.untuned.run_minutes
    # Viability points exist and TunIO's comes earlier (paper: 1394 vs
    # 5274 executions).
    assert result.tunio_viability is not None
    assert result.hstuner_viability is not None
    assert result.tunio_viability < result.hstuner_viability
    # TunIO holds the advantage for a long (but finite or infinite)
    # stretch; if H5Tuner's config is better, a crossover exists.
    if result.hstuner.run_minutes < result.tunio.run_minutes:
        assert result.tunio_advantage_until is not None
        assert result.tunio_advantage_until > result.tunio_viability
