"""Micro-benchmarks: the hot paths that make tuning runs fast.

These use pytest-benchmark statistically (many rounds): a full GA tuning
experiment only stays interactive because a single stack evaluation is
sub-millisecond and a discovery pass is tens of milliseconds.
"""

import numpy as np
import pytest

from repro.discovery import DiscoveryOptions, discover_io
from repro.iostack import IOStackSimulator, NoiseModel, StackConfiguration, cori
from repro.workloads import flash
from repro.workloads.sources import canonical_hints, load_source


@pytest.fixture(scope="module")
def sim():
    return IOStackSimulator(cori(4), NoiseModel(seed=0))


def test_single_evaluation_speed(benchmark, sim):
    w = flash()
    config = StackConfiguration.default()
    result = benchmark(lambda: sim.evaluate(w, config))
    assert result.perf_mbps > 0
    assert benchmark.stats["mean"] < 0.02  # < 20 ms per 3-run evaluation


def test_discovery_pipeline_speed(benchmark):
    source = load_source("macsio")
    options = DiscoveryOptions(hints=canonical_hints("macsio"))
    kernel = benchmark(lambda: discover_io(source, "macsio", options))
    assert kernel.kept_line_count > 0
    assert benchmark.stats["mean"] < 0.5


def test_config_encode_decode_speed(benchmark):
    from repro.iostack import TUNED_SPACE

    rng = np.random.default_rng(0)
    config = StackConfiguration.random(rng)
    genome = config.genome()

    def roundtrip():
        return StackConfiguration.from_genome(TUNED_SPACE, genome)

    assert benchmark(roundtrip) == config


def test_nn_train_batch_speed(benchmark, rng=np.random.default_rng(0)):
    from repro.rl.nn import MLP

    net = MLP([16, 32, 32, 4], rng)
    x = rng.normal(size=(64, 16))
    y = rng.normal(size=(64, 4))
    benchmark(lambda: net.train_batch(x, y))
    assert benchmark.stats["mean"] < 0.01
