"""Micro-benchmarks: the hot paths that make tuning runs fast.

These use pytest-benchmark statistically (many rounds): a full GA tuning
experiment only stays interactive because a single stack evaluation is
sub-millisecond and a discovery pass is tens of milliseconds.
"""

import numpy as np
import pytest

from repro.discovery import DiscoveryOptions, discover_io
from repro.iostack import IOStackSimulator, NoiseModel, StackConfiguration, cori
from repro.workloads import flash
from repro.workloads.sources import canonical_hints, load_source


@pytest.fixture(scope="module")
def sim():
    return IOStackSimulator(cori(4), NoiseModel(seed=0))


def test_single_evaluation_speed(benchmark, sim):
    w = flash()
    config = StackConfiguration.default()
    result = benchmark(lambda: sim.evaluate(w, config))
    assert result.perf_mbps > 0
    # the trace/replay fastpath halved the pre-fastpath 20 ms budget:
    # one stack traversal + 3 cheap replays instead of 3 traversals
    assert benchmark.stats["mean"] < 0.01


def test_discovery_pipeline_speed(benchmark):
    source = load_source("macsio")
    options = DiscoveryOptions(hints=canonical_hints("macsio"))
    kernel = benchmark(lambda: discover_io(source, "macsio", options))
    assert kernel.kept_line_count > 0
    assert benchmark.stats["mean"] < 0.5


def test_config_encode_decode_speed(benchmark):
    from repro.iostack import TUNED_SPACE

    rng = np.random.default_rng(0)
    config = StackConfiguration.random(rng)
    genome = config.genome()

    def roundtrip():
        return StackConfiguration.from_genome(TUNED_SPACE, genome)

    assert benchmark(roundtrip) == config


def test_nn_train_batch_speed(benchmark, rng=np.random.default_rng(0)):
    from repro.rl.nn import MLP

    net = MLP([16, 32, 32, 4], rng)
    x = rng.normal(size=(64, 16))
    y = rng.normal(size=(64, 4))
    benchmark(lambda: net.train_batch(x, y))
    assert benchmark.stats["mean"] < 0.01


def test_cached_evaluation_speed(benchmark, sim):
    """A warm cache hit (fingerprint + dict lookup + 3 replays) must be
    an order of magnitude cheaper than what a 3-run evaluation cost
    before the fastpath: three full stack traversals."""
    import time

    from repro.iostack import EvaluationCache

    w = flash()
    config = StackConfiguration.default()

    legacy_cold = float("inf")
    for _ in range(5):  # best-of-5: the seed's per-repeat loop shape
        start = time.perf_counter()
        for _ in range(3):
            sim.run(w, config)
        legacy_cold = min(legacy_cold, time.perf_counter() - start)

    fast_cold = float("inf")
    for _ in range(5):  # best-of-5: fastpath miss (1 traversal, 3 replays)
        start = time.perf_counter()
        sim.evaluate(w, config)
        fast_cold = min(fast_cold, time.perf_counter() - start)

    cache = EvaluationCache()
    cache.evaluate(sim, w, config)  # warm the entry
    result = benchmark(lambda: cache.evaluate(sim, w, config))
    assert result.perf_mbps > 0
    assert cache.hit_rate > 0.9
    # median keeps scheduler outliers out of the 10x claim
    assert benchmark.stats["median"] < legacy_cold / 10
    assert benchmark.stats["median"] < fast_cold / 3


def test_disk_cache_warm_vs_cold(tmp_path):
    """Warm-starting from a populated ``--cache-dir`` must beat the cold
    build by >= 5x on the workloads the disk cache targets: phase-heavy
    campaigns where tracing, not replay, dominates.

    A 64-phase synthetic campaign stands in for them.  Cold = key +
    stack traversal + store; warm = key + packed-``.npz`` load.  Small
    single-phase workloads trace so cheaply that disk I/O is a wash
    there -- which is fine, the in-memory cache already covers them.
    """
    import shutil
    import time

    from repro.iostack import EvaluationCache
    from repro.iostack.diskcache import DiskCacheBackend
    from repro.iostack.phase import IOPhase
    from repro.iostack.requests import MetadataStream, RequestStream
    from repro.workloads.base import LoopGroup, Workload

    def campaign(n_phases=64):
        phases = []
        for i in range(n_phases):
            stream = RequestStream.uniform(
                "write", 1024 * 1024, 64 * (i % 7 + 1), 64,
                contiguity=0.8, interleave=0.4,
            )
            meta = MetadataStream(total_ops=8 * 64, n_procs=64)
            phases.append(
                IOPhase(
                    name=f"dump{i}", compute_seconds=2.0, data=(stream,),
                    metadata=meta, chunked=True, chunk_size=1024 * 1024,
                    working_set_per_proc=8 * 1024 * 1024,
                )
            )
        return Workload(
            name="campaign", n_procs=64, n_nodes=2,
            loops=(LoopGroup("loop", 1, tuple(phases)),),
        )

    workload = campaign()
    sim = IOStackSimulator(cori(64), NoiseModel(seed=5))
    configs = [StackConfiguration.default()] + [
        StackConfiguration.random(np.random.default_rng(i)) for i in range(7)
    ]
    cache_dir = tmp_path / "traces"

    def acquire_all():
        cache = EvaluationCache(backend=DiskCacheBackend(cache_dir))
        start = time.perf_counter()
        for config in configs:
            cache.get_trace(sim, workload, config)
        return time.perf_counter() - start, cache.backend.stats()

    cold = warm = float("inf")
    for _ in range(3):  # best-of-3: scheduler noise out of the ratio
        shutil.rmtree(cache_dir, ignore_errors=True)
        elapsed, stats = acquire_all()
        assert stats.stores == len(configs)
        cold = min(cold, elapsed)
        elapsed, stats = acquire_all()
        assert stats.hits == len(configs) and stats.stores == 0
        warm = min(warm, elapsed)
    assert warm < cold / 5, f"warm {warm * 1e3:.1f}ms vs cold {cold * 1e3:.1f}ms"


def test_batched_pretraining_speedup():
    """The vectorized early-stopper trainer must beat the per-sample
    loop by >= 3x on identical seeds (measured ~4.4x: matrix curve
    generation + batched episodes + one train_batch per epoch)."""
    import time

    from repro.core.early_stopping import EarlyStoppingAgent

    def train(batched):
        rng = np.random.default_rng(7)
        agent = EarlyStoppingAgent(rng=rng)
        start = time.perf_counter()
        report = agent.train_offline(rng=rng, batched=batched)
        return time.perf_counter() - start, report

    serial_s, serial_report = train(batched=False)
    batched_s, batched_report = train(batched=True)
    # Both arms must have done the same job, not stopped early.
    assert serial_report.stagnated and batched_report.stagnated
    assert batched_s < serial_s / 3, (
        f"batched {batched_s:.2f}s vs serial {serial_s:.2f}s"
    )


def test_tuning_run_wall_clock(sim):
    """A 10-generation tuning run with the full fastpath stays
    interactive (the seed needed ~3 stack traversals per evaluation)."""
    import time

    from repro.iostack import EvaluationCache
    from repro.tuners import HSTuner, NoStop

    tuner = HSTuner(
        sim,
        stopper=NoStop(),
        rng=np.random.default_rng(0),
        cache=EvaluationCache(),
    )
    start = time.perf_counter()
    result = tuner.tune(flash(), max_iterations=10)
    elapsed = time.perf_counter() - start
    assert result.best_perf > 0
    assert len(result.history) == 10
    assert elapsed < 2.0  # ~60 evaluations; well under interactive budget
