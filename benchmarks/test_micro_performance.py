"""Micro-benchmarks: the hot paths that make tuning runs fast.

These use pytest-benchmark statistically (many rounds): a full GA tuning
experiment only stays interactive because a single stack evaluation is
sub-millisecond and a discovery pass is tens of milliseconds.
"""

import numpy as np
import pytest

from repro.discovery import DiscoveryOptions, discover_io
from repro.iostack import IOStackSimulator, NoiseModel, StackConfiguration, cori
from repro.workloads import flash
from repro.workloads.sources import canonical_hints, load_source


@pytest.fixture(scope="module")
def sim():
    return IOStackSimulator(cori(4), NoiseModel(seed=0))


def test_single_evaluation_speed(benchmark, sim):
    w = flash()
    config = StackConfiguration.default()
    result = benchmark(lambda: sim.evaluate(w, config))
    assert result.perf_mbps > 0
    # the trace/replay fastpath halved the pre-fastpath 20 ms budget:
    # one stack traversal + 3 cheap replays instead of 3 traversals
    assert benchmark.stats["mean"] < 0.01


def test_discovery_pipeline_speed(benchmark):
    source = load_source("macsio")
    options = DiscoveryOptions(hints=canonical_hints("macsio"))
    kernel = benchmark(lambda: discover_io(source, "macsio", options))
    assert kernel.kept_line_count > 0
    assert benchmark.stats["mean"] < 0.5


def test_config_encode_decode_speed(benchmark):
    from repro.iostack import TUNED_SPACE

    rng = np.random.default_rng(0)
    config = StackConfiguration.random(rng)
    genome = config.genome()

    def roundtrip():
        return StackConfiguration.from_genome(TUNED_SPACE, genome)

    assert benchmark(roundtrip) == config


def test_nn_train_batch_speed(benchmark, rng=np.random.default_rng(0)):
    from repro.rl.nn import MLP

    net = MLP([16, 32, 32, 4], rng)
    x = rng.normal(size=(64, 16))
    y = rng.normal(size=(64, 4))
    benchmark(lambda: net.train_batch(x, y))
    assert benchmark.stats["mean"] < 0.01


def test_cached_evaluation_speed(benchmark, sim):
    """A warm cache hit (fingerprint + dict lookup + 3 replays) must be
    an order of magnitude cheaper than what a 3-run evaluation cost
    before the fastpath: three full stack traversals."""
    import time

    from repro.iostack import EvaluationCache

    w = flash()
    config = StackConfiguration.default()

    legacy_cold = float("inf")
    for _ in range(5):  # best-of-5: the seed's per-repeat loop shape
        start = time.perf_counter()
        for _ in range(3):
            sim.run(w, config)
        legacy_cold = min(legacy_cold, time.perf_counter() - start)

    fast_cold = float("inf")
    for _ in range(5):  # best-of-5: fastpath miss (1 traversal, 3 replays)
        start = time.perf_counter()
        sim.evaluate(w, config)
        fast_cold = min(fast_cold, time.perf_counter() - start)

    cache = EvaluationCache()
    cache.evaluate(sim, w, config)  # warm the entry
    result = benchmark(lambda: cache.evaluate(sim, w, config))
    assert result.perf_mbps > 0
    assert cache.hit_rate > 0.9
    # median keeps scheduler outliers out of the 10x claim
    assert benchmark.stats["median"] < legacy_cold / 10
    assert benchmark.stats["median"] < fast_cold / 3


def test_tuning_run_wall_clock(sim):
    """A 10-generation tuning run with the full fastpath stays
    interactive (the seed needed ~3 stack traversals per evaluation)."""
    import time

    from repro.iostack import EvaluationCache
    from repro.tuners import HSTuner, NoStop

    tuner = HSTuner(
        sim,
        stopper=NoStop(),
        rng=np.random.default_rng(0),
        cache=EvaluationCache(),
    )
    start = time.perf_counter()
    result = tuner.tune(flash(), max_iterations=10)
    elapsed = time.perf_counter() - start
    assert result.best_perf > 0
    assert len(result.history) == 10
    assert elapsed < 2.0  # ~60 evaluations; well under interactive budget
