#!/usr/bin/env python3
"""Tune your own application: build a custom workload and compare
stopping strategies on it.

Demonstrates the library surface a downstream user needs:

* describing an application's I/O with :class:`DumpSpec` (or raw
  request streams for full control);
* probing single parameters against the simulator;
* running HSTuner with different stoppers and comparing outcomes.
"""

import numpy as np

from repro import (
    HeuristicStopper,
    HSTuner,
    IOStackSimulator,
    NoiseModel,
    NoStop,
    StackConfiguration,
    cori,
)
from repro.iostack.units import MiB
from repro.workloads import DumpSpec, build_dump_workload


def main() -> None:
    # A climate-model-like proxy: 64 ranks dump 16 MiB each every 50
    # simulated seconds, with some log chatter.
    spec = DumpSpec(
        name="climate-proxy",
        n_procs=64,
        n_nodes=2,
        n_dumps=24,
        bytes_per_proc_per_dump=16 * MiB,
        writes_per_proc_per_dump=12,
        compute_seconds_per_dump=50.0,
        log_lines_per_proc_per_dump=1.0,
        interleave=0.5,
        contiguity=0.7,
        chunk_size=MiB,
        working_set_per_proc=16 * MiB,
    )
    workload = build_dump_workload(spec)
    platform = cori(workload.n_nodes)
    simulator = IOStackSimulator(platform, NoiseModel(seed=11))

    print("== single-parameter probes (what matters for this app?) ==")
    default = StackConfiguration.default()
    base = simulator.evaluate(workload, default).perf_mbps
    print(f"default: {base / 1000:.2f} GB/s")
    for name, value in (
        ("striping_factor", 64),
        ("romio_collective", True),
        ("alignment", 4 * MiB),
        ("sieve_buf_size", 16 * MiB),
    ):
        perf = simulator.evaluate(workload, default.with_values(**{name: value})).perf_mbps
        print(f"{name}={value!s:9s}: {perf / 1000:.2f} GB/s ({perf / base:.2f}x)")

    print("\n== tuning with different stoppers ==")
    for stopper in (NoStop(), HeuristicStopper(threshold=0.05, window=5)):
        tuner = HSTuner(simulator, stopper=stopper, rng=np.random.default_rng(7))
        result = tuner.tune(workload, max_iterations=30)
        print(
            f"{stopper.name:18s}: {result.best_perf / 1000:.2f} GB/s "
            f"in {result.total_minutes:7.1f} simulated min "
            f"({len(result.history)} iterations, {result.stop_reason})"
        )
        print(f"{'':20s}changed: {sorted(result.best_config.changed_parameters())}")


if __name__ == "__main__":
    main()
