#!/usr/bin/env python3
"""Early stopping on HACC: TunIO's RL stopper versus the 5%/5-iteration
heuristic (the paper's Figure 10 scenario).

Runs one 50-generation HSTuner tune of HACC, then replays both stopping
policies over the recorded history and compares the bandwidth each
walks away with and its Return on Tuning Investment.
"""

import numpy as np

from repro import (
    HeuristicStopper,
    IOStackSimulator,
    NoiseModel,
    NoStop,
    PerfNormalizer,
    RLStopper,
    cori,
    flash,
    hacc,
    train_tunio_agents,
    vpic,
)
from repro.tuners import HSTuner


def main() -> None:
    seed = 8  # the bundled run exhibiting the mid-tuning plateau trap
    platform = cori(4)
    simulator = IOStackSimulator(platform, NoiseModel(seed=seed * 1000 + 100))
    normalizer = PerfNormalizer.for_platform(platform)

    print("== offline-training the early stopper on synthetic log curves ==")
    # Train on a separate simulator instance: the noise model is a
    # stateful sequence, and the tuning run below should see the same
    # platform weather regardless of how much the sweep consumed.
    sweep_sim = IOStackSimulator(cori(4), NoiseModel(seed=seed))
    agents = train_tunio_agents(
        sweep_sim, [vpic(), flash(), hacc()], normalizer,
        rng=np.random.default_rng(seed),
    )

    print("== one full 50-generation HACC tune (no stopping) ==")
    tuner = HSTuner(simulator, stopper=NoStop(), rng=np.random.default_rng((seed, 100)))
    full = tuner.tune(hacc(), max_iterations=50)
    series = full.perf_series() / 1000
    print("best GB/s per iteration:")
    print("  " + " ".join(f"{v:.2f}" for v in series))

    def replay(stopper) -> int:
        stopper.reset()
        for i in range(len(full.history)):
            if stopper.should_stop(full.history[: i + 1]):
                return i
        return len(full.history) - 1

    rl = RLStopper(agents.early_stopper, normalizer, online_learning=False)
    heuristic = HeuristicStopper(threshold=0.05, window=5)

    print(f"\nuntuned: {full.baseline_perf / 1000:.2f} GB/s")
    for name, stop in (("TunIO RL stopper", replay(rl)),
                       ("heuristic 5%/5", replay(heuristic)),
                       ("full budget", len(full.history) - 1)):
        rec = full.history[stop]
        roti = (rec.best_perf - full.baseline_perf) / rec.elapsed_minutes
        print(
            f"{name:18s} stops at iter {rec.iteration:2d}: "
            f"{rec.best_perf / 1000:.2f} GB/s after {rec.elapsed_minutes:6.0f} min "
            f"(RoTI {roti:.2f} MB/s per minute)"
        )


if __name__ == "__main__":
    main()
