#!/usr/bin/env python3
"""End-to-end pipeline on BD-CATS at 500 nodes (the paper's Figure 11/12
scenario).

Discovers BD-CATS's I/O kernel from source, tunes it with TunIO, applies
the found configuration to the full application, and derives the
lifecycle viability analysis: after how many production runs does the
tuning investment pay for itself?
"""

import numpy as np

from repro import (
    DiscoveryOptions,
    IOStackSimulator,
    NoiseModel,
    PerfNormalizer,
    StackConfiguration,
    build_tunio,
    cori,
    discover_io,
    flash,
    hacc,
    train_tunio_agents,
    vpic,
)
from repro.discovery import workload_from_source
from repro.tuners.lifecycle import lifecycle_model, untuned_model, viability_point
from repro.workloads.sources import canonical_hints, load_source


def main() -> None:
    hints = canonical_hints("bdcats")
    source = load_source("bdcats")

    print("== discovering BD-CATS's I/O kernel ==")
    kernel = discover_io(source, "bdcats", DiscoveryOptions(hints=hints))
    kernel_workload = kernel.to_workload()
    app = workload_from_source(kernel.original_source, "bdcats-app", hints)
    print(
        f"kept {kernel.kept_line_count}/{kernel.original_line_count} lines; "
        f"kernel drops {app.compute_seconds:.0f} s of clustering compute per run"
    )

    platform = cori(app.n_nodes)
    simulator = IOStackSimulator(platform, NoiseModel(seed=1))
    normalizer = PerfNormalizer.for_platform(platform, app.n_nodes)

    print("\n== offline training + TunIO tuning of the kernel ==")
    # Agents are trained at component scale, then transferred, as in the
    # paper (VPIC/FLASH/HACC are the representative kernels).
    small_sim = IOStackSimulator(cori(4), NoiseModel(seed=2))
    agents = train_tunio_agents(
        small_sim, [vpic(), flash(), hacc()],
        PerfNormalizer.for_platform(cori(4), 4),
        rng=np.random.default_rng(3),
    )
    tuner = build_tunio(simulator, agents, normalizer, rng=np.random.default_rng(4))
    result = tuner.tune(kernel_workload, max_iterations=50)
    print(
        f"TunIO stopped after {len(result.history)} iterations "
        f"({result.total_minutes:.0f} simulated minutes, {result.stop_reason})"
    )

    print("\n== applying the configuration to the full application ==")
    default = StackConfiguration.default()
    base = simulator.evaluate(app, default)
    tuned = simulator.evaluate(app, result.best_config)
    print(f"untuned: {base.perf_mbps / 1000:8.2f} GB/s ({base.charged_seconds / 60:.0f} min/run)")
    print(f"tuned  : {tuned.perf_mbps / 1000:8.2f} GB/s ({tuned.charged_seconds / 60:.0f} min/run)")
    print("changed parameters:", result.best_config.changed_parameters())

    print("\n== lifecycle viability (Figure 12) ==")
    tuned_model = lifecycle_model(simulator, app, result, name="tunio")
    base_model = untuned_model(simulator, app)
    n = viability_point(tuned_model, base_model)
    print(
        f"tuning cost {tuned_model.tuning_minutes:.0f} min up front, "
        f"saves {base_model.run_minutes - tuned_model.run_minutes:.1f} min per run"
    )
    print(f"-> tuning pays for itself after {n} production executions")


if __name__ == "__main__":
    main()
