#!/usr/bin/env python3
"""Application I/O Discovery: slice MACSio's C source to its I/O kernel.

Shows the paper's Figure 4/5 pipeline on the bundled MACSio source:

* the annotated keep/drop listing the marking loop produces;
* the reconstructed, compilable I/O kernel;
* the optional reducers (1% loop reduction, /dev/shm path switching);
* how faithfully each kernel variant tracks the original application's
  Darshan-level metrics (the Figure 8(c) comparison).
"""

from repro import DiscoveryOptions, IOPathSwitching, LoopReduction, discover_io
from repro.discovery import workload_from_source
from repro.workloads.sources import canonical_hints, load_source


def main() -> None:
    source = load_source("macsio")
    hints = canonical_hints("macsio")

    print("== marking loop: keep/drop per line (first 40 lines) ==")
    kernel = discover_io(source, "macsio", DiscoveryOptions(hints=hints))
    print("\n".join(kernel.explain().splitlines()[:40]))
    print(
        f"\nkept {kernel.kept_line_count}/{kernel.original_line_count} lines "
        f"({100 * kernel.reduction_ratio:.0f}%)"
    )

    print("\n== the reconstructed I/O kernel ==")
    print(kernel.source)

    print("== with 1% loop reduction + I/O path switching ==")
    reduced = discover_io(
        source,
        "macsio",
        DiscoveryOptions(
            hints=hints,
            reducers=(LoopReduction(0.01), IOPathSwitching("/dev/shm")),
        ),
    )
    loop_lines = [l for l in reduced.source.splitlines() if "tunio:loop-reduced" in l]
    print("\n".join(loop_lines))
    print(f"scalable metrics extrapolate by x{reduced.extrapolation_factor:g}")

    print("\n== kernel fidelity vs the original application (Fig 8c) ==")
    app = workload_from_source(kernel.original_source, "macsio-app", hints)
    plain = kernel.to_workload()
    red = reduced.to_workload()
    f = red.extrapolation_factor

    def err(measured, truth):
        return 100 * abs(measured - truth) / truth

    print(f"{'metric':24s} {'kernel':>10s} {'reduced kernel':>15s}")
    print(
        f"{'bytes written err %':24s} "
        f"{err(plain.bytes_written, app.bytes_written):10.4f} "
        f"{err(red.bytes_written * f, app.bytes_written):15.4f}"
    )
    print(
        f"{'write ops err %':24s} "
        f"{err(plain.write_ops, app.write_ops):10.2f} "
        f"{err(red.write_ops * f, app.write_ops):15.2f}"
    )
    print(
        f"\ncompute retained: app {app.compute_seconds:.0f} s -> "
        f"kernel {plain.compute_seconds:.0f} s (sliced away)"
    )


if __name__ == "__main__":
    main()
