#!/usr/bin/env python3
"""The one-call pipeline: source code + tuning specification -> tuned
configuration (the paper's Figure 3 interface).

`TuningSpec` carries the user constraints: the iteration and minute
budgets, the expected number of production runs (stopper patience), and
the kernel-reduction choices that encode whether this is a quick
debugging-phase tune or a production one.
"""

from repro import TuningSpec, tune_application
from repro.iostack import to_xml
from repro.workloads.sources import canonical_hints, load_source


def main() -> None:
    source = load_source("macsio")
    hints = canonical_hints("macsio")

    # A debugging-phase tune: cheap kernel (1% of I/O loop iterations),
    # hard 400-simulated-minute budget.
    spec = TuningSpec(
        max_iterations=50,
        budget_minutes=400.0,
        loop_reduction=0.01,
        expected_runs=10_000,
        seed=42,
    )
    outcome = tune_application(source, hints, spec, name="macsio")

    kernel = outcome.kernel
    print(
        f"kernel: kept {kernel.kept_line_count}/{kernel.original_line_count} "
        f"lines, metrics extrapolate x{kernel.extrapolation_factor:g}"
    )
    result = outcome.result
    print(
        f"tuning: {len(result.history)} iterations, "
        f"{result.total_minutes:.0f} simulated minutes ({result.stop_reason})"
    )
    print(
        f"application: {outcome.app_baseline_mbps / 1000:.2f} -> "
        f"{outcome.app_perf_mbps / 1000:.2f} GB/s ({outcome.gain:.1f}x)"
    )
    print("\nH5Tuner override file:")
    print(to_xml(result.best_config))


if __name__ == "__main__":
    main()
