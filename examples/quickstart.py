#!/usr/bin/env python3
"""Quickstart: tune FLASH's I/O stack configuration with TunIO.

Walks the whole pipeline on the simulated Cori platform:

1. offline training (parameter sweep on VPIC/FLASH/HACC + PCA, plus the
   log-curve-trained early stopper);
2. TunIO tuning of FLASH (Impact-First subsets + RL early stopping);
3. the tuned configuration, exported as an H5Tuner XML override file.

Runs in well under a minute on a laptop.  All times printed are
*simulated* tuning minutes -- what the run would have cost on the real
machine.
"""

import numpy as np

from repro import (
    IOStackSimulator,
    NoiseModel,
    PerfNormalizer,
    build_tunio,
    cori,
    flash,
    hacc,
    train_tunio_agents,
    vpic,
)
from repro.iostack import to_xml


def main() -> None:
    rng = np.random.default_rng(0)
    platform = cori(n_nodes=4)
    simulator = IOStackSimulator(platform, NoiseModel(seed=0))
    normalizer = PerfNormalizer.for_platform(platform)

    print("== offline training (sweeps + PCA + log-curve RL) ==")
    agents = train_tunio_agents(
        simulator, [vpic(), flash(), hacc()], normalizer, rng=rng
    )
    ranked = agents.smart_config.ranked_parameters()
    print(f"impact ranking: {', '.join(ranked[:5])}, ...")

    print("\n== tuning FLASH with TunIO ==")
    tuner = build_tunio(simulator, agents, normalizer, rng=rng)
    result = tuner.tune(flash(), max_iterations=50)

    print(f"untuned perf : {result.baseline_perf / 1000:.2f} GB/s")
    for record in result.history:
        mark = "  <- stopped here" if record.iteration == result.stopped_at else ""
        print(
            f"iter {record.iteration:2d}: best {record.best_perf / 1000:.2f} GB/s, "
            f"{record.elapsed_minutes:7.1f} simulated min, "
            f"subset of {len(record.tuned_parameters):2d}{mark}"
        )
    print(
        f"\ntuned perf   : {result.best_perf / 1000:.2f} GB/s "
        f"({result.best_perf / result.baseline_perf:.1f}x) "
        f"after {result.total_minutes:.0f} simulated minutes "
        f"({result.total_evaluations} evaluations)"
    )

    print("\n== H5Tuner override file for the winning configuration ==")
    print(to_xml(result.best_config))


if __name__ == "__main__":
    main()
