"""TunIO reproduction: an AI-powered framework for optimizing HPC I/O.

Reproduces Rajesh et al., *TunIO: An AI-powered Framework for Optimizing
HPC I/O* (IPDPS 2024) as a self-contained Python library:

* :mod:`repro.core` -- TunIO itself: the Table I API
  (:class:`~repro.core.api.TunIO`), the Smart Configuration Generation
  and Early Stopping agents, the TunIO tuning pipeline, offline
  training, and the perf/RoTI metrics.
* :mod:`repro.discovery` -- Application I/O Discovery: C source ->
  I/O kernel slicing with loop reduction and I/O path switching.
* :mod:`repro.iostack` -- the simulated HDF5/MPI-IO/Lustre stack that
  stands in for the paper's Cori testbed.
* :mod:`repro.workloads` -- VPIC, FLASH, HACC, MACSio and BD-CATS
  behavioural models plus their C sources.
* :mod:`repro.ga` / :mod:`repro.rl` -- the evolutionary-algorithm and
  reinforcement-learning substrates (DEAP / Keras+Gym stand-ins).
* :mod:`repro.tuners` -- the HSTuner baseline, stopping strategies and
  lifecycle analysis.
* :mod:`repro.analysis` -- one experiment runner per paper figure.

Quickstart::

    import numpy as np
    from repro import (
        IOStackSimulator, cori, PerfNormalizer, train_tunio_agents,
        build_tunio, flash, hacc, vpic,
    )

    platform = cori(n_nodes=4)
    sim = IOStackSimulator(platform)
    normalizer = PerfNormalizer.for_platform(platform)
    agents = train_tunio_agents(
        sim, [vpic(), flash(), hacc()], normalizer,
        rng=np.random.default_rng(0),
    )
    tuner = build_tunio(sim, agents, normalizer)
    result = tuner.tune(flash(), max_iterations=50)
    print(result.best_perf, result.total_minutes, result.best_config)
"""

from repro.core import (
    PerfNormalizer,
    TuningOutcome,
    TuningSpec,
    tune_application,
    RLStopper,
    TunIO,
    TunIOTuner,
    TuningSession,
    build_tunio,
    perf_objective,
    roti,
    roti_curve,
    train_tunio_agents,
)
from repro.discovery import (
    DiscoveryOptions,
    IOKernel,
    IOPathSwitching,
    LoopReduction,
    discover_io,
)
from repro.iostack import (
    TUNED_SPACE,
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    cori,
    testbed,
)
from repro.tuners import (
    HeuristicStopper,
    HSTuner,
    NoStop,
    TuningResult,
)
from repro.workloads import (
    Workload,
    bdcats,
    flash,
    hacc,
    macsio_vpic_dipole,
    vpic,
)

__version__ = "1.0.0"

__all__ = [
    "PerfNormalizer",
    "TuningOutcome",
    "TuningSpec",
    "tune_application",
    "RLStopper",
    "TunIO",
    "TunIOTuner",
    "TuningSession",
    "build_tunio",
    "perf_objective",
    "roti",
    "roti_curve",
    "train_tunio_agents",
    "DiscoveryOptions",
    "IOKernel",
    "IOPathSwitching",
    "LoopReduction",
    "discover_io",
    "TUNED_SPACE",
    "IOStackSimulator",
    "NoiseModel",
    "StackConfiguration",
    "cori",
    "testbed",
    "HeuristicStopper",
    "HSTuner",
    "NoStop",
    "TuningResult",
    "Workload",
    "bdcats",
    "flash",
    "hacc",
    "macsio_vpic_dipole",
    "vpic",
    "__version__",
]
