"""Experiment harness: one runner per paper table/figure, shared
experiment context (trained agents), and plain-text reporting."""

from .context import ExperimentContext, install_context, make_context
from .runner import ExperimentRunner, RunSpec
from .experiments import (
    fig01_search_space,
    fig02_log_curves,
    fig08_discovery,
    fig08c_kernel_similarity,
    fig09_impact_first,
    fig10_early_stopping,
    fig11_pipeline,
    fig12_lifecycle,
)
from .reporting import (
    ComparisonRow,
    ascii_chart,
    format_comparison,
    format_series,
    format_table,
)

__all__ = [
    "ExperimentContext",
    "ExperimentRunner",
    "RunSpec",
    "install_context",
    "make_context",
    "fig01_search_space",
    "fig02_log_curves",
    "fig08_discovery",
    "fig08c_kernel_similarity",
    "fig09_impact_first",
    "fig10_early_stopping",
    "fig11_pipeline",
    "fig12_lifecycle",
    "ComparisonRow",
    "ascii_chart",
    "format_comparison",
    "format_series",
    "format_table",
]
