"""``tunio-experiments``: run the paper's figure experiments.

Usage::

    tunio-experiments                     # every figure, serial
    tunio-experiments fig09 fig10         # a subset
    tunio-experiments --workers 4 \\
        --cache-dir ~/.cache/tunio fig11  # pooled runs, persistent traces

``--workers N`` (N >= 2) fans each figure's independent tuning runs out
to a process pool; results are bit-identical to the serial default (the
per-run seed/salt addressing is the same either way, see
:mod:`repro.analysis.runner`).  ``--cache-dir`` attaches a persistent
on-disk trace cache shared by workers and across invocations.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    fig01_search_space,
    fig02_log_curves,
    fig08_discovery,
    fig08c_kernel_similarity,
    fig09_impact_first,
    fig10_early_stopping,
    fig11_pipeline,
    fig12_lifecycle,
)
from .runner import ExperimentRunner

__all__ = ["main"]

#: figure name -> (function, takes seed/iterations/runner kwargs)
_FIGURES: dict[str, tuple] = {
    "fig01": (fig01_search_space, False),
    "fig02": (fig02_log_curves, True),
    "fig08": (fig08_discovery, True),
    "fig08c": (fig08c_kernel_similarity, False),
    "fig09": (fig09_impact_first, True),
    "fig10": (fig10_early_stopping, True),
    "fig11": (fig11_pipeline, True),
    "fig12": (fig12_lifecycle, True),
}


def _workers_arg(text: str) -> int:
    """``--workers`` value: a non-negative int (0/1 mean serial).
    Negative values are an argparse error, i.e. exit code 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (got {value}); 0 or 1 run serially"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tunio-experiments",
        description="Reproduce the paper's figure experiments.",
    )
    parser.add_argument(
        "figures", nargs="*", metavar="FIG",
        help=f"figures to run (default: all): {' '.join(_FIGURES)}",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="override each figure's iteration budget (smoke runs)",
    )
    parser.add_argument(
        "--workers", type=_workers_arg, default=None, metavar="N",
        help="process-pool size for a figure's independent tuning runs; "
        "omitted, 0 or 1 run serially; results are bit-identical "
        "either way",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent trace-cache directory shared by pool workers "
        "and across invocations (default: no disk cache)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list figure names and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in _FIGURES:
            print(name)
        return 0

    selected = args.figures or list(_FIGURES)
    unknown = [f for f in selected if f not in _FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s): {', '.join(unknown)} "
            f"(choose from {', '.join(_FIGURES)})"
        )

    runner = ExperimentRunner(workers=args.workers, cache_dir=args.cache_dir)
    results: dict[str, object] = {}
    for name in selected:
        fn, parameterized = _FIGURES[name]
        kwargs: dict = {}
        if parameterized:
            kwargs["seed"] = args.seed
            kwargs["runner"] = runner
            if args.iterations is not None and name != "fig12":
                kwargs["iterations"] = args.iterations
        if name == "fig12" and "fig11" in results:
            kwargs["pipeline"] = results["fig11"]
        started = time.perf_counter()
        result = fn(**kwargs)
        elapsed = time.perf_counter() - started
        results[name] = result
        print(result.report())
        print(f"[{name}: {elapsed:.1f}s]", file=sys.stderr)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
