"""Shared experiment context: platform, simulator, trained agents.

Every figure-reproduction experiment needs the same scaffolding -- the
simulated Cori platform, a seeded noise model, the perf normaliser and
the offline-trained TunIO agents.  :class:`ExperimentContext` builds it
once per seed; agent training is cached per (seed) within the process so
a benchmark session does not retrain for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.objective import PerfNormalizer
from repro.core.offline_training import TunIOAgents, train_tunio_agents
from repro.iostack.cluster import Platform, cori
from repro.iostack.noise import NoiseModel
from repro.iostack.simulator import IOStackSimulator
from repro.workloads import flash, hacc, vpic

__all__ = ["ExperimentContext", "install_context", "make_context"]


@dataclass
class ExperimentContext:
    """Bundle of everything an experiment runner needs."""

    seed: int
    platform: Platform
    simulator: IOStackSimulator
    normalizer: PerfNormalizer
    agents: TunIOAgents

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A fresh, deterministic generator derived from the seed."""
        return np.random.default_rng((self.seed, salt))

    def fresh_agents(self) -> TunIOAgents:
        """A deep copy of the trained agents.

        TunIO's agents learn online during tuning, so handing the shared
        instances to an experiment would leak learning across
        experiments and make results depend on execution order.  Every
        runner clones instead.
        """
        from repro.core.early_stopping import EarlyStoppingAgent
        from repro.core.smart_config import SmartConfigAgent

        smart = SmartConfigAgent(
            space=self.agents.smart_config.space,
            normalizer=self.agents.smart_config.normalizer,
            rng=self.rng(0xC10E),
        )
        smart.set_state(self.agents.smart_config.get_state())
        stopper = EarlyStoppingAgent(
            config=self.agents.early_stopper.config, rng=self.rng(0xC10F)
        )
        stopper.set_weights(self.agents.early_stopper.get_weights())
        return TunIOAgents(
            smart_config=smart,
            early_stopper=stopper,
            impact_scores=self.agents.impact_scores.copy(),
        )

    def simulator_for(self, n_nodes: int, salt: int = 0) -> IOStackSimulator:
        """A simulator scaled to a job size with independent noise."""
        return IOStackSimulator(
            cori(n_nodes), NoiseModel(seed=self.seed * 1000 + salt)
        )

    def normalizer_for(self, n_nodes: int) -> PerfNormalizer:
        return PerfNormalizer.for_platform(self.platform, n_nodes)


#: Pre-trained contexts installed from outside (experiment pool workers
#: receive the parent's context here so they never retrain the agents).
_INSTALLED: dict[tuple[int, int], ExperimentContext] = {}


def install_context(context: ExperimentContext) -> None:
    """Register an already-trained context for its (seed, n_nodes).

    :func:`make_context` consults this registry before training, so a
    process that received a pickled context (an experiment pool worker,
    see :mod:`repro.analysis.runner`) skips the multi-second offline
    agent training and -- more importantly -- is guaranteed to use the
    *same* trained weights as the parent, keeping parallel runs
    bit-identical to serial ones.
    """
    _INSTALLED[(context.seed, context.platform.n_nodes)] = context


def make_context(seed: int = 0, n_nodes: int = 4) -> ExperimentContext:
    """The experiment context for a seed: installed, cached, or built.

    Offline training follows the paper: sweep VPIC, FLASH and HACC
    kernels, PCA the results, pre-train the subset picker, train the
    early stopper on generated log curves.  Training is cached per
    (seed, n_nodes) within the process; a context shipped in via
    :func:`install_context` takes precedence.
    """
    installed = _INSTALLED.get((seed, n_nodes))
    if installed is not None:
        return installed
    return _build_context(seed, n_nodes)


@lru_cache(maxsize=4)
def _build_context(seed: int, n_nodes: int) -> ExperimentContext:
    platform = cori(n_nodes)
    simulator = IOStackSimulator(platform, NoiseModel(seed=seed))
    normalizer = PerfNormalizer.for_platform(platform, n_nodes)
    agents = train_tunio_agents(
        simulator,
        [vpic(), flash(), hacc()],
        normalizer,
        rng=np.random.default_rng((seed, 0xA11)),
    )
    return ExperimentContext(
        seed=seed,
        platform=platform,
        simulator=simulator,
        normalizer=normalizer,
        agents=agents,
    )
