"""Experiment runners: one per table/figure of the paper's evaluation.

Each ``fig*`` function reproduces one figure's measurement procedure and
returns a typed result object whose ``report()`` renders the same
rows/series the paper plots.  The benchmark suite under ``benchmarks/``
calls these; EXPERIMENTS.md records paper-vs-measured for each.

Seeds: every runner takes a ``seed`` so results are reproducible; the
shared offline-trained agents come from
:func:`repro.analysis.context.make_context`.

Parallel decomposition
----------------------
The GA-based figures accept an optional
:class:`~repro.analysis.runner.ExperimentRunner`.  Each independent
tuning run is expressed as a module-level job function (``_figNN_run``)
addressed purely by ``(seed, salt, ...)`` primitives -- exactly the
derivation the serial loop used -- so the runner can execute jobs
in-process (the default) or on a process pool with bit-identical merged
results.  Anything order-sensitive (Figure 11's shared ``eval_sim``
noise stream, Figure 8's accuracy check against the tuned app config)
stays in the merge step, which always runs serially in the parent.

Each job builds its own :class:`~repro.iostack.evalcache.EvaluationCache`
(runs never share in-memory state); cross-run trace reuse is provided by
the persistent disk backend when the runner carries a ``cache_dir``,
which works identically for serial and pooled execution.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.early_stopping import RLStopper
from repro.core.pipeline import TunIOTuner, build_tunio
from repro.core.roti import RoTICurve, roti_curve
from repro.discovery.kernel import DiscoveryOptions, discover_io
from repro.discovery.modelgen import workload_from_source
from repro.discovery.reducers import LoopReduction
from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationCache
from repro.iostack.parameters import LIBRARY_CATALOG, TUNED_SPACE, stack_permutations
from repro.iostack.simulator import WorkloadLike
from repro.tuners.base import TuningResult
from repro.tuners.hstuner import HSTuner
from repro.tuners.lifecycle import (
    LifecycleModel,
    crossover_point,
    lifecycle_model,
    untuned_model,
    viability_point,
)
from repro.tuners.stoppers import HeuristicStopper, NoStop
from repro.workloads import bdcats, flash, hacc, vpic
from repro.workloads.sources import canonical_hints, load_source

from .context import make_context
from .reporting import ascii_chart, format_series, format_table
from .runner import ExperimentRunner, RunSpec

__all__ = [
    "fig01_search_space",
    "fig02_log_curves",
    "fig08_discovery",
    "fig08c_kernel_similarity",
    "fig09_impact_first",
    "fig10_early_stopping",
    "fig11_pipeline",
    "fig12_lifecycle",
]

#: Workload constructors addressable by name (jobs ship names, not
#: workload objects).
_WORKLOADS = {"hacc": hacc, "flash": flash, "vpic": vpic, "bdcats": bdcats}


def _make_cache(cache_dir: str | None) -> EvaluationCache:
    """A fresh per-run evaluation cache, disk-backed when asked."""
    if cache_dir is None:
        return EvaluationCache()
    from repro.iostack.diskcache import DiskCacheBackend

    return EvaluationCache(backend=DiskCacheBackend(cache_dir))


# ---------------------------------------------------------------------------
# Figure 1 -- search-space growth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchSpaceResult:
    """Permutation counts per library and per stack composition."""

    library_rows: tuple[tuple[str, int, int, int], ...]
    stack_rows: tuple[tuple[str, int], ...]
    tuned_space_permutations: int

    def report(self) -> str:
        libs = format_table(
            ["library", "discrete", "continuous", "permutations"],
            [list(r) for r in self.library_rows],
            title="Figure 1: per-library parameter permutations (lower bounds)",
        )
        stacks = format_table(
            ["stack", "permutations"],
            [list(r) for r in self.stack_rows],
            title="Stack compositions",
        )
        tail = (
            f"\nTuned 12-parameter space (evaluation): "
            f"{self.tuned_space_permutations:,} permutations"
        )
        return f"{libs}\n\n{stacks}{tail}"


def fig01_search_space() -> SearchSpaceResult:
    """Figure 1: parameter-permutation growth across stack compositions."""
    library_rows = tuple(
        (c.name, c.discrete, c.continuous, c.permutations())
        for c in LIBRARY_CATALOG.values()
    )
    stacks = [
        ("HDF5", ["HDF5"]),
        ("HDF5+MPI", ["HDF5", "MPI"]),
        ("PNetCDF+MPI", ["PNetCDF", "MPI"]),
        ("ADIOS+MPI", ["ADIOS", "MPI"]),
        ("HDF5+MPI+Hermes", ["HDF5", "MPI", "Hermes"]),
        ("HDF5+MPI+OpenSHMEMX", ["HDF5", "MPI", "OpenSHMEMX"]),
    ]
    stack_rows = tuple((name, stack_permutations(libs)) for name, libs in stacks)
    return SearchSpaceResult(
        library_rows=library_rows,
        stack_rows=stack_rows,
        tuned_space_permutations=TUNED_SPACE.permutations(),
    )


# ---------------------------------------------------------------------------
# Figure 2 -- tuning follows a log curve
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LogCurvesResult:
    """HSTuner tuning curves for the three training kernels."""

    results: dict[str, TuningResult]
    #: R^2 of a log fit per application's best-so-far curve.
    log_fit_r2: dict[str, float]

    def report(self) -> str:
        lines = ["Figure 2: HSTuner tuning curves (best perf per iteration, GB/s)"]
        for name, res in self.results.items():
            lines.append(format_series(name, res.perf_series() / 1000.0))
            lines.append(
                f"{'':28s} log-fit R^2 = {self.log_fit_r2[name]:.3f}, "
                f"gain {res.best_perf / max(res.baseline_perf, 1e-9):.2f}x"
            )
        lines.append("")
        lines.append(
            ascii_chart(
                {n: r.perf_series() / 1000.0 for n, r in self.results.items()},
                ylabel="GB/s",
            )
        )
        return "\n".join(lines)


def _log_fit_r2(values: np.ndarray) -> float:
    """R^2 of fitting ``a + b*log1p(t)`` to a series."""
    t = np.arange(values.size, dtype=float)
    design = np.column_stack([np.ones_like(t), np.log1p(t)])
    coef, *_ = np.linalg.lstsq(design, values, rcond=None)
    pred = design @ coef
    ss_res = float(((values - pred) ** 2).sum())
    ss_tot = float(((values - values.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def _fig02_run(
    seed: int, salt: int, workload_name: str, iterations: int,
    cache_dir: str | None = None,
) -> TuningResult:
    """One Figure 2 tuning run, addressed by (seed, salt, workload)."""
    ctx = make_context(seed)
    workload = _WORKLOADS[workload_name]()
    sim = ctx.simulator_for(workload.n_nodes, salt=salt)
    tuner = HSTuner(
        sim, stopper=NoStop(), rng=ctx.rng(salt), cache=_make_cache(cache_dir)
    )
    return tuner.tune(workload, max_iterations=iterations)


def fig02_log_curves(
    seed: int = 0, iterations: int = 50, runner: ExperimentRunner | None = None
) -> LogCurvesResult:
    """Figure 2: tune HACC, FLASH and VPIC with plain HSTuner and show
    the logarithmic shape of the bandwidth-vs-iteration curves."""
    runner = runner if runner is not None else ExperimentRunner()
    ctx = make_context(seed)
    names = ("hacc", "flash", "vpic")
    specs = [
        RunSpec(
            _fig02_run,
            dict(
                seed=seed, salt=salt + 20, workload_name=name,
                iterations=iterations, cache_dir=runner.cache_dir,
            ),
            label=f"fig02:{name}",
        )
        for salt, name in enumerate(names)
    ]
    runs = runner.map(specs, context=ctx)
    results: dict[str, TuningResult] = {}
    fits: dict[str, float] = {}
    for res in runs:
        results[res.workload_name] = res
        fits[res.workload_name] = _log_fit_r2(res.perf_series())
    return LogCurvesResult(results=results, log_fit_r2=fits)


# ---------------------------------------------------------------------------
# Figure 8(a)/(b) -- I/O discovery and loop reduction RoTI
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiscoveryRoTIResult:
    """RoTI with the full application, the I/O kernel, and the
    loop-reduced kernel (Figures 8a and 8b)."""

    app_curve: RoTICurve
    kernel_curve: RoTICurve
    reduced_curve: RoTICurve
    app_result: TuningResult
    kernel_result: TuningResult
    reduced_result: TuningResult
    #: Reduced kernel's reported-bandwidth accuracy vs the application.
    reduced_bandwidth_accuracy: float

    def report(self) -> str:
        rows = []
        for label, curve, res in (
            ("full application", self.app_curve, self.app_result),
            ("I/O kernel (8a)", self.kernel_curve, self.kernel_result),
            ("loop-reduced kernel (8b)", self.reduced_curve, self.reduced_result),
        ):
            rows.append(
                [
                    label,
                    curve.peak,
                    curve.peak_minutes,
                    res.best_perf / 1000.0,
                    res.total_minutes,
                ]
            )
        table = format_table(
            ["pipeline", "peak RoTI (MB/s/min)", "time to peak (min)",
             "final perf (GB/s)", "total tuning (min)"],
            rows,
            title="Figures 8(a)/8(b): Return on Tuning Investment, MACSio (VPIC-dipole)",
        )
        boost = self.reduced_curve.peak / max(self.app_curve.peak, 1e-9)
        saved = 1.0 - self.kernel_curve.peak_minutes / max(self.app_curve.peak_minutes, 1e-9)
        return (
            f"{table}\n"
            f"kernel time-to-peak reduction: {100 * saved:.1f}% "
            f"(paper: 14%)\n"
            f"loop-reduction peak-RoTI boost: {boost:.1f}x (paper: >9x)\n"
            f"reduced-kernel bandwidth accuracy: "
            f"{100 * self.reduced_bandwidth_accuracy:.2f}% (paper: 97.10%)"
        )


def _fig08_workload(kind: str) -> WorkloadLike:
    """The MACSio workload for one Figure 8 pipeline ('app', 'kernel'
    or 'reduced'); discovery is deterministic, so rebuilding it inside a
    pool worker yields the parent's workload exactly."""
    source = load_source("macsio")
    hints = canonical_hints("macsio")
    if kind == "app":
        return workload_from_source(source, "macsio-app", hints)
    if kind == "kernel":
        return discover_io(source, "macsio", DiscoveryOptions(hints=hints)).to_workload()
    return discover_io(
        source, "macsio",
        DiscoveryOptions(hints=hints, reducers=(LoopReduction(0.01),)),
    ).to_workload()


def _fig08_run(
    seed: int, kind: str, n_nodes: int, iterations: int,
    cache_dir: str | None = None,
) -> TuningResult:
    """One Figure 8 pipeline run (same salt for all three: the GA
    trajectory is held constant so the figure isolates evaluation
    cost)."""
    ctx = make_context(seed)
    workload = _fig08_workload(kind)
    sim = ctx.simulator_for(n_nodes, salt=80)
    tuner = HSTuner(
        sim, stopper=NoStop(), rng=ctx.rng(80), cache=_make_cache(cache_dir)
    )
    return tuner.tune(workload, max_iterations=iterations)


def fig08_discovery(
    seed: int = 0, iterations: int = 40, runner: ExperimentRunner | None = None
) -> DiscoveryRoTIResult:
    """Figures 8(a)/(b): tune MACSio as the full application, as its I/O
    kernel, and as the 1%-loop-reduced kernel; compare RoTI curves."""
    runner = runner if runner is not None else ExperimentRunner()
    ctx = make_context(seed)
    app = _fig08_workload("app")
    reduced_workload = _fig08_workload("reduced")

    # All three pipelines run the same GA trajectory (same seed and
    # noise), so the time difference is the evaluation-cost saving of the
    # kernel, not GA luck -- the quantity Figure 8 isolates.
    specs = [
        RunSpec(
            _fig08_run,
            dict(
                seed=seed, kind=kind, n_nodes=app.n_nodes,
                iterations=iterations, cache_dir=runner.cache_dir,
            ),
            label=f"fig08:{kind}",
        )
        for kind in ("app", "kernel", "reduced")
    ]
    app_res, kern_res, red_res = runner.map(specs, context=ctx)

    # Reported-bandwidth accuracy of the reduced kernel: evaluate the same
    # (tuned) configuration on both and compare the measured perf.
    sim = ctx.simulator_for(app.n_nodes, salt=99)
    config = app_res.best_config or StackConfiguration.default()
    app_perf = sim.evaluate(app, config).perf_mbps
    red_perf = sim.evaluate(reduced_workload, config).perf_mbps
    accuracy = 1.0 - abs(red_perf - app_perf) / app_perf

    return DiscoveryRoTIResult(
        app_curve=roti_curve(app_res),
        kernel_curve=roti_curve(kern_res),
        reduced_curve=roti_curve(red_res),
        app_result=app_res,
        kernel_result=kern_res,
        reduced_result=red_res,
        reduced_bandwidth_accuracy=accuracy,
    )


# ---------------------------------------------------------------------------
# Figure 8(c) -- kernel similarity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelSimilarityResult:
    """Percentage error of kernel-reported metrics vs the application."""

    kernel_bytes_error: float
    kernel_ops_error: float
    reduced_bytes_error: float
    reduced_ops_error: float

    def report(self) -> str:
        return format_table(
            ["metric", "I/O kernel", "reduced kernel (x extrapolation)", "paper (kernel / reduced)"],
            [
                ["bytes written error %", 100 * self.kernel_bytes_error,
                 100 * self.reduced_bytes_error, "0.0002% / 0.19%"],
                ["write operations error %", 100 * self.kernel_ops_error,
                 100 * self.reduced_ops_error, "19.05% / 4.87%"],
            ],
            title="Figure 8(c): kernel fidelity vs original MACSio application",
        )


def fig08c_kernel_similarity() -> KernelSimilarityResult:
    """Figure 8(c): absolute percentage error of bytes-written and
    write-op counts for the kernel and the loop-reduced kernel (with its
    metrics multiplied by the loop reduction)."""
    source = load_source("macsio")
    hints = canonical_hints("macsio")
    app = workload_from_source(source, "macsio-app", hints)
    kernel = discover_io(source, "macsio", DiscoveryOptions(hints=hints)).to_workload()
    reduced_k = discover_io(
        source, "macsio",
        DiscoveryOptions(hints=hints, reducers=(LoopReduction(0.01),)),
    )
    reduced = reduced_k.to_workload()

    def err(measured: float, truth: float) -> float:
        return abs(measured - truth) / truth

    f = reduced.extrapolation_factor
    return KernelSimilarityResult(
        kernel_bytes_error=err(kernel.bytes_written, app.bytes_written),
        kernel_ops_error=err(kernel.write_ops, app.write_ops),
        reduced_bytes_error=err(reduced.bytes_written * f, app.bytes_written),
        reduced_ops_error=err(reduced.write_ops * f, app.write_ops),
    )


# ---------------------------------------------------------------------------
# Figure 9 -- impact-first tuning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImpactFirstResult:
    """Impact-first vs exhaustive subset tuning on FLASH."""

    impact_first: TuningResult
    baseline: TuningResult
    target_mbps: float
    impact_first_iteration: int | None
    baseline_iteration: int | None
    changed_parameters: int

    def report(self) -> str:
        lines = [
            "Figure 9: Impact-First Tuning (FLASH), best perf per iteration (GB/s)",
            format_series("impact-first", self.impact_first.perf_series() / 1000.0),
            format_series("no impact-first", self.baseline.perf_series() / 1000.0),
            f"target bandwidth: {self.target_mbps / 1000.0:.2f} GB/s",
            f"impact-first reaches it at iteration {self.impact_first_iteration}; "
            f"no-impact-first at iteration {self.baseline_iteration} "
            f"(paper: 6 vs 43, -86.05%)",
            f"parameters changed from defaults in the final configuration: "
            f"{self.changed_parameters} (paper: 7 of 12)",
        ]
        if (
            self.impact_first_iteration is not None
            and self.baseline_iteration is not None
            and self.baseline_iteration > 0
        ):
            saving = 1.0 - self.impact_first_iteration / self.baseline_iteration
            lines.append(f"iteration reduction: {100 * saving:.1f}%")
        lines.append("")
        lines.append(
            ascii_chart(
                {
                    "impact-first": self.impact_first.perf_series() / 1000.0,
                    "no impact-first": self.baseline.perf_series() / 1000.0,
                },
                ylabel="GB/s",
            )
        )
        return "\n".join(lines)


def _fig09_run(
    seed: int, repeat: int, arm: str, iterations: int,
    cache_dir: str | None = None,
) -> TuningResult:
    """One Figure 9 arm: 'impact' (TunIO's Smart Configuration
    Generation, sim salt ``90 + 10r``) or 'baseline' (plain HSTuner, sim
    salt ``91 + 10r``); both arms of a repeat share the GA stream
    ``rng(90 + 10r)``."""
    ctx = make_context(seed)
    workload = flash()
    if arm == "impact":
        sim = ctx.simulator_for(workload.n_nodes, salt=90 + 10 * repeat)
        tuner: HSTuner = TunIOTuner(
            sim,
            smart_config=ctx.fresh_agents().smart_config,
            stopper=NoStop(),  # isolate the component: no early stopping
            rng=ctx.rng(90 + 10 * repeat),
            cache=_make_cache(cache_dir),
        )
    else:
        sim = ctx.simulator_for(workload.n_nodes, salt=91 + 10 * repeat)
        tuner = HSTuner(
            sim,
            stopper=NoStop(),
            rng=ctx.rng(90 + 10 * repeat),
            cache=_make_cache(cache_dir),
        )
    return tuner.tune(workload, max_iterations=iterations)


def fig09_impact_first(
    seed: int = 0, iterations: int = 50, repeats: int = 3,
    runner: ExperimentRunner | None = None,
) -> ImpactFirstResult:
    """Figure 9: attach Smart Configuration Generation to the pipeline
    for FLASH and compare against the pipeline without it.

    GA runs are stochastic, so both arms run ``repeats`` times; the
    reported iteration counts are medians and the plotted curves come
    from the median-ranked impact-first run.
    """
    runner = runner if runner is not None else ExperimentRunner()
    ctx = make_context(seed)

    specs = [
        RunSpec(
            _fig09_run,
            dict(
                seed=seed, repeat=r, arm=arm, iterations=iterations,
                cache_dir=runner.cache_dir,
            ),
            label=f"fig09:{arm}:{r}",
        )
        for r in range(repeats)
        for arm in ("impact", "baseline")
    ]
    runs = runner.map(specs, context=ctx)
    impact_runs = runs[0::2]
    base_runs = runs[1::2]

    # The paper's yardstick is the 2.3 GB/s level both pipelines reach on
    # FLASH; fall back to 95% of the worst final if a run falls short.
    target = 2300.0
    floor = min(min(r.best_perf for r in impact_runs),
                min(r.best_perf for r in base_runs))
    if floor < target:
        target = 0.95 * floor

    def median_iteration(runs: list[TuningResult]) -> int | None:
        vals = [r.iterations_to_reach(target) for r in runs]
        vals = [v if v is not None else iterations for v in vals]
        return int(np.median(vals))

    impact_res = impact_runs[0]
    base_res = base_runs[0]
    changed_counts = [
        len(r.best_config.changed_parameters())
        for r in impact_runs
        if r.best_config is not None
    ]
    return ImpactFirstResult(
        impact_first=impact_res,
        baseline=base_res,
        target_mbps=target,
        impact_first_iteration=median_iteration(impact_runs),
        baseline_iteration=median_iteration(base_runs),
        changed_parameters=int(np.median(changed_counts)) if changed_counts else 0,
    )


# ---------------------------------------------------------------------------
# Figure 10 -- early stopping cost/benefit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StopperOutcome:
    """Where one stopping method ends the HACC run and what it gets."""

    name: str
    iteration: int
    perf_mbps: float
    minutes: float
    roti: float


@dataclass(frozen=True)
class EarlyStoppingResult:
    """Figure 10(a)/(b): stopping methods replayed over one HACC run."""

    full_run: TuningResult
    outcomes: tuple[StopperOutcome, ...]
    perfect: StopperOutcome

    def report(self) -> str:
        rows = [
            [o.name, o.iteration, o.perf_mbps / 1000.0, o.minutes, o.roti,
             100.0 * o.roti / max(self.perfect.roti, 1e-9)]
            for o in (self.perfect, *self.outcomes)
        ]
        table = format_table(
            ["method", "stop iter", "perf (GB/s)", "minutes", "RoTI", "% of best"],
            rows,
            title="Figure 10: early stopping on HACC (50-generation run)",
        )
        base = self.full_run.baseline_perf / 1000.0
        chart = ascii_chart(
            {"best perf": self.full_run.perf_series() / 1000.0}, ylabel="GB/s"
        )
        stops = ", ".join(f"{o.name}@{o.iteration}" for o in self.outcomes)
        return (
            f"{table}\n"
            f"untuned bandwidth: {base:.2f} GB/s; paper ordering: "
            f"TunIO (90.5%) > MaxPerf (86.1%) > 50-iter budget (77.9%) > "
            f"heuristic (59.3%)\n\n{chart}\nstop markers: {stops}"
        )


def _fig10_run(
    seed: int, iterations: int, cache_dir: str | None = None
) -> TuningResult:
    """The single full-budget HACC run Figure 10 replays stoppers over."""
    ctx = make_context(seed)
    workload = hacc()
    sim = ctx.simulator_for(workload.n_nodes, salt=100)
    tuner = HSTuner(
        sim, stopper=NoStop(), rng=ctx.rng(100), cache=_make_cache(cache_dir)
    )
    return tuner.tune(workload, max_iterations=iterations)


def fig10_early_stopping(
    seed: int = 0, iterations: int = 50, runner: ExperimentRunner | None = None
) -> EarlyStoppingResult:
    """Figure 10: run HACC for the full budget, then replay each
    stopping method over the recorded history."""
    runner = runner if runner is not None else ExperimentRunner()
    ctx = make_context(seed)
    spec = RunSpec(
        _fig10_run,
        dict(seed=seed, iterations=iterations, cache_dir=runner.cache_dir),
        label="fig10:full-run",
    )
    (full,) = runner.map([spec], context=ctx)
    history = full.history

    def outcome(name: str, stop_iter: int) -> StopperOutcome:
        rec = history[min(stop_iter, len(history) - 1)]
        return StopperOutcome(
            name=name,
            iteration=rec.iteration,
            perf_mbps=rec.best_perf,
            minutes=rec.elapsed_minutes,
            roti=(rec.best_perf - full.baseline_perf) / rec.elapsed_minutes,
        )

    # Perfect: the stop with the best possible RoTI.
    rotis = [
        (r.best_perf - full.baseline_perf) / r.elapsed_minutes for r in history
    ]
    perfect = outcome("perfect", int(np.argmax(rotis)))

    # TunIO's RL stopper, replayed over the history.
    rl = RLStopper(ctx.fresh_agents().early_stopper, ctx.normalizer, online_learning=False)
    rl.reset()
    tunio_stop = len(history) - 1
    for i in range(len(history)):
        if rl.should_stop(history[: i + 1]):
            tunio_stop = i
            break

    heuristic = HeuristicStopper()
    heuristic_stop = len(history) - 1
    for i in range(len(history)):
        if heuristic.should_stop(history[: i + 1]):
            heuristic_stop = i
            break

    best_perf = max(r.best_perf for r in history)
    maxperf_stop = next(
        i for i, r in enumerate(history) if r.best_perf >= best_perf
    )

    outcomes = (
        outcome("tunio-rl", tunio_stop),
        outcome("max-perf-oracle", maxperf_stop),
        outcome("heuristic-5%/5", heuristic_stop),
        outcome("full-budget", len(history) - 1),
    )
    return EarlyStoppingResult(full_run=full, outcomes=outcomes, perfect=perfect)


# ---------------------------------------------------------------------------
# Figure 11 -- end-to-end pipeline on BD-CATS
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineVariant:
    """One tuning pipeline's end-to-end outcome on BD-CATS."""

    name: str
    result: TuningResult
    #: Best configuration's perf measured on the *full application*.
    app_perf_mbps: float
    roti: float


@dataclass(frozen=True)
class PipelineResult:
    """Figure 11(a)/(b): the six pipeline variants."""

    variants: tuple[PipelineVariant, ...]
    app_baseline_mbps: float

    def get(self, name: str) -> PipelineVariant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(name)

    def report(self) -> str:
        rows = [
            [
                v.name,
                len(v.result.history),
                v.app_perf_mbps / 1000.0,
                v.result.total_minutes,
                v.roti,
            ]
            for v in self.variants
        ]
        table = format_table(
            ["pipeline", "iterations", "app perf (GB/s)", "tuning (min)", "RoTI"],
            rows,
            title="Figure 11: end-to-end tuning of BD-CATS (500 nodes / 1600 procs)",
        )
        tunio = self.get("tunio")
        nostop = self.get("hstuner-nostop")
        saving = 1.0 - tunio.result.total_minutes / nostop.result.total_minutes
        chart = ascii_chart(
            {
                v.name: v.result.perf_series() / 1000.0
                for v in self.variants
                if "kernel" not in v.name
            },
            ylabel="GB/s",
        )
        return (
            f"{table}\n"
            f"untuned app bandwidth: {self.app_baseline_mbps / 1000.0:.2f} GB/s\n"
            f"TunIO tuning-time reduction vs HSTuner-NoStop: {100 * saving:.1f}% "
            f"(paper: ~73%)\n\n{chart}"
        )


#: (variant name, tuning target, tuner kind, sim/rng salt) -- the
#: addressing of the six Figure 11 runs.
_FIG11_VARIANTS = (
    ("hstuner-nostop", "app", "nostop", 111),
    ("hstuner-heuristic", "app", "heuristic", 112),
    ("tunio", "app", "tunio", 113),
    ("hstuner-nostop+kernel", "kernel", "nostop", 114),
    ("hstuner-heuristic+kernel", "kernel", "heuristic", 115),
    ("tunio+kernel", "kernel", "tunio", 116),
)


def _fig11_run(
    seed: int, target_kind: str, tuner_kind: str, salt: int, iterations: int,
    cache_dir: str | None = None,
) -> TuningResult:
    """One Figure 11 pipeline variant.  The variant's ``app_perf``
    evaluation is NOT done here: it consumes the shared ``eval_sim``
    noise stream in variant order, so it belongs to the (serial) merge
    step of :func:`fig11_pipeline`."""
    ctx = make_context(seed)
    app = bdcats()
    if target_kind == "kernel":
        hints = canonical_hints("bdcats")
        target: WorkloadLike = discover_io(
            load_source("bdcats"), "bdcats", DiscoveryOptions(hints=hints)
        ).to_workload()
    else:
        target = app
    sim = ctx.simulator_for(app.n_nodes, salt=salt)
    normalizer = ctx.normalizer_for(app.n_nodes)
    rng = ctx.rng(salt)
    cache = _make_cache(cache_dir)
    if tuner_kind == "tunio":
        tuner: HSTuner = build_tunio(
            sim, ctx.fresh_agents(), normalizer, rng=rng, cache=cache
        )
    elif tuner_kind == "heuristic":
        tuner = HSTuner(sim, stopper=HeuristicStopper(), rng=rng, cache=cache)
    else:
        tuner = HSTuner(sim, stopper=NoStop(), rng=rng, cache=cache)
    return tuner.tune(target, max_iterations=iterations)


def fig11_pipeline(
    seed: int = 0, iterations: int = 50, runner: ExperimentRunner | None = None
) -> PipelineResult:
    """Figure 11: BD-CATS tuned by HSTuner (no stop / heuristic stop) and
    TunIO, each on the full application and on the I/O kernel."""
    runner = runner if runner is not None else ExperimentRunner()
    ctx = make_context(seed)
    app = bdcats()

    # The shared evaluation stream: baseline first, then each variant's
    # best config in variant order -- strictly serial, merge-side.
    eval_sim = ctx.simulator_for(app.n_nodes, salt=110)
    baseline = eval_sim.evaluate(app, StackConfiguration.default()).perf_mbps

    specs = [
        RunSpec(
            _fig11_run,
            dict(
                seed=seed, target_kind=target_kind, tuner_kind=tuner_kind,
                salt=salt, iterations=iterations, cache_dir=runner.cache_dir,
            ),
            label=f"fig11:{name}",
        )
        for name, target_kind, tuner_kind, salt in _FIG11_VARIANTS
    ]
    results = runner.map(specs, context=ctx)

    variants = []
    for (name, _target_kind, _tuner_kind, _salt), res in zip(_FIG11_VARIANTS, results):
        config = res.best_config or StackConfiguration.default()
        app_perf = eval_sim.evaluate(app, config).perf_mbps
        variants.append(
            PipelineVariant(
                name=name,
                result=res,
                app_perf_mbps=app_perf,
                roti=(app_perf - baseline) / max(res.total_minutes, 1e-9),
            )
        )
    return PipelineResult(variants=tuple(variants), app_baseline_mbps=baseline)


# ---------------------------------------------------------------------------
# Figure 12 -- lifecycle viability
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleResult:
    """Figure 12: lifecycle cost lines and their crossings."""

    tunio: LifecycleModel
    hstuner: LifecycleModel
    untuned: LifecycleModel
    tunio_viability: int | None
    hstuner_viability: int | None
    tunio_advantage_until: int | None

    def report(self) -> str:
        rows = [
            [m.name, m.tuning_minutes, m.run_minutes]
            for m in (self.tunio, self.hstuner, self.untuned)
        ]
        table = format_table(
            ["lifecycle", "tuning (min, y-intercept)", "per-run (min, slope)"],
            rows,
            title="Figure 12: BD-CATS lifecycle cost",
        )
        return (
            f"{table}\n"
            f"TunIO viability point: {self.tunio_viability} executions "
            f"(paper: 1394)\n"
            f"H5Tuner viability point: {self.hstuner_viability} executions "
            f"(paper: 5274)\n"
            f"TunIO keeps the lower total until "
            f"{self.tunio_advantage_until} executions (paper: 3.99M)"
        )


def fig12_lifecycle(
    seed: int = 0, pipeline: PipelineResult | None = None,
    runner: ExperimentRunner | None = None,
) -> LifecycleResult:
    """Figure 12: derive lifecycle models from the Figure 11 runs (TunIO
    vs H5Tuner full-budget) and locate the viability/crossover points."""
    ctx = make_context(seed)
    app = bdcats()
    sim = ctx.simulator_for(app.n_nodes, salt=120)
    if pipeline is None:
        pipeline = fig11_pipeline(seed, runner=runner)
    tunio_model = lifecycle_model(sim, app, pipeline.get("tunio").result, name="tunio")
    hstuner_model = lifecycle_model(
        sim, app, pipeline.get("hstuner-nostop").result, name="h5tuner"
    )
    base_model = untuned_model(sim, app)
    return LifecycleResult(
        tunio=tunio_model,
        hstuner=hstuner_model,
        untuned=base_model,
        tunio_viability=viability_point(tunio_model, base_model),
        hstuner_viability=viability_point(hstuner_model, base_model),
        tunio_advantage_until=crossover_point(tunio_model, hstuner_model),
    )
