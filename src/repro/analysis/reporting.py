"""Plain-text reporting helpers for the experiment harness.

The benchmark suite prints each figure's rows/series the way the paper
reports them; these helpers keep the formatting consistent: aligned
tables, series sparklines, and paper-vs-measured comparison rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ComparisonRow", "format_comparison", "ascii_chart"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.2f}"
    return str(value)


def format_series(label: str, values: Sequence[float], width: int = 60) -> str:
    """One labelled numeric series, downsampled to fit the width."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return f"{label}: (empty)"
    step = max(1, arr.size // 16)
    shown = " ".join(f"{v:.2f}" for v in arr[::step])
    return f"{label:28s} [{arr.size} pts] {shown}"


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured metric."""

    metric: str
    paper: float | str
    measured: float | str
    note: str = ""


def format_comparison(rows: Sequence[ComparisonRow], title: str) -> str:
    """Render the paper-vs-measured table used in EXPERIMENTS.md."""
    return format_table(
        ["metric", "paper", "measured", "note"],
        [[r.metric, r.paper, r.measured, r.note] for r in rows],
        title=title,
    )


def ascii_chart(
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 70,
    ylabel: str = "",
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series gets its own marker; the y-axis is shared.  Used by the
    experiment reports so the regenerated "figures" read as figures in a
    terminal or in EXPERIMENTS.md.
    """
    if not series:
        return "(no data)"
    arrays = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    arrays = {k: v for k, v in arrays.items() if v.size > 0}
    if not arrays:
        return "(no data)"
    lo = min(float(v.min()) for v in arrays.values())
    hi = max(float(v.max()) for v in arrays.values())
    if hi <= lo:
        hi = lo + 1.0
    markers = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]

    def col_of(i: int, n: int) -> int:
        return 0 if n <= 1 else round(i * (width - 1) / (n - 1))

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for marker, (_, values) in zip(markers, arrays.items()):
        for i, value in enumerate(values):
            grid[row_of(float(value))][col_of(i, values.size)] = marker

    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:10.2f} |"
        elif r == height - 1:
            label = f"{lo:10.2f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    n_max = max(v.size for v in arrays.values())
    lines.append(" " * 12 + f"iteration 0 .. {n_max - 1}" + (f"   [{ylabel}]" if ylabel else ""))
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(markers, arrays)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
