"""The process-parallel experiment engine.

Every heavyweight figure experiment decomposes into independent tuning
runs: each run builds its own simulator (``ctx.simulator_for(n, salt)``),
its own RNG stream (``ctx.rng(salt)``) and its own evaluation cache, so
nothing a run does can perturb a sibling.  :class:`ExperimentRunner`
exploits exactly that: each :class:`RunSpec` is a seed-addressed job
(a module-level function plus primitive kwargs) that can execute in this
process or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and
because the per-job seed/salt derivation is identical either way, the
merged results are **bit-identical** to the serial path.

Serial remains the default (``workers=None``); ``workers >= 2`` opts in
to the pool.  Order-sensitive work -- evaluations that consume a shared
noise stream (Figure 11's ``eval_sim``) or depend on another run's
output (Figure 8's accuracy check) -- stays in the merge step of each
``fig*`` function, which runs in the parent in serial order.

Context shipping
----------------
Workers need the offline-trained agents, and retraining them per worker
would cost more than the parallelism saves.  The pool initializer ships
the parent's :class:`~repro.analysis.context.ExperimentContext` (pickled
once per worker) and registers it via
:func:`~repro.analysis.context.install_context`, so a job's
``make_context(seed)`` call returns the parent's trained weights --
which is also what makes parallel runs bit-identical to serial ones.

Shared disk cache
-----------------
``cache_dir`` threads a
:class:`~repro.iostack.diskcache.DiskCacheBackend` directory into every
job.  Concurrent workers then share traces through the filesystem
(atomic content-addressed entries), recovering the cross-run trace
dedup that a single in-process cache used to provide -- and keeping it
across separate invocations.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

__all__ = ["RunSpec", "ExperimentRunner"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import ExperimentContext


@dataclass(frozen=True)
class RunSpec:
    """One independent, seed-addressed unit of an experiment.

    ``fn`` must be a module-level function (picklable by qualified name)
    and ``kwargs`` plain picklable values -- seeds, salts, workload
    names -- never live simulators or tuners: the job *derives* its
    private state from the addressing, which is what makes it
    location-transparent.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def _execute_spec(spec: RunSpec) -> Any:
    """Module-level trampoline so the pool pickles the spec, not a
    bound method."""
    return spec.run()


def _worker_init(context: "ExperimentContext | None") -> None:
    """Pool initializer: install the parent's trained context so the
    worker's ``make_context`` never retrains (and matches the parent's
    weights exactly)."""
    if context is not None:
        from .context import install_context

        install_context(context)


class ExperimentRunner:
    """Maps :class:`RunSpec` jobs serially or over a process pool.

    Parameters
    ----------
    workers:
        ``None``, ``0`` or ``1`` run every job in-process (the default
        serial path); ``N >= 2`` dispatches jobs to a
        ``ProcessPoolExecutor`` with at most ``N`` workers.  Negative
        values are rejected.
    cache_dir:
        Optional directory for the persistent evaluation cache; jobs
        receive it as their ``cache_dir`` kwarg (when the spec carries
        one) and attach a shared
        :class:`~repro.iostack.diskcache.DiskCacheBackend` to their
        evaluation caches.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | Path | None = None,
    ):
        if workers is not None and workers < 0:
            raise ValueError(
                f"workers must be >= 0 (got {workers}); "
                "None/0/1 run serially, >= 2 uses a process pool"
            )
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None

    @property
    def parallel(self) -> bool:
        return self.workers is not None and self.workers >= 2

    def map(
        self,
        specs: Sequence[RunSpec],
        context: "ExperimentContext | None" = None,
    ) -> list[Any]:
        """Run every spec and return results in spec order.

        ``context`` is the parent's trained experiment context, shipped
        to pool workers via the initializer; it is ignored on the
        serial path (the jobs' own ``make_context`` already hits the
        in-process cache).
        """
        specs = list(specs)
        if not self.parallel or len(specs) <= 1:
            return [spec.run() for spec in specs]
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(specs)),
            initializer=_worker_init,
            initargs=(context,),
        ) as pool:
            futures = [pool.submit(_execute_spec, spec) for spec in specs]
            # Collect in submission order: result order must not depend
            # on completion order for the merge to be deterministic.
            return [future.result() for future in futures]
