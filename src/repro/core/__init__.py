"""TunIO: the paper's primary contribution.

The three components (Application I/O Discovery lives in
:mod:`repro.discovery`; this package adds the two RL agents and the
pipeline), the Table I API facade, the perf/RoTI metrics and the offline
training phase.
"""

from .api import TunIO
from .early_stopping import (
    EarlyStoppingAgent,
    EarlyStoppingConfig,
    GuardedStopper,
    OfflineTrainingReport,
    RLStopper,
)
from .objective import PerfNormalizer, perf_objective
from .offline_training import (
    SweepResult,
    TunIOAgents,
    impact_from_sweeps,
    load_agents,
    parameter_sweep,
    pretrain_subset_picker,
    save_agents,
    train_tunio_agents,
)
from .pipeline import TunIOTuner, TuningSession, build_tunio
from .roti import RoTICurve, roti, roti_curve
from .spec import TuningOutcome, TuningSpec, tune_application
from .smart_config import GuardedSubsetPicker, SmartConfigAgent, SmartConfigSettings

__all__ = [
    "TunIO",
    "EarlyStoppingAgent",
    "EarlyStoppingConfig",
    "GuardedStopper",
    "OfflineTrainingReport",
    "RLStopper",
    "PerfNormalizer",
    "perf_objective",
    "SweepResult",
    "TunIOAgents",
    "impact_from_sweeps",
    "load_agents",
    "parameter_sweep",
    "pretrain_subset_picker",
    "save_agents",
    "train_tunio_agents",
    "TunIOTuner",
    "TuningSession",
    "build_tunio",
    "TuningOutcome",
    "TuningSpec",
    "tune_application",
    "RoTICurve",
    "roti",
    "roti_curve",
    "GuardedSubsetPicker",
    "SmartConfigAgent",
    "SmartConfigSettings",
]
