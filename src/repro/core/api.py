"""The TunIO library facade: the paper's Table I API.

"TunIO separates its components and provides an interface so that they
can be used by other tuning pipelines":

=================  ====================================  ===================
Function           Input                                 Output
=================  ====================================  ===================
``stop``           current_iteration, best_perf          stop / continue
``discover_io``    source_code, options                  I/O kernel
``subset_picker``  perf, current_parameter_set           next_parameter_set
=================  ====================================  ===================

:class:`TunIO` binds the three offline-trained components behind exactly
those three methods, so an external pipeline (the paper's example uses
DEAP + HSTuner) can call them without knowing about the agents inside.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.discovery.kernel import DiscoveryOptions, IOKernel
from repro.discovery.kernel import discover_io as _discover_io

from .early_stopping import EarlyStoppingAgent
from .objective import PerfNormalizer
from .smart_config import SmartConfigAgent

__all__ = ["TunIO"]


class TunIO:
    """The user-facing TunIO component bundle.

    Parameters
    ----------
    smart_config:
        An (ideally offline-trained) Smart Configuration Generation
        agent.
    early_stopper:
        An (ideally offline-trained) Early Stopping agent.
    normalizer:
        Perf normalisation for the agents' internal units.
    """

    def __init__(
        self,
        smart_config: SmartConfigAgent,
        early_stopper: EarlyStoppingAgent,
        normalizer: PerfNormalizer,
    ):
        self.smart_config = smart_config
        self.early_stopper = early_stopper
        self.normalizer = normalizer
        self._perf_series: list[float] = []

    # -- Table I ------------------------------------------------------------------

    def stop(self, current_iteration: int, best_perf: float) -> bool:
        """Early Stopping: should the tuning pipeline stop?

        ``best_perf`` is the best objective (MB/s) attained in the
        current iteration; the component accumulates the series itself.
        """
        if current_iteration < 0:
            raise ValueError("current_iteration must be >= 0")
        if current_iteration != len(self._perf_series):
            # Restarted or out-of-order pipeline: resynchronise.
            self._perf_series = self._perf_series[:current_iteration]
        self._perf_series.append(self.normalizer.normalize(best_perf))
        return self.early_stopper.should_stop(
            self._perf_series, current_iteration, greedy=True
        )

    def discover_io(
        self,
        source_code: str,
        options: DiscoveryOptions | None = None,
        name: str = "app",
    ) -> IOKernel:
        """Application I/O Discovery: source code + options -> I/O
        kernel."""
        return _discover_io(source_code, name=name, options=options)

    def subset_picker(
        self,
        perf: float,
        current_parameter_set: Sequence[str] | None,
    ) -> tuple[str, ...]:
        """Smart Configuration Generation: the parameter subset to tune
        next, given the perf the current subset achieved."""
        iteration = len(self._perf_series)
        return self.smart_config.subset_picker(
            perf, current_parameter_set, iteration=iteration
        )

    # -- session management ----------------------------------------------------------

    def reset(self) -> None:
        """Start a fresh tuning pipeline (agents keep their learning)."""
        self._perf_series.clear()
        self.smart_config.reset_episode()
