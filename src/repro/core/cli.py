"""``tunio-tune``: tune a bundled workload end-to-end from the shell.

Runs the offline training phase (or loads a checkpoint), builds the
TunIO pipeline against the simulated Cori platform, tunes the chosen
application, and prints the tuning curve plus the chosen configuration.

Usage::

    tunio-tune flash
    tunio-tune hacc --tuner hstuner --iterations 40
    tunio-tune macsio --use-kernel --loop-reduction 0.01 --seed 7
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.discovery.kernel import DiscoveryOptions, discover_io
from repro.discovery.reducers import IOPathSwitching, LoopReduction, Reducer
from repro.iostack.cluster import cori
from repro.iostack.config import to_xml
from repro.iostack.evalcache import EvaluationCache
from repro.iostack.noise import NoiseModel
from repro.iostack.simulator import IOStackSimulator
from repro.tuners.hstuner import HSTuner
from repro.tuners.stoppers import HeuristicStopper, NoStop
from repro.workloads import bdcats, flash, hacc, ior, macsio_vpic_dipole, vpic
from repro.workloads.sources import canonical_hints, load_source

from .objective import PerfNormalizer
from .offline_training import load_agents, save_agents, train_tunio_agents
from .pipeline import build_tunio

__all__ = ["main", "build_parser"]

_WORKLOADS = {
    "vpic": vpic,
    "flash": flash,
    "hacc": hacc,
    "macsio": macsio_vpic_dipole,
    "bdcats": bdcats,
    "ior": ior,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tunio-tune",
        description="Tune a bundled HPC workload on the simulated I/O stack.",
    )
    parser.add_argument("workload", choices=sorted(_WORKLOADS))
    parser.add_argument(
        "--tuner", choices=("tunio", "hstuner", "hstuner-heuristic"),
        default="tunio", help="pipeline to run (default: tunio)",
    )
    parser.add_argument("--iterations", type=int, default=50, help="iteration budget")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--use-kernel", action="store_true",
        help="tune the discovered I/O kernel instead of the full application",
    )
    parser.add_argument(
        "--loop-reduction", type=float, default=None, metavar="FRACTION",
        help="apply loop reduction to the kernel (implies --use-kernel)",
    )
    parser.add_argument(
        "--path-switch", type=str, default=None, metavar="PREFIX",
        help="apply I/O path switching to the kernel (implies --use-kernel)",
    )
    parser.add_argument(
        "--expected-runs", type=float, default=None,
        help="anticipated production executions (stopper patience input)",
    )
    parser.add_argument(
        "--agents-cache", type=str, default=None, metavar="PATH",
        help="npz checkpoint for the offline-trained agents: loaded when "
             "present, written after training otherwise",
    )
    parser.add_argument(
        "--no-eval-cache", action="store_true",
        help="disable the evaluation (trace) cache; results are identical, "
             "only slower",
    )
    parser.add_argument(
        "--batch-workers", type=int, default=None, metavar="N",
        help="thread-pool size for building stack traces inside a GA "
             "generation (default: serial)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_workers is not None and args.batch_workers < 1:
        parser.error("--batch-workers must be >= 1")
    rng = np.random.default_rng(args.seed)

    workload = _WORKLOADS[args.workload]()
    platform = cori(workload.n_nodes)
    simulator = IOStackSimulator(platform, NoiseModel(seed=args.seed))
    normalizer = PerfNormalizer.for_platform(platform, workload.n_nodes)
    eval_cache = None if args.no_eval_cache else EvaluationCache()

    target = workload
    use_kernel = args.use_kernel or args.loop_reduction or args.path_switch
    if use_kernel:
        from repro.workloads.sources import available_sources

        if args.workload not in available_sources():
            print(
                f"tunio-tune: no bundled C source for {args.workload!r}; "
                f"kernel mode needs one of {available_sources()}",
                file=sys.stderr,
            )
            return 2
        reducers: list[Reducer] = []
        if args.loop_reduction:
            reducers.append(LoopReduction(args.loop_reduction))
        if args.path_switch:
            reducers.append(IOPathSwitching(args.path_switch))
        kernel = discover_io(
            load_source(args.workload),
            name=args.workload,
            options=DiscoveryOptions(
                reducers=tuple(reducers), hints=canonical_hints(args.workload)
            ),
        )
        target = kernel.to_workload()
        print(
            f"using I/O kernel: kept {kernel.kept_line_count}/"
            f"{kernel.original_line_count} lines"
        )

    if args.tuner == "tunio":
        if args.agents_cache and os.path.exists(args.agents_cache):
            print(f"loading trained agents from {args.agents_cache}")
            agents = load_agents(args.agents_cache, normalizer, rng=rng)
        else:
            print("offline training (sweep + PCA + log-curve RL)...")
            training = [vpic(), flash(), hacc()]
            agents = train_tunio_agents(
                simulator, training, normalizer, rng=rng, cache=eval_cache
            )
            if args.agents_cache:
                save_agents(agents, args.agents_cache)
                print(f"saved trained agents to {args.agents_cache}")
        tuner = build_tunio(
            simulator, agents, normalizer,
            expected_runs=args.expected_runs, rng=rng,
            cache=eval_cache, batch_workers=args.batch_workers,
        )
    elif args.tuner == "hstuner":
        tuner = HSTuner(
            simulator, stopper=NoStop(), rng=rng,
            cache=eval_cache, batch_workers=args.batch_workers,
        )
    else:
        tuner = HSTuner(
            simulator, stopper=HeuristicStopper(), rng=rng,
            cache=eval_cache, batch_workers=args.batch_workers,
        )

    print(f"tuning {target.name} with {tuner.name} (budget {args.iterations})...")
    result = tuner.tune(target, max_iterations=args.iterations)

    print(f"\nbaseline: {result.baseline_perf:10.1f} MB/s")
    for rec in result.history:
        marker = "  <- stopped" if result.stopped_at == rec.iteration else ""
        print(
            f"iter {rec.iteration:3d}  best {rec.best_perf:10.1f} MB/s  "
            f"t={rec.elapsed_minutes:8.1f} min  subset={len(rec.tuned_parameters):2d}{marker}"
        )
    print(
        f"\nfinal: {result.best_perf:.1f} MB/s "
        f"({result.best_perf / max(result.baseline_perf, 1e-9):.2f}x) "
        f"in {result.total_minutes:.1f} simulated minutes "
        f"({result.total_evaluations} evaluations, {result.stop_reason})"
    )
    if result.eval_stats is not None:
        print(f"fastpath: {result.eval_stats.describe()}")
    if result.best_config is not None:
        print("\nH5Tuner override file:")
        print(to_xml(result.best_config))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
