"""``tunio-tune``: tune a bundled workload end-to-end from the shell.

Runs the offline training phase (or loads a checkpoint), builds the
TunIO pipeline against the simulated Cori platform, tunes the chosen
application, and prints the tuning curve plus the chosen configuration.

Usage::

    tunio-tune flash
    tunio-tune hacc --tuner hstuner --iterations 40
    tunio-tune macsio --use-kernel --loop-reduction 0.01 --seed 7

Robustness features ride the same entry point: ``--fault-rate`` /
``--fault-straggler-rate`` / ``--fault-window`` inject a deterministic
:class:`~repro.iostack.faults.FaultPlan`, ``--fault-agent`` injects
agent-level faults (weight corruption, forced degenerate policies,
checkpoint truncation) that the guardrails detect and survive by
degrading to plain-GA tuning, ``--constraints`` arms cross-parameter
validation/repair, ``--max-retries`` / ``--eval-timeout`` shape the
resilient harness, and ``--journal PATH`` arms crash-safe
checkpointing.  An interrupted journaled run continues bit-identically
with::

    tunio-tune resume tuning.journal

Exit codes: 2 invalid input/constraint violation/missing file, 3
journal error, 4 harness failure, 5 evaluation failure, 6 rejected
agent checkpoint.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.discovery.kernel import DiscoveryOptions, discover_io
from repro.discovery.reducers import IOPathSwitching, LoopReduction, Reducer
from repro.iostack.cluster import cori
from repro.iostack.config import to_xml
from repro.iostack.evalcache import EvaluationCache
from repro.iostack.faults import (
    AGENT_FAULT_MODES,
    DegradedWindow,
    EvaluationError,
    FaultPlan,
)
from repro.iostack.noise import NoiseModel
from repro.iostack.parameters import (
    ConstraintContext,
    ConstraintViolationError,
    default_constraints,
)
from repro.iostack.simulator import IOStackSimulator
from repro.observability.metrics import (
    MetricsRegistry,
    fastpath_line,
    guardrails_line,
    resilience_line,
    snapshot_degraded,
)
from repro.observability.profiling import Profiler
from repro.observability.profiling import activate as activate_profiler
from repro.observability.profiling import deactivate as deactivate_profiler
from repro.observability.recorder import NULL_RECORDER, Recorder, TraceRecorder
from repro.observability.report import baseline_line, final_line, iteration_line
from repro.rl.guardrails import CheckpointError
from repro.tuners.hstuner import HSTuner
from repro.tuners.journal import JournalError, ReplayCursor, load_journal
from repro.tuners.resilience import HarnessError, RetryPolicy
from repro.tuners.stoppers import HeuristicStopper, NoStop
from repro.workloads import bdcats, flash, hacc, ior, macsio_vpic_dipole, vpic
from repro.workloads.sources import canonical_hints, load_source

from .objective import PerfNormalizer
from .offline_training import load_agents, save_agents, train_tunio_agents
from .pipeline import TuningSession, build_tunio

__all__ = ["main", "build_parser", "build_resume_parser"]

_WORKLOADS = {
    "vpic": vpic,
    "flash": flash,
    "hacc": hacc,
    "macsio": macsio_vpic_dipole,
    "bdcats": bdcats,
    "ior": ior,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tunio-tune",
        description="Tune a bundled HPC workload on the simulated I/O stack.",
    )
    parser.add_argument("workload", choices=sorted(_WORKLOADS))
    parser.add_argument(
        "--tuner", choices=("tunio", "hstuner", "hstuner-heuristic"),
        default="tunio", help="pipeline to run (default: tunio)",
    )
    parser.add_argument("--iterations", type=int, default=50, help="iteration budget")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--use-kernel", action="store_true",
        help="tune the discovered I/O kernel instead of the full application",
    )
    parser.add_argument(
        "--loop-reduction", type=float, default=None, metavar="FRACTION",
        help="apply loop reduction to the kernel (implies --use-kernel)",
    )
    parser.add_argument(
        "--path-switch", type=str, default=None, metavar="PREFIX",
        help="apply I/O path switching to the kernel (implies --use-kernel)",
    )
    parser.add_argument(
        "--expected-runs", type=float, default=None,
        help="anticipated production executions (stopper patience input)",
    )
    parser.add_argument(
        "--agents-cache", type=str, default=None, metavar="PATH",
        help="npz checkpoint for the offline-trained agents: loaded when "
             "present, written after training otherwise",
    )
    parser.add_argument(
        "--no-eval-cache", action="store_true",
        help="disable the evaluation (trace) cache; results are identical, "
             "only slower",
    )
    parser.add_argument(
        "--constraints", action="store_true",
        help="arm cross-parameter platform constraints: user seeds are "
             "validated strictly, GA offspring are repaired (stripe counts "
             "vs OSTs, aggregators vs MPI ranks, alignment divisibility)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for building stack traces inside a GA "
             "generation; omitted, 0 or 1 run serially (results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="persist the evaluation (trace) cache to DIR, shared by "
             "pool workers and across invocations; results are "
             "bit-identical with or without it",
    )
    parser.add_argument(
        "--batch-workers", type=int, default=None, metavar="N",
        help="deprecated alias (thread pool): use --workers, which builds "
             "traces on a process pool instead",
    )
    faults = parser.add_argument_group(
        "fault injection (seeded, deterministic; off by default)"
    )
    faults.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="per-attempt probability that an evaluation fails transiently",
    )
    faults.add_argument(
        "--fault-straggler-rate", type=float, default=0.0, metavar="P",
        help="per-run probability of a latency straggler",
    )
    faults.add_argument(
        "--fault-straggler-slowdown", type=float, default=4.0, metavar="X",
        help="service-time multiplier of a straggling run (default: 4)",
    )
    faults.add_argument(
        "--fault-window", action="append", default=None, metavar="S:E:X",
        dest="fault_windows",
        help="degraded-bandwidth window of the tuning clock, as "
             "start:end:slowdown in minutes (repeatable)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault schedule (default: --seed)",
    )
    faults.add_argument(
        "--fault-agent", choices=AGENT_FAULT_MODES, default=None, metavar="MODE",
        help="inject an agent-level fault (one of: "
             + ", ".join(AGENT_FAULT_MODES)
             + "); the guardrails detect it and degrade to plain-GA tuning",
    )
    faults.add_argument(
        "--fault-agent-at", type=int, default=0, metavar="ITER",
        help="iteration at which the agent fault engages (default: 0)",
    )
    resil = parser.add_argument_group("resilient evaluation harness")
    resil.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-attempts after a failed evaluation before quarantining "
             "(default: 2)",
    )
    resil.add_argument(
        "--retry-backoff", type=float, default=30.0, metavar="SECONDS",
        help="simulated backoff before the first retry, doubled per retry "
             "and charged to the tuning clock (default: 30)",
    )
    resil.add_argument(
        "--eval-timeout", type=float, default=None, metavar="SECONDS",
        help="simulated per-evaluation deadline; runs past it are treated "
             "as killed (default: none)",
    )
    parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="append each completed generation to a crash-safe journal; "
             "an interrupted run continues with `tunio-tune resume PATH`",
    )
    obs = parser.add_argument_group(
        "observability (pure observers; traced runs stay bit-identical)"
    )
    obs.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="stream schema-versioned JSONL run events to PATH; "
             "reconstruct curves and summaries later with `tunio-report PATH`",
    )
    obs.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the run's metrics-registry snapshot (counters, gauges, "
             "timers) to PATH as JSON",
    )
    obs.add_argument(
        "--profile", action="store_true",
        help="time the pipeline's hot paths (stack traversal, NN "
             "forward/backward, journal fsync) and print a span report",
    )
    return parser


def build_resume_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tunio-tune resume",
        description="Resume an interrupted journaled tuning run "
                    "bit-identically.",
    )
    parser.add_argument("journal", help="journal file of the interrupted run")
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="override the original iteration budget",
    )
    parser.add_argument(
        "--no-eval-cache", action="store_true",
        help=argparse.SUPPRESS,  # accepted only to reject it with a clear error
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="trace the resumed run to PATH (replayed generations are "
             "re-emitted, so the trace is complete on its own)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the resumed run's metrics snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a profiling span report for the resumed run",
    )
    return parser


def _validate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if args.iterations < 1:
        parser.error("--iterations must be >= 1")
    if args.workers is not None and args.workers < 0:
        parser.error(
            f"--workers must be >= 0 (a pool cannot have {args.workers} "
            "workers); omit the flag (or pass 0/1) for serial building"
        )
    if args.batch_workers is not None and args.batch_workers < 1:
        parser.error(
            "--batch-workers must be >= 1 (a thread pool cannot have "
            f"{args.batch_workers} workers); omit the flag for serial building"
        )
    if args.batch_workers is not None:
        print(
            "tunio-tune: --batch-workers (thread pool) is deprecated; "
            "use --workers N (process pool) instead",
            file=sys.stderr,
        )
    if args.cache_dir is not None and args.no_eval_cache:
        parser.error(
            "--cache-dir contradicts --no-eval-cache (a persistent cache "
            "directory needs the evaluation cache enabled)"
        )
    if not 0.0 <= args.fault_rate < 1.0:
        parser.error("--fault-rate must be in [0, 1)")
    if not 0.0 <= args.fault_straggler_rate < 1.0:
        parser.error("--fault-straggler-rate must be in [0, 1)")
    if args.fault_straggler_slowdown < 1.0:
        parser.error("--fault-straggler-slowdown must be >= 1")
    if args.max_retries < 0:
        parser.error(
            "--max-retries must be >= 0 (a negative retry count is "
            "contradictory; use 0 to quarantine on first failure)"
        )
    if args.retry_backoff < 0:
        parser.error("--retry-backoff must be >= 0")
    if args.eval_timeout is not None and args.eval_timeout <= 0:
        parser.error("--eval-timeout must be positive")
    if args.fault_agent_at < 0:
        parser.error("--fault-agent-at must be >= 0")
    if args.fault_agent == "checkpoint-truncation" and not args.agents_cache:
        parser.error(
            "--fault-agent checkpoint-truncation needs --agents-cache PATH "
            "(the fault corrupts that checkpoint file)"
        )
    for spec in args.fault_windows or ():
        try:
            DegradedWindow.parse(spec)
        except ValueError as exc:
            parser.error(str(exc))


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    """The fault plan the flags describe, or None when everything is off."""
    windows = tuple(DegradedWindow.parse(s) for s in args.fault_windows or ())
    agent_fault = getattr(args, "fault_agent", None)
    if not (args.fault_rate or args.fault_straggler_rate or windows or agent_fault):
        return None
    seed = args.fault_seed if args.fault_seed is not None else args.seed
    return FaultPlan(
        seed=seed,
        transient_error_rate=args.fault_rate,
        straggler_rate=args.fault_straggler_rate,
        straggler_slowdown=args.fault_straggler_slowdown,
        degraded_windows=windows,
        agent_fault=agent_fault,
        agent_fault_at=getattr(args, "fault_agent_at", 0),
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv[:1] == ["resume"]:
            return _resume(argv[1:])
        parser = build_parser()
        args = parser.parse_args(argv)
        _validate(parser, args)
        return _run(args, replay=None)
    except JournalError as exc:
        print(f"tunio-tune: journal error: {exc}", file=sys.stderr)
        return 3
    except HarnessError as exc:
        cause = exc.__cause__
        detail = f" ({cause})" if cause is not None else ""
        print(f"tunio-tune: evaluation harness failure: {exc}{detail}",
              file=sys.stderr)
        return 4
    except EvaluationError as exc:
        print(f"tunio-tune: evaluation failed: {exc} "
              f"(raise --max-retries or quarantine the configuration)",
              file=sys.stderr)
        return 5
    except CheckpointError as exc:
        print(f"tunio-tune: agent checkpoint error: {exc}", file=sys.stderr)
        return 6
    except FileNotFoundError as exc:
        print(f"tunio-tune: file not found: {exc.filename or exc}",
              file=sys.stderr)
        return 2
    except ConstraintViolationError as exc:
        print(f"tunio-tune: configuration violates platform constraints:\n{exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"tunio-tune: invalid input: {exc}", file=sys.stderr)
        return 2


def _resume(argv: list[str]) -> int:
    parser = build_resume_parser()
    resume_args = parser.parse_args(argv)
    if resume_args.no_eval_cache:
        parser.error(
            "--no-eval-cache contradicts resume: replaying a journal re-warms "
            "the trace cache to keep the resumed run bit-identical (the "
            "original run's cache flag is restored from the journal)"
        )
    if resume_args.iterations is not None and resume_args.iterations < 1:
        parser.error("--iterations must be >= 1")
    journal = load_journal(resume_args.journal)
    if journal.completed:
        print(
            f"tunio-tune: journal {resume_args.journal} records a completed "
            f"run ({journal.final.get('stop_reason')}); nothing to resume",
            file=sys.stderr,
        )
        return 1
    saved = journal.header.get("args")
    if not isinstance(saved, dict):
        raise JournalError(
            f"journal {resume_args.journal} has no recorded invocation; "
            f"it was not written by tunio-tune"
        )
    run_parser = build_parser()
    args = run_parser.parse_args([saved.pop("workload")])
    for key, value in saved.items():
        setattr(args, key, value)
    if resume_args.iterations is not None:
        args.iterations = resume_args.iterations
    args.journal = resume_args.journal
    # Observability is per-invocation, not part of the run's identity:
    # the resume flags replace whatever the original run used (replayed
    # generations are re-emitted, so a resume trace stands alone).
    args.trace_out = resume_args.trace_out
    args.metrics_out = resume_args.metrics_out
    args.profile = resume_args.profile
    print(
        f"resuming {args.workload} from {resume_args.journal} "
        f"({len(journal.generations)} journaled generations)"
    )
    return _run(args, replay=ReplayCursor(journal))


def _truncate_checkpoint(path: str) -> None:
    """Fault injection: chop an agent checkpoint to half its size, the
    classic crash-during-write corruption."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size // 2)


def _run(args: argparse.Namespace, replay: ReplayCursor | None) -> int:
    """Set up the observability surfaces, then run the campaign.

    The recorder and profiler are pure observers (no RNG, no clock), so
    a traced or profiled run stays bit-identical to a bare one.
    """
    recorder = (
        TraceRecorder(args.trace_out) if args.trace_out else NULL_RECORDER
    )
    profiler = Profiler() if args.profile else None
    if profiler is not None:
        activate_profiler(profiler)
    try:
        return _run_tuning(args, replay, recorder, profiler)
    finally:
        if profiler is not None:
            deactivate_profiler()
        recorder.close()


def _run_tuning(
    args: argparse.Namespace,
    replay: ReplayCursor | None,
    recorder: Recorder,
    profiler: Profiler | None,
) -> int:
    if recorder.enabled:
        recorder.emit(
            "run_args",
            args={k: v for k, v in sorted(vars(args).items())},
            resumed=replay is not None,
        )
    rng = np.random.default_rng(args.seed)

    workload = _WORKLOADS[args.workload]()
    platform = cori(workload.n_nodes)
    simulator = IOStackSimulator(platform, NoiseModel(seed=args.seed))
    normalizer = PerfNormalizer.for_platform(platform, workload.n_nodes)
    if args.no_eval_cache:
        eval_cache = None
    elif getattr(args, "cache_dir", None):
        from repro.iostack.diskcache import DiskCacheBackend

        eval_cache = EvaluationCache(backend=DiskCacheBackend(args.cache_dir))
    else:
        eval_cache = EvaluationCache()

    target = workload
    use_kernel = args.use_kernel or args.loop_reduction or args.path_switch
    if use_kernel:
        from repro.workloads.sources import available_sources

        if args.workload not in available_sources():
            print(
                f"tunio-tune: no bundled C source for {args.workload!r}; "
                f"kernel mode needs one of {available_sources()}",
                file=sys.stderr,
            )
            return 2
        reducers: list[Reducer] = []
        if args.loop_reduction:
            reducers.append(LoopReduction(args.loop_reduction))
        if args.path_switch:
            reducers.append(IOPathSwitching(args.path_switch))
        kernel = discover_io(
            load_source(args.workload),
            name=args.workload,
            options=DiscoveryOptions(
                reducers=tuple(reducers), hints=canonical_hints(args.workload)
            ),
        )
        target = kernel.to_workload()
        print(
            f"using I/O kernel: kept {kernel.kept_line_count}/"
            f"{kernel.original_line_count} lines"
        )

    policy = RetryPolicy(
        max_retries=args.max_retries,
        backoff_seconds=args.retry_backoff,
        timeout_seconds=args.eval_timeout,
    )
    fault_plan = _fault_plan(args)
    constraints = None
    if args.constraints:
        context = ConstraintContext.for_run(platform, target)
        constraints = default_constraints(context=context)
        print(
            f"constraints: {len(constraints)} rules armed "
            f"(n_osts={context.n_osts}, n_procs={context.n_procs})"
        )
    checkpoint_trip: str | None = None
    if args.tuner == "tunio":
        agents = None
        if args.agents_cache and os.path.exists(args.agents_cache):
            if (
                fault_plan is not None
                and fault_plan.agent_fault == "checkpoint-truncation"
            ):
                _truncate_checkpoint(args.agents_cache)
                print(
                    f"fault injection: truncated agent checkpoint "
                    f"{args.agents_cache}"
                )
            print(f"loading trained agents from {args.agents_cache}")
            try:
                agents = load_agents(args.agents_cache, normalizer, rng=rng)
            except CheckpointError as exc:
                checkpoint_trip = f"checkpoint:schema ({exc})"
                if recorder.enabled:
                    # The tuner never sees this trip (it happens before
                    # one exists), so the CLI records it itself;
                    # tunio-report prepends source=="cli" trips to the
                    # run_end list when reconstructing.
                    recorder.emit(
                        "guardrail_trip",
                        source="cli",
                        guardrail="checkpoint",
                        kind="schema",
                        detail=str(exc),
                        trip=checkpoint_trip,
                    )
                print(f"guardrails: agent checkpoint rejected: {exc}",
                      file=sys.stderr)
                print(
                    "guardrails: degraded mode -- tuning with plain GA "
                    "(full parameter set, patience-based stopping)"
                )
        else:
            print("offline training (sweep + PCA + log-curve RL)...")
            training = [vpic(), flash(), hacc()]
            agents = train_tunio_agents(
                simulator, training, normalizer, rng=rng, cache=eval_cache
            )
            if args.agents_cache:
                save_agents(agents, args.agents_cache)
                print(f"saved trained agents to {args.agents_cache}")
        if agents is not None:
            tuner = build_tunio(
                simulator, agents, normalizer,
                expected_runs=args.expected_runs, rng=rng,
                cache=eval_cache, workers=args.workers,
                batch_workers=args.batch_workers,
                retry_policy=policy, constraints=constraints,
                recorder=recorder,
            )
        else:
            # Degraded mode: the checkpoint was rejected; tune with the
            # plain GA under the patience heuristic instead of crashing
            # or retraining behind the user's back.
            tuner = HSTuner(
                simulator, stopper=HeuristicStopper(), rng=rng,
                cache=eval_cache, workers=args.workers,
                batch_workers=args.batch_workers,
                retry_policy=policy, constraints=constraints,
                recorder=recorder,
            )
    elif args.tuner == "hstuner":
        tuner = HSTuner(
            simulator, stopper=NoStop(), rng=rng,
            cache=eval_cache, workers=args.workers,
                batch_workers=args.batch_workers,
            retry_policy=policy, constraints=constraints,
            recorder=recorder,
        )
    else:
        tuner = HSTuner(
            simulator, stopper=HeuristicStopper(), rng=rng,
            cache=eval_cache, workers=args.workers,
                batch_workers=args.batch_workers,
            retry_policy=policy, constraints=constraints,
            recorder=recorder,
        )

    # Faults attach after offline training: the plan injects into the
    # *tuning* campaign; training sweeps run fault-free either way.
    simulator.faults = fault_plan
    if fault_plan is not None:
        agent_part = (
            f" agent={fault_plan.agent_fault}@{fault_plan.agent_fault_at}"
            if fault_plan.agent_fault is not None
            else ""
        )
        print(
            f"fault injection armed: rate={fault_plan.transient_error_rate} "
            f"stragglers={fault_plan.straggler_rate} "
            f"windows={len(fault_plan.degraded_windows)}"
            f"{agent_part} (seed {fault_plan.seed})"
        )

    session = TuningSession(
        tuner=tuner,
        workload=target,
        journal_path=args.journal,
        journal_header={"args": dict(vars(args))},
        replay=replay,
    )
    print(f"tuning {target.name} with {tuner.name} (budget {args.iterations})...")
    try:
        result = session.run(args.iterations)
    finally:
        session.close()

    # Summary lines render through the shared formatters so tunio-tune
    # and tunio-report (which rebuilds them from the trace) cannot drift.
    print("\n" + baseline_line(result))
    for rec in result.history:
        print(iteration_line(rec, result.stopped_at))
    print("\n" + final_line(result))
    if checkpoint_trip is not None:
        result.guardrail_trips = (checkpoint_trip,) + result.guardrail_trips
    registry = MetricsRegistry.from_run(
        result,
        cache_stats=eval_cache.stats() if eval_cache is not None else None,
        profiler=profiler,
    )
    snapshot = registry.snapshot()
    if result.eval_stats is not None:
        print(f"fastpath: {fastpath_line(snapshot)}")
        if snapshot_degraded(snapshot):
            print(f"resilience: {resilience_line(snapshot)}")
    if result.guardrail_trips:
        print(f"guardrails: {guardrails_line(result.guardrail_trips)}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics written to {args.metrics_out}")
    if result.best_config is not None:
        print("\nH5Tuner override file:")
        print(to_xml(result.best_config))
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
