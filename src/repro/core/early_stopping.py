"""TunIO's Early Stopping component.

An NN Q-learning agent (Section III-D) that watches the tuning run --
its inputs are "the perf gained in the respective iteration and the
number of iterations" -- and decides stop/continue.  It is trained
offline on generated noisy log curves until its average reward
stagnates (<5% improvement across five epochs), then keeps learning
online from the applications it tunes.

Design of the decision problem:

* **State** (5 features): iteration fraction ``t/T``, normalised
  best-so-far perf, gain over the last iteration, gain over the last
  ``delay`` iterations, and the (normalised) number of iterations since
  the last meaningful improvement -- the plateau-length signal.
* **Actions**: 0 = continue, 1 = stop (terminal).  Offline, stopping is
  rewarded with the exact trade-off it chose -- tuning cost saved minus
  gain forfeited -- which the generator knows because it made the curve.
* **Reward for continue**, matured with the paper's 5-iteration delay:
  the normalised perf gained over the next ``delay`` iterations minus a
  per-window tuning cost.  With discounting, Q(continue) is the expected
  remaining (cost-adjusted) gain, so the greedy policy stops exactly
  when further tuning no longer pays -- and rides out early plateaus,
  because from low-perf/early-iteration states the *expected* future
  gain across the training distribution is positive even when the
  current slope is zero.

:class:`RLStopper` adapts the trained agent to the
:class:`~repro.tuners.stoppers.Stopper` protocol and implements the
paper's future-work extension: an ``expected_runs`` input that lowers
the effective iteration cost when the tuned configuration will be
reused many times, letting the pipeline tune longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.iostack.faults import FaultPlan
from repro.rl.curves import LogCurve, LogCurveBatch, LogCurveGenerator
from repro.rl.guardrails import (
    GuardrailMonitor,
    LossDivergenceMonitor,
    corrupt_network,
    qagent_weight_issue,
)
from repro.rl.qlearning import QLearningAgent, QLearningConfig
from repro.rl.replay import DelayedRewardBuffer, Transition
from repro.tuners.base import IterationRecord
from repro.tuners.stoppers import FallbackStopper, Stopper

from .objective import PerfNormalizer

__all__ = [
    "EarlyStoppingConfig",
    "OfflineTrainingReport",
    "EarlyStoppingAgent",
    "RLStopper",
    "GuardedStopper",
]

_STATE_DIM = 5
_CONTINUE, _STOP = 0, 1


@dataclass(frozen=True)
class EarlyStoppingConfig:
    """Hyper-parameters of the early-stopping agent."""

    #: Reward-maturation delay in iterations (the paper uses 5).
    delay: int = 5
    #: Normalised-perf cost of one ``delay``-iteration window of tuning.
    iteration_cost: float = 0.025
    #: Nominal iteration budget used to normalise the iteration feature.
    max_iterations: int = 50
    discount: float = 0.97
    hidden: tuple[int, ...] = (32, 32)
    learning_rate: float = 1e-3
    #: Iterations the agent will never stop before (warm-up; a tuner
    #: cannot meaningfully stop before it has seen any trend).
    min_iterations: int = 4

    def __post_init__(self) -> None:
        if self.delay < 1 or self.max_iterations < 2:
            raise ValueError("delay and max_iterations must be positive")
        if self.iteration_cost < 0:
            raise ValueError("iteration_cost must be >= 0")
        if self.min_iterations < 0:
            raise ValueError("min_iterations must be >= 0")


@dataclass(frozen=True)
class OfflineTrainingReport:
    """Outcome of offline training."""

    epochs: int
    mean_rewards: tuple[float, ...]
    #: Mean |stop - ideal_stop| on held-out validation curves.
    validation_stop_error: float
    #: Mean fraction of the total gain captured at the stop point.
    validation_gain_captured: float
    stagnated: bool


class EarlyStoppingAgent:
    """The Q-learning stop/continue agent."""

    def __init__(
        self,
        config: EarlyStoppingConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or EarlyStoppingConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.agent = QLearningAgent(
            QLearningConfig(
                state_dim=_STATE_DIM,
                n_actions=2,
                hidden=self.config.hidden,
                learning_rate=self.config.learning_rate,
                discount=self.config.discount,
                epsilon_start=1.0,
                epsilon_end=0.02,
                epsilon_decay=0.997,
                batch_size=64,
                target_sync_every=100,
            ),
            self.rng,
        )

    # -- state construction --------------------------------------------------

    def state_from_series(self, values: Sequence[float], t: int) -> np.ndarray:
        """Build the 5-feature state from a best-so-far perf series
        (normalised units) at iteration ``t``."""
        cfg = self.config
        v = np.asarray(values, dtype=float)
        if not 0 <= t < v.size:
            raise IndexError(f"iteration {t} outside series of length {v.size}")
        gain_1 = v[t] - v[t - 1] if t >= 1 else 0.0
        back = max(0, t - cfg.delay)
        gain_d = v[t] - v[back] if t >= 1 else 0.0
        # Iterations since the last improvement of >=1.5% of current
        # perf (smaller gains are indistinguishable from measurement
        # luck on a noisy platform and must not reset the plateau clock).
        stall = 0
        threshold = 0.015 * max(v[t], 1e-9)
        for k in range(t, 0, -1):
            if v[k] - v[k - 1] >= threshold:
                break
            stall += 1
        return np.array(
            [
                min(2.0, t / cfg.max_iterations),
                v[t],
                gain_1,
                gain_d,
                min(4.0, stall / cfg.delay),
            ],
            dtype=float,
        )

    def states_matrix(self, values_matrix: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`state_from_series`: the 5-feature state for
        every iteration of every curve in a ``(count, n)`` best-so-far
        matrix, returned as ``(count, n, 5)``.

        Feature-for-feature identical to the serial construction
        (pinned by tests), so a greedy policy makes the same decision
        whichever path built its state.
        """
        cfg = self.config
        v = np.atleast_2d(np.asarray(values_matrix, dtype=float))
        m, n = v.shape
        t = np.arange(n)

        gain_1 = np.zeros((m, n))
        gain_1[:, 1:] = v[:, 1:] - v[:, :-1]
        back = np.maximum(0, t - cfg.delay)
        gain_d = v - v[:, back]
        gain_d[:, 0] = 0.0

        # stall[i, t]: iterations since the last >=1.5%-of-current
        # improvement, walking k = t..1 exactly like the serial loop.
        thresholds = 0.015 * np.maximum(v, 1e-9)  # (m, n)
        k = np.arange(1, n)
        # qualifies[i, t, k-1]: step k improved enough, judged at t.
        qualifies = gain_1[:, None, 1:] >= thresholds[:, :, None]
        qualifies &= k[None, None, :] <= t[None, :, None]
        last_k = np.max(np.where(qualifies, k[None, None, :], 0), axis=2)
        stall = t[None, :] - last_k

        return np.stack(
            [
                np.broadcast_to(np.minimum(2.0, t / cfg.max_iterations), (m, n)),
                v,
                gain_1,
                gain_d,
                np.minimum(4.0, stall / cfg.delay),
            ],
            axis=2,
        )

    # -- decisions ------------------------------------------------------------

    def should_stop(self, values: Sequence[float], t: int, greedy: bool = True) -> bool:
        """Greedy stop/continue decision at iteration ``t`` of a series."""
        if t < self.config.min_iterations:
            return False
        state = self.state_from_series(values, t)
        return self.agent.act(state, greedy=greedy) == _STOP

    # -- offline training ------------------------------------------------------

    def _monte_carlo_pretrain(
        self,
        generator: LogCurveGenerator,
        rng: np.random.Generator,
        n_curves: int = 600,
        epochs: int = 60,
    ) -> None:
        """Supervised warm start: regress Q(s, continue) onto the true
        discounted continue-forever return of each state (computable
        offline because the generator knows the whole curve) and
        Q(s, stop) onto zero.  This pins the stop/continue boundary to
        the cost-vs-remaining-gain economics before the episodic phase
        refines it."""
        cfg = self.config
        states: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        for _ in range(n_curves):
            v = generator.sample(rng).values
            n = v.size
            # Per-step matured reward, pro-rated from the delay window.
            r = np.empty(n - 1)
            for t in range(n - 1):
                horizon = min(t + cfg.delay, n - 1)
                r[t] = ((v[horizon] - v[t]) - cfg.iteration_cost) / cfg.delay
            returns = np.zeros(n)
            for t in range(n - 2, -1, -1):
                returns[t] = r[t] + cfg.discount * returns[t + 1]
            # Sample a handful of states per curve to keep the set varied.
            for t in rng.choice(n - 1, size=min(20, n - 1), replace=False):
                t = int(t)
                states.append(self.state_from_series(v, t))
                targets.append(np.array([returns[t], 0.0]))
        x = np.stack(states)
        y = np.stack(targets)
        self.agent.q_network.fit(x, y, epochs=epochs, batch_size=64, rng=rng)
        self.agent.target_network.copy_from(self.agent.q_network)

    def _monte_carlo_pretrain_batched(
        self,
        generator: LogCurveGenerator,
        rng: np.random.Generator,
        n_curves: int = 600,
        epochs: int = 60,
    ) -> None:
        """Vectorized :meth:`_monte_carlo_pretrain`: the curves arrive
        as one matrix, the discounted continue-forever returns and the
        state features are computed array-at-a-time, and the regression
        runs in larger minibatches.  Same warm-start economics, a
        fraction of the python-loop cost."""
        cfg = self.config
        batch = generator.sample_matrix(n_curves, rng)
        v = batch.values
        m, n = v.shape

        horizon = np.minimum(np.arange(n - 1) + cfg.delay, n - 1)
        r = (v[:, horizon] - v[:, :-1] - cfg.iteration_cost) / cfg.delay
        returns = np.zeros((m, n))
        for t in range(n - 2, -1, -1):
            returns[:, t] = r[:, t] + cfg.discount * returns[:, t + 1]

        states = self.states_matrix(v)
        per_curve = min(20, n - 1)
        # Distinct sampled iterations per curve, one argsort instead of
        # per-curve ``choice`` calls.
        picks = np.argsort(rng.random((m, n - 1)), axis=1)[:, :per_curve]
        rows = np.repeat(np.arange(m), per_curve)
        cols = picks.ravel()
        x = states[rows, cols]
        y = np.stack([returns[rows, cols], np.zeros(rows.size)], axis=1)
        self.agent.q_network.fit(x, y, epochs=epochs, batch_size=256, rng=rng)
        self.agent.target_network.copy_from(self.agent.q_network)

    def train_offline(
        self,
        generator: LogCurveGenerator | None = None,
        rng: np.random.Generator | None = None,
        max_epochs: int = 40,
        episodes_per_epoch: int = 32,
        stagnation_threshold: float = 0.05,
        stagnation_window: int = 5,
        validation_curves: int = 40,
        batched: bool = False,
    ) -> OfflineTrainingReport:
        """Train on synthetic log curves: a Monte-Carlo supervised warm
        start, then episodic Q-learning until the average reward
        stagnates (the paper's <5%-over-5 criterion); finally validate
        against the curves' known ideal stop points.

        ``batched=True`` runs the offline-fastpath variant: matrix curve
        generation, vectorized state construction, lockstep episodes and
        large-minibatch updates.  It reaches the same stagnation
        criterion and comparable validation quality (pinned by the
        checkpoint-level equivalence tests) but is not bit-identical to
        the serial path -- the per-sample random streams differ.
        """
        generator = generator or LogCurveGenerator()
        rng = rng if rng is not None else self.rng
        if batched:
            self._monte_carlo_pretrain_batched(generator, rng)
        else:
            self._monte_carlo_pretrain(generator, rng)
        # The warm start means little exploration is needed afterwards.
        self.agent.epsilon = 0.2

        mean_rewards: list[float] = []
        stagnated = False
        min_epochs = 4 * stagnation_window  # let exploration decay first
        for _ in range(max_epochs):
            if batched:
                curve_batch = generator.sample_matrix(episodes_per_epoch, rng)
                rewards = self._run_episode_batch(curve_batch)
                mean_rewards.append(float(np.mean(rewards)))
            else:
                rewards = []
                for _ in range(episodes_per_epoch):
                    rewards.append(self._run_episode(generator.sample(rng), learn=True))
                    self.agent.decay_epsilon()
                mean_rewards.append(float(np.mean(rewards)))
            if len(mean_rewards) >= min_epochs:
                # Window means rather than point values: single-epoch
                # reward estimates are too noisy to test a 5% criterion.
                now = float(np.mean(mean_rewards[-stagnation_window:]))
                past = float(
                    np.mean(mean_rewards[-2 * stagnation_window : -stagnation_window])
                )
                denom = abs(past) if abs(past) > 1e-9 else 1.0
                if (now - past) / denom < stagnation_threshold:
                    stagnated = True
                    break

        if batched:
            val = generator.sample_matrix(validation_curves, rng)
            stops = self.evaluate_stop_points_matrix(val.values)
            econ = self.economic_stops_matrix(val.values)
            errors_arr = np.abs(stops - econ).astype(float)
            total_gain = val.values[:, -1] - val.values[:, 0]
            got = val.values[np.arange(len(val)), stops] - val.values[:, 0]
            captured_arr = np.where(total_gain > 0, got / np.maximum(total_gain, 1e-12), 1.0)
            return OfflineTrainingReport(
                epochs=len(mean_rewards),
                mean_rewards=tuple(mean_rewards),
                validation_stop_error=float(np.mean(errors_arr)),
                validation_gain_captured=float(np.mean(captured_arr)),
                stagnated=stagnated,
            )

        errors: list[float] = []
        captured: list[float] = []
        for _ in range(validation_curves):
            curve = generator.sample(rng)
            stop = self.evaluate_stop_point(curve)
            errors.append(abs(stop - self.economic_stop(curve)))
            total_gain = curve.final - curve.initial
            got = curve.values[stop] - curve.initial
            captured.append(float(got / total_gain) if total_gain > 0 else 1.0)
        return OfflineTrainingReport(
            epochs=len(mean_rewards),
            mean_rewards=tuple(mean_rewards),
            validation_stop_error=float(np.mean(errors)),
            validation_gain_captured=float(np.mean(captured)),
            stagnated=stagnated,
        )

    def economic_stop(self, curve: LogCurve) -> int:
        """The cost-optimal stop point under this agent's iteration
        cost: argmax of perf minus the pro-rated tuning cost."""
        c = self.config.iteration_cost / self.config.delay
        t = np.arange(curve.values.size)
        return int(np.argmax(curve.values - c * t))

    def economic_stops_matrix(self, values_matrix: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`economic_stop` over a curve matrix."""
        v = np.atleast_2d(np.asarray(values_matrix, dtype=float))
        c = self.config.iteration_cost / self.config.delay
        t = np.arange(v.shape[1])
        return np.argmax(v - c * t[None, :], axis=1)

    def evaluate_stop_point(self, curve: LogCurve) -> int:
        """Where the greedy policy stops on a curve (its last index if it
        never stops)."""
        for t in range(curve.values.size):
            if self.should_stop(curve.values, t, greedy=True):
                return t
        return curve.values.size - 1

    def evaluate_stop_points_matrix(self, values_matrix: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate_stop_point`: one batched forward
        pass scores every (curve, iteration) state; each curve's stop is
        the first greedy STOP at or after the warm-up.  Greedy decisions
        match the serial path exactly for the same weights (``argmax``
        ties resolve to CONTINUE both ways)."""
        v = np.atleast_2d(np.asarray(values_matrix, dtype=float))
        m, n = v.shape
        states = self.states_matrix(v).reshape(m * n, _STATE_DIM)
        q = np.asarray(self.agent.q_network(states)).reshape(m, n, 2)
        stops = q[:, :, _STOP] > q[:, :, _CONTINUE]
        stops[:, : self.config.min_iterations] = False
        first = np.argmax(stops, axis=1)
        return np.where(stops.any(axis=1), first, n - 1)

    # -- learning machinery -----------------------------------------------------

    def _run_episode(self, curve: LogCurve, learn: bool) -> float:
        """One training episode over a synthetic curve; returns the
        (undiscounted) episode reward."""
        cfg = self.config
        v = curve.values
        buffer = DelayedRewardBuffer(delay=cfg.delay)
        total_reward = 0.0

        def continue_reward(born: int, now: int) -> float:
            horizon = min(born + cfg.delay, v.size - 1)
            return float(v[horizon] - v[born]) - cfg.iteration_cost

        t = 0
        while t < v.size - 1:
            state = self.state_from_series(v, t)
            action = self.agent.act(state) if t >= cfg.min_iterations else _CONTINUE
            if action == _STOP:
                if learn:
                    # Offline we know the whole curve, so the stop action
                    # gets the exact trade-off it chose: the gain it
                    # forfeited versus the tuning cost it saved.
                    remaining_gain = float(v[-1] - v[t])
                    saved_cost = cfg.iteration_cost * (v.size - 1 - t) / cfg.delay
                    self.agent.observe(
                        Transition(state, _STOP, saved_cost - remaining_gain, state, done=True)
                    )
                    self._flush(buffer, t, v)
                    self.agent.train_step()
                break
            buffer.remember(state, _CONTINUE, t)
            t += 1
            matured = buffer.mature(
                t, continue_reward, self.state_from_series(v, t), done=False
            )
            for tr in matured:
                total_reward += tr.reward
                if learn:
                    self.agent.observe(tr)
            if learn:
                self.agent.train_step()
        else:
            if learn:
                self._flush(buffer, v.size - 1, v)
                self.agent.train_step()
        return total_reward

    def _run_episode_batch(self, curves: LogCurveBatch) -> np.ndarray:
        """One epoch of lockstep episodes over a curve batch; returns
        each episode's (undiscounted) matured continue-reward total.

        The batched analogue of ``episodes_per_epoch`` serial
        :meth:`_run_episode` calls: every episode advances one iteration
        per step, the whole batch acts through one epsilon-greedy
        forward pass, matured transitions are pushed as arrays, and one
        large-minibatch :meth:`QLearningAgent.train_step` runs per
        lockstep step instead of one per episode per step.  Training
        dynamics are therefore checkpoint-equivalent (same stagnation
        criterion, comparable validation quality), not bit-identical.
        """
        cfg = self.config
        agent = self.agent
        v = curves.values
        m, n = v.shape
        states = self.states_matrix(v)

        # Matured continue reward for a decision born at t (independent
        # of when it matures -- the horizon is pinned to born + delay).
        horizon = np.minimum(np.arange(n) + cfg.delay, n - 1)
        continue_reward = v[:, horizon] - v - cfg.iteration_cost

        # Larger lockstep batches compensate for running one update per
        # step instead of one per episode per step.
        step_batch = max(agent.config.batch_size, 4 * m)

        active = np.ones(m, dtype=bool)
        end_t = np.full(m, n - 1)
        for t in range(n - 1):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            if t >= cfg.min_iterations:
                actions = agent.act_batch(states[idx, t])
            else:
                actions = np.zeros(idx.size, dtype=int)

            stopping = idx[actions == _STOP]
            if stopping.size:
                # Exact trade-off reward for the stop decision, as in
                # the serial episode.
                remaining_gain = v[stopping, -1] - v[stopping, t]
                saved_cost = cfg.iteration_cost * (n - 1 - t) / cfg.delay
                agent.observe_batch(
                    states[stopping, t],
                    _STOP,
                    saved_cost - remaining_gain,
                    states[stopping, t],
                    True,
                )
                # Flush their pending continues: born in (t - delay, t),
                # matured with done=True at the stop state.
                for born in range(max(0, t - cfg.delay + 1), t):
                    agent.observe_batch(
                        states[stopping, born],
                        _CONTINUE,
                        continue_reward[stopping, born],
                        states[stopping, t],
                        True,
                    )
                end_t[stopping] = t
                active[stopping] = False

            still = idx[actions == _CONTINUE]
            # Advancing to t+1 matures the decision born delay steps
            # ago, exactly like the serial buffer.mature call.
            born = t + 1 - cfg.delay
            if born >= 0 and still.size:
                agent.observe_batch(
                    states[still, born],
                    _CONTINUE,
                    continue_reward[still, born],
                    states[still, t + 1],
                    False,
                )
            agent.train_step(batch_size=step_batch)

        # Episodes that ran to the end flush their remaining pending
        # continues at the terminal state, exactly like the serial else
        # branch.
        full = np.flatnonzero(active)
        if full.size:
            for born in range(max(0, n - 1 - cfg.delay + 1), n - 1):
                agent.observe_batch(
                    states[full, born],
                    _CONTINUE,
                    continue_reward[full, born],
                    states[full, n - 1],
                    True,
                )
            agent.train_step(batch_size=step_batch)

        # The serial episode's reward total counts continues matured
        # inside the loop: born <= end_t - delay.
        matured_upto = end_t - cfg.delay
        t_grid = np.arange(n)
        counted = t_grid[None, :] <= matured_upto[:, None]
        totals = np.where(counted, continue_reward, 0.0).sum(axis=1)

        # Serial training decays epsilon once per episode.
        for _ in range(m):
            agent.decay_epsilon()
        return totals

    def _flush(self, buffer: DelayedRewardBuffer, t: int, v: np.ndarray) -> None:
        cfg = self.config

        def reward(born: int, now: int) -> float:
            horizon = min(born + cfg.delay, v.size - 1)
            return float(v[horizon] - v[born]) - cfg.iteration_cost

        for tr in buffer.mature(t, reward, self.state_from_series(v, t), done=True):
            self.agent.observe(tr)

    # -- checkpointing -------------------------------------------------------------

    def get_weights(self) -> dict[str, np.ndarray]:
        return self.agent.get_weights()

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        self.agent.set_weights(weights)


class RLStopper:
    """Adapter: the trained agent as a tuning-pipeline
    :class:`~repro.tuners.stoppers.Stopper`.

    Keeps learning online: every iteration's observation is pushed into
    the agent's replay with the same delayed-reward scheme used offline.

    Parameters
    ----------
    agent:
        A (typically offline-trained) :class:`EarlyStoppingAgent`.
    normalizer:
        Maps the pipeline's raw MB/s to the agent's normalised units.
    expected_runs:
        Anticipated production executions of the tuned application.  The
        default (None) keeps the agent's trained cost; larger values
        scale the effective iteration cost down (more patience), the
        paper's proposed future-work input.
    online_learning:
        Whether to keep training during live tuning.
    """

    #: expected_runs at which the agent's trained cost applies unchanged.
    REFERENCE_RUNS = 1000.0

    def __init__(
        self,
        agent: EarlyStoppingAgent,
        normalizer: PerfNormalizer,
        expected_runs: float | None = None,
        online_learning: bool = True,
    ):
        if expected_runs is not None and expected_runs <= 0:
            raise ValueError("expected_runs must be positive")
        self.agent = agent
        self.normalizer = normalizer
        self.expected_runs = expected_runs
        self.online_learning = online_learning
        self.name = "tunio-rl-stopper"
        self._series: list[float] = []
        self._buffer = DelayedRewardBuffer(delay=agent.config.delay)

    def reset(self) -> None:
        self._series.clear()
        self._buffer.clear()

    def _patience_scale(self) -> float:
        if self.expected_runs is None:
            return 1.0
        # More production runs -> cheaper tuning iterations, log-scaled.
        return 1.0 / max(0.25, np.log10(self.expected_runs) / np.log10(self.REFERENCE_RUNS))

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        if not history:
            return False
        self._series.append(self.normalizer.normalize(history[-1].best_perf))
        t = len(self._series) - 1

        if self.online_learning and t >= 1:
            cfg = self.agent.config
            cost = cfg.iteration_cost * self._patience_scale()
            v = self._series

            def reward(born: int, now: int) -> float:
                horizon = min(born + cfg.delay, len(v) - 1)
                return float(v[horizon] - v[born]) - cost

            state_prev = self.agent.state_from_series(v, t - 1)
            self._buffer.remember(state_prev, _CONTINUE, t - 1)
            for tr in self._buffer.mature(
                t, reward, self.agent.state_from_series(v, t), done=False
            ):
                self.agent.agent.observe(tr)
            self.agent.agent.train_step()

        decision = self.agent.should_stop(self._series, t, greedy=True)
        if decision and self.expected_runs is not None:
            # Patience: with many production runs ahead, require the
            # projected remaining gain to be truly negligible before
            # accepting the stop (scale the Q-margin by patience).
            q = self.agent.agent.q_values(self.agent.state_from_series(self._series, t))
            margin = q[_STOP] - q[_CONTINUE]
            decision = margin >= (self._patience_scale() - 1.0) * self.agent.config.iteration_cost
        return bool(decision)


class GuardedStopper(FallbackStopper):
    """Guardrail wrapper around :class:`RLStopper`.

    A :class:`~repro.tuners.stoppers.FallbackStopper` whose trip
    conditions are evaluated automatically each call:

    * **weight health** -- before the RL stopper runs (and before it
      would consume any agent RNG), its Q-networks are scanned for
      non-finite or exploded weights;
    * **training health** -- after a healthy decision, the Q-network's
      last loss / gradient-norm telemetry feeds a
      :class:`~repro.rl.guardrails.LossDivergenceMonitor`;
    * **degenerate-policy watchdog** -- a stop decision below the
      agent's ``min_iterations`` warm-up is impossible for a healthy
      policy (``EarlyStoppingAgent.should_stop`` hard-returns False
      there), so two consecutive such decisions trip the guardrail.
      Single suppressed decisions are withheld (``False``) rather than
      obeyed.

    On any trip the stopper degrades permanently to the fallback
    (default: the paper's 5%/5 patience heuristic).  Because every check
    runs before the RL agent draws randomness, a run degraded at
    iteration ``k`` consumes exactly the same downstream random streams
    as a run that never had an RL stopper -- the degraded-mode
    bit-reproducibility contract.

    Fault injection (``FaultPlan.agent_fault``): ``nan-weights`` /
    ``explode-weights`` corrupt the Q-networks once when the fault
    activates; ``stop-now`` forces a stop decision without consulting
    the agent (caught by the watchdog when it fires inside the warm-up).
    """

    def __init__(
        self,
        primary: RLStopper,
        monitor: GuardrailMonitor | None = None,
        fault_source: Callable[[], FaultPlan | None] | None = None,
        fallback: Stopper | None = None,
    ):
        super().__init__(primary, fallback)
        self.monitor = monitor if monitor is not None else GuardrailMonitor()
        self._fault_source = fault_source
        self._corrupted = False
        self._early_stop_streak = 0
        # Same rationale as GuardedSubsetPicker: healthy online-RL losses
        # are orders-of-magnitude volatile; only numerical runaway trips.
        self._loss_monitor = LossDivergenceMonitor(divergence_factor=1e6)
        self.name = f"guarded({self.primary.name}->{self.fallback.name})"

    def _trip(self, kind: str, detail: str, iteration: int | None = None) -> None:
        self.monitor.trip("early-stopper", kind, detail, iteration=iteration)
        self.degrade(f"{kind}: {detail}")

    def _active_fault(self, iteration: int) -> str | None:
        if self._fault_source is None:
            return None
        plan = self._fault_source()
        if plan is None:
            return None
        return plan.agent_fault_active(iteration)

    def _apply_corruption(self, mode: str) -> None:
        if self._corrupted:
            return
        self._corrupted = True
        agent = self.primary.agent.agent
        corrupt_network(agent.q_network, mode)
        corrupt_network(agent.target_network, mode)

    @property
    def expected_runs(self) -> float | None:
        """The wrapped RL stopper's patience input (the wrapper keeps the
        :class:`RLStopper` attribute surface for callers)."""
        return self.primary.expected_runs

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        if self.degraded:
            return self.fallback.should_stop(history)
        if not history:
            return False
        t = len(history) - 1

        fault = self._active_fault(t)
        if fault in ("nan-weights", "explode-weights"):
            self._apply_corruption(fault)

        # Pre-call weight scan: trips before any agent RNG is consumed.
        issue = qagent_weight_issue(self.primary.agent.agent)
        if issue is not None:
            kind = "non-finite-weights" if "non-finite" in issue else "exploded-weights"
            self._trip(kind, issue, t)
            return self.fallback.should_stop(history)

        if fault == "stop-now":
            decision = True
        else:
            decision = self.primary.should_stop(history)
            q_network = self.primary.agent.agent.q_network
            reason = self._loss_monitor.observe(
                q_network.last_loss, q_network.last_grad_norm
            )
            if reason is not None:
                self._trip("training-divergence", reason, t)
                return self.fallback.should_stop(history)

        # Degenerate-policy watchdog: a healthy policy cannot stop inside
        # the warm-up window, so repeated attempts mean it is broken.
        if decision and t < self.primary.agent.config.min_iterations:
            self._early_stop_streak += 1
            if self._early_stop_streak >= 2:
                self._trip(
                    "degenerate-policy",
                    f"stop requested at iteration {t}, inside the "
                    f"{self.primary.agent.config.min_iterations}-iteration warm-up, "
                    f"{self._early_stop_streak} times in a row",
                    t,
                )
                return self.fallback.should_stop(history)
            return False
        self._early_stop_streak = 0
        return decision

    def reset(self) -> None:
        super().reset()
        self._corrupted = False
        self._early_stop_streak = 0
        self._loss_monitor.reset()
