"""The paper's I/O performance objective and its normalisations.

``perf = (1 - alpha) * BW_r + alpha * BW_w`` where alpha is the ratio of
bytes written over total bytes transferred and the bandwidths are in
MB/s.  The RL agents consume *normalised* perf: the paper normalises by
``1 / (BW_single x num_nodes)`` -- one node's achievable bandwidth times
the node count -- and normalises subset sizes by the total parameter
count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.iostack.cluster import Platform
from repro.iostack.faults import EvaluationError
from repro.iostack.units import bytes_per_sec_to_mb_per_sec

__all__ = ["perf_objective", "PerfNormalizer"]


def perf_objective(write_bw_mbps: float, read_bw_mbps: float, alpha: float) -> float:
    """The paper's objective, in MB/s.

    ``alpha`` is the write fraction of transferred bytes in [0, 1].
    Non-finite bandwidths raise :class:`~repro.iostack.faults.EvaluationError`
    (a corrupted measurement is a retryable evaluation failure, not a
    crash of the tuning loop).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if not (math.isfinite(write_bw_mbps) and math.isfinite(read_bw_mbps)):
        raise EvaluationError(
            f"non-finite bandwidth measurement: write={write_bw_mbps!r} "
            f"read={read_bw_mbps!r}"
        )
    if write_bw_mbps < 0 or read_bw_mbps < 0:
        raise ValueError("bandwidths must be >= 0")
    return (1.0 - alpha) * read_bw_mbps + alpha * write_bw_mbps


@dataclass(frozen=True)
class PerfNormalizer:
    """Maps raw perf (MB/s) to the normalised units the agents train on.

    ``single_node_bandwidth_mbps`` is BW_single: what one node can push
    to the file system (the per-node client ceiling); the normaliser is
    ``1 / (BW_single x num_nodes)``, so a perfectly client-bound tuned
    run normalises to ~1.0.
    """

    single_node_bandwidth_mbps: float
    num_nodes: int

    def __post_init__(self) -> None:
        if self.single_node_bandwidth_mbps <= 0:
            raise ValueError("single_node_bandwidth_mbps must be positive")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")

    #: Client bandwidth scales sublinearly with nodes on real systems;
    #: the normaliser must follow or large-job perf reads as tiny.
    node_scaling_exponent: float = 1.0

    @classmethod
    def for_platform(cls, platform: Platform, num_nodes: int | None = None) -> "PerfNormalizer":
        return cls(
            single_node_bandwidth_mbps=bytes_per_sec_to_mb_per_sec(
                platform.client_lustre_bandwidth
            ),
            num_nodes=num_nodes if num_nodes is not None else platform.n_nodes,
            node_scaling_exponent=platform.client_scaling_exponent,
        )

    @property
    def scale_mbps(self) -> float:
        return self.single_node_bandwidth_mbps * self.num_nodes**self.node_scaling_exponent

    def normalize(self, perf_mbps: float) -> float:
        """perf in MB/s -> normalised units (~[0, 1.5]).

        A non-finite perf raises
        :class:`~repro.iostack.faults.EvaluationError`: the agents train
        on this value, and one NaN fed into their networks silently
        poisons every weight after it.
        """
        if not math.isfinite(perf_mbps):
            raise EvaluationError(
                f"cannot normalise non-finite perf {perf_mbps!r}"
            )
        if perf_mbps < 0:
            raise ValueError("perf must be >= 0")
        return perf_mbps / self.scale_mbps

    def denormalize(self, value: float) -> float:
        return value * self.scale_mbps

    def normalized_subset_reward(
        self, perf_mbps: float, subset_size: int, total_parameters: int
    ) -> float:
        """The Smart Configuration Generation reward:
        ``norm(perf) / norm(num_parameters_subset)`` -- performance per
        tuned parameter, favouring small high-impact subsets."""
        if not 1 <= subset_size <= total_parameters:
            raise ValueError("subset_size must be in [1, total_parameters]")
        return self.normalize(perf_mbps) / (subset_size / total_parameters)
