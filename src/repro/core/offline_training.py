"""Offline training of TunIO's agents.

Per Section III-C/D:

* The Smart Configuration Generation agent "is first trained offline to
  get a baseline model ... by first doing a simple parameter sweep on
  some representative I/O kernels, including VPIC, FLASH, and HACC ...
  After performing a sweep on each I/O kernel, a PCA analysis is
  performed on the parameters with respect to perf to ... isolate the
  most impactful parameters."  :func:`parameter_sweep` +
  :func:`impact_from_sweeps` implement exactly that, and
  :func:`pretrain_subset_picker` warms the picker's Q-network in a
  surrogate subset-tuning environment parameterised by those impact
  scores.

* The Early Stopping agent is trained on generated log curves
  (:meth:`EarlyStoppingAgent.train_offline`); :func:`train_tunio_agents`
  bundles both and :func:`save_agents` / :func:`load_agents` checkpoint
  the result so the expensive offline phase runs once.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationCache
from repro.iostack.parameters import ParameterSpace, TUNED_SPACE
from repro.iostack.simulator import IOStackSimulator, WorkloadLike
from repro.rl.curves import LogCurveGenerator
from repro.rl.guardrails import (
    CHECKPOINT_VERSION,
    CheckpointError,
    validate_agent_checkpoint,
)
from repro.rl.pca import parameter_impact

from .early_stopping import EarlyStoppingAgent
from .objective import PerfNormalizer
from .smart_config import SmartConfigAgent

__all__ = [
    "SweepResult",
    "parameter_sweep",
    "impact_from_sweeps",
    "pretrain_subset_picker",
    "TunIOAgents",
    "train_tunio_agents",
    "save_agents",
    "load_agents",
]


@dataclass(frozen=True)
class SweepResult:
    """Sweep observations for one workload."""

    workload_name: str
    #: (n_runs, n_params) normalised parameter values in [0, 1].
    configs: np.ndarray
    #: (n_runs,) observed perf in MB/s.
    perfs: np.ndarray


def parameter_sweep(
    simulator: IOStackSimulator,
    workload: WorkloadLike,
    space: ParameterSpace = TUNED_SPACE,
    axis_points: int = 6,
    random_samples: int = 8,
    rng: np.random.Generator | None = None,
    repeats: int = 3,
    cache: EvaluationCache | None = None,
) -> SweepResult:
    """The paper's "simple parameter sweep": one-at-a-time axis sweeps
    from the default configuration plus uniform random samples.

    ``cache`` memoizes stack traces across the sweep (and across sweeps
    sharing the cache), so re-drawn configurations -- random samples
    colliding with axis points, the default revisited per axis -- skip
    the stack traversal.  Results are bit-identical either way.
    """
    rng = rng if rng is not None else np.random.default_rng()
    configs: list[np.ndarray] = []
    perfs: list[float] = []

    def run(config: StackConfiguration) -> None:
        if cache is not None:
            result = cache.evaluate(simulator, workload, config, repeats=repeats)
        else:
            result = simulator.evaluate(workload, config, repeats=repeats)
        configs.append(config.normalized())
        perfs.append(result.perf_mbps)

    default = StackConfiguration.default(space)
    run(default)
    for param in space:
        step = max(1, param.cardinality // axis_points)
        for idx in range(0, param.cardinality, step):
            value = param.values[idx]
            if value == param.default:
                continue
            run(default.with_values(**{param.name: value}))
    for _ in range(random_samples):
        run(StackConfiguration.random(rng, space))

    return SweepResult(
        workload_name=workload.name,
        configs=np.array(configs),
        perfs=np.array(perfs),
    )


def impact_from_sweeps(sweeps: Sequence[SweepResult]) -> np.ndarray:
    """PCA impact scores averaged over the swept kernels, sharpened by
    squaring (normalised to sum to 1).

    Squaring suppresses the noise floor of the sweep: parameters whose
    loadings co-vary with perf only spuriously end up with negligible
    scores, so the top-k ranking reliably starts with the true
    high-impact knobs.
    """
    if not sweeps:
        raise ValueError("need at least one sweep")
    stacked = [parameter_impact(s.configs, s.perfs) for s in sweeps]
    mean = np.mean(stacked, axis=0) ** 2
    return mean / mean.sum()


@dataclass
class _SurrogateTuning:
    """Analytic subset-tuning episode: per-iteration improvement is
    proportional to the impact mass the chosen subset covers times the
    remaining headroom.  Parameterised by the sweep-derived impact
    scores, so the picker pre-trains against the real impact structure."""

    impact_scores: np.ndarray
    rng: np.random.Generator
    ceiling: float = 1.0
    rate: float = 0.5
    noise: float = 0.03
    perf: float = 0.1

    def reset(self) -> float:
        self.perf = float(self.rng.uniform(0.05, 0.25))
        return self.perf

    def step(self, subset_indices: np.ndarray) -> float:
        covered = float(self.impact_scores[subset_indices].sum())
        gap = max(0.0, self.ceiling - self.perf)
        gain = self.rate * covered * gap
        gain += float(self.rng.normal(0.0, self.noise * max(gain, 0.01)))
        self.perf = min(self.ceiling, self.perf + max(0.0, gain))
        return self.perf


def pretrain_subset_picker(
    agent: SmartConfigAgent,
    impact_scores: np.ndarray,
    episodes: int = 60,
    iterations_per_episode: int = 20,
    rng: np.random.Generator | None = None,
) -> None:
    """Warm the Subset Picker's Q-network by running surrogate tuning
    episodes against the sweep-derived impact structure."""
    rng = rng if rng is not None else agent.rng
    agent.set_impact_scores(impact_scores)
    names = agent.space.names
    env = _SurrogateTuning(impact_scores=agent.impact_scores, rng=rng)
    scale = agent.normalizer.scale_mbps if agent.normalizer is not None else 1000.0
    for _ in range(episodes):
        agent.reset_episode()
        perf = env.reset()
        subset: tuple[str, ...] = names
        for it in range(iterations_per_episode):
            subset = agent.subset_picker(perf * scale, subset, iteration=it)
            idx = np.array([agent.space.index_of_name(n) for n in subset])
            perf = env.step(idx)
    agent.reset_episode()


@dataclass
class TunIOAgents:
    """The offline-trained agent pair TunIO's pipeline consumes."""

    smart_config: SmartConfigAgent
    early_stopper: EarlyStoppingAgent
    impact_scores: np.ndarray


def train_tunio_agents(
    simulator: IOStackSimulator,
    training_workloads: Sequence[WorkloadLike],
    normalizer: PerfNormalizer,
    space: ParameterSpace = TUNED_SPACE,
    rng: np.random.Generator | None = None,
    curve_generator: LogCurveGenerator | None = None,
    cache: EvaluationCache | None = None,
) -> TunIOAgents:
    """The full offline phase: sweep the representative kernels, run the
    PCA, pre-train the subset picker, and train the early stopper on
    generated log curves.  All sweeps share ``cache`` when given."""
    rng = rng if rng is not None else np.random.default_rng()
    sweeps = [
        parameter_sweep(simulator, w, space, rng=rng, cache=cache)
        for w in training_workloads
    ]
    impact = impact_from_sweeps(sweeps)

    smart = SmartConfigAgent(space=space, normalizer=normalizer, rng=rng)
    pretrain_subset_picker(smart, impact, rng=rng)

    stopper = EarlyStoppingAgent(rng=rng)
    stopper.train_offline(generator=curve_generator, rng=rng)

    return TunIOAgents(smart_config=smart, early_stopper=stopper, impact_scores=impact)


def save_agents(agents: TunIOAgents, path: str | Path) -> None:
    """Checkpoint the trained agents to a ``.npz`` file (stamped with
    the schema version so loaders can detect incompatible files)."""
    payload: dict[str, np.ndarray] = {
        "checkpoint_version": np.array(CHECKPOINT_VERSION),
        "impact_scores": agents.impact_scores,
    }
    for k, v in agents.smart_config.get_state().items():
        payload[f"smart_{k}"] = v
    for k, v in agents.early_stopper.get_weights().items():
        payload[f"stop_{k}"] = v
    np.savez(Path(path), **payload)


def load_agents(
    path: str | Path,
    normalizer: PerfNormalizer,
    space: ParameterSpace = TUNED_SPACE,
    rng: np.random.Generator | None = None,
) -> TunIOAgents:
    """Restore a :func:`save_agents` checkpoint.

    The file is validated before any agent sees it (readable archive,
    supported schema version, required keys present, finite values, sane
    impact scores); shape mismatches against the freshly built agents
    are caught too.  All failure modes raise
    :class:`~repro.rl.guardrails.CheckpointError` with an actionable
    message -- a truncated or corrupted checkpoint can degrade the run,
    never poison the agents with garbage weights.
    """
    try:
        with np.load(Path(path)) as archive:
            data = {k: archive[k] for k in archive.files}
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, EOFError
        raise CheckpointError(
            f"agent checkpoint {path} is unreadable ({exc}); it is likely "
            f"truncated or corrupted -- delete it and retrain"
        ) from exc
    validate_agent_checkpoint(data, path=str(path))
    smart = SmartConfigAgent(space=space, normalizer=normalizer, rng=rng)
    stopper = EarlyStoppingAgent(rng=rng)
    try:
        smart.set_state(
            {k[len("smart_"):]: v for k, v in data.items() if k.startswith("smart_")}
        )
        stopper.set_weights(
            {k[len("stop_"):]: v for k, v in data.items() if k.startswith("stop_")}
        )
    except ValueError as exc:
        raise CheckpointError(
            f"agent checkpoint {path} does not match the current agent "
            f"architecture ({exc}); it was written by an incompatible build -- "
            f"delete it and retrain"
        ) from exc
    return TunIOAgents(
        smart_config=smart,
        early_stopper=stopper,
        impact_scores=data["impact_scores"],
    )
