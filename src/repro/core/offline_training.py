"""Offline training of TunIO's agents.

Per Section III-C/D:

* The Smart Configuration Generation agent "is first trained offline to
  get a baseline model ... by first doing a simple parameter sweep on
  some representative I/O kernels, including VPIC, FLASH, and HACC ...
  After performing a sweep on each I/O kernel, a PCA analysis is
  performed on the parameters with respect to perf to ... isolate the
  most impactful parameters."  :func:`parameter_sweep` +
  :func:`impact_from_sweeps` implement exactly that, and
  :func:`pretrain_subset_picker` warms the picker's Q-network in a
  surrogate subset-tuning environment parameterised by those impact
  scores.

* The Early Stopping agent is trained on generated log curves
  (:meth:`EarlyStoppingAgent.train_offline`); :func:`train_tunio_agents`
  bundles both and :func:`save_agents` / :func:`load_agents` checkpoint
  the result so the expensive offline phase runs once.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationCache
from repro.iostack.parameters import ParameterSpace, TUNED_SPACE
from repro.iostack.simulator import IOStackSimulator, WorkloadLike
from repro.rl.curves import LogCurveGenerator
from repro.rl.guardrails import (
    CHECKPOINT_VERSION,
    CheckpointError,
    validate_agent_checkpoint,
)
from repro.rl.pca import parameter_impact

from .early_stopping import EarlyStoppingAgent
from .objective import PerfNormalizer
from .smart_config import SmartConfigAgent

__all__ = [
    "SweepResult",
    "parameter_sweep",
    "impact_from_sweeps",
    "pretrain_subset_picker",
    "TunIOAgents",
    "train_tunio_agents",
    "save_agents",
    "load_agents",
]


@dataclass(frozen=True)
class SweepResult:
    """Sweep observations for one workload."""

    workload_name: str
    #: (n_runs, n_params) normalised parameter values in [0, 1].
    configs: np.ndarray
    #: (n_runs,) observed perf in MB/s.
    perfs: np.ndarray
    #: Trace-cache hits during the sweep (duplicate configurations --
    #: the default revisited per axis, random samples colliding with
    #: axis points -- that skipped the stack traversal).
    cache_hits: int = 0


def parameter_sweep(
    simulator: IOStackSimulator,
    workload: WorkloadLike,
    space: ParameterSpace = TUNED_SPACE,
    axis_points: int = 6,
    random_samples: int = 8,
    rng: np.random.Generator | None = None,
    repeats: int = 3,
    cache: EvaluationCache | None = None,
) -> SweepResult:
    """The paper's "simple parameter sweep": one-at-a-time axis sweeps
    from the default configuration plus uniform random samples.

    Every evaluation routes through an :class:`EvaluationCache` (the
    shared ``cache`` when given, a sweep-private one otherwise), so
    duplicate configurations skip the stack traversal; the hits are
    counted on :attr:`SweepResult.cache_hits`.  Results are bit-identical
    with or without a shared cache (the cache contract).
    """
    rng = rng if rng is not None else np.random.default_rng()
    cache = cache if cache is not None else EvaluationCache()
    hits_before = cache.hits
    configs: list[np.ndarray] = []
    perfs: list[float] = []

    def run(config: StackConfiguration) -> None:
        result = cache.evaluate(simulator, workload, config, repeats=repeats)
        configs.append(config.normalized())
        perfs.append(result.perf_mbps)

    default = StackConfiguration.default(space)
    run(default)
    for param in space:
        step = max(1, param.cardinality // axis_points)
        for idx in range(0, param.cardinality, step):
            value = param.values[idx]
            if value == param.default:
                continue
            run(default.with_values(**{param.name: value}))
    for _ in range(random_samples):
        run(StackConfiguration.random(rng, space))

    return SweepResult(
        workload_name=workload.name,
        configs=np.array(configs),
        perfs=np.array(perfs),
        cache_hits=cache.hits - hits_before,
    )


def impact_from_sweeps(sweeps: Sequence[SweepResult]) -> np.ndarray:
    """PCA impact scores averaged over the swept kernels, sharpened by
    squaring (normalised to sum to 1).

    Squaring suppresses the noise floor of the sweep: parameters whose
    loadings co-vary with perf only spuriously end up with negligible
    scores, so the top-k ranking reliably starts with the true
    high-impact knobs.
    """
    if not sweeps:
        raise ValueError("need at least one sweep")
    stacked = [parameter_impact(s.configs, s.perfs) for s in sweeps]
    mean = np.mean(stacked, axis=0) ** 2
    return mean / mean.sum()


@dataclass
class _SurrogateTuning:
    """Analytic subset-tuning episode: per-iteration improvement is
    proportional to the impact mass the chosen subset covers times the
    remaining headroom.  Parameterised by the sweep-derived impact
    scores, so the picker pre-trains against the real impact structure."""

    impact_scores: np.ndarray
    rng: np.random.Generator
    ceiling: float = 1.0
    rate: float = 0.5
    noise: float = 0.03
    perf: float = 0.1

    def reset(self) -> float:
        self.perf = float(self.rng.uniform(0.05, 0.25))
        return self.perf

    def step(self, subset_indices: np.ndarray) -> float:
        covered = float(self.impact_scores[subset_indices].sum())
        gap = max(0.0, self.ceiling - self.perf)
        gain = self.rate * covered * gap
        gain += float(self.rng.normal(0.0, self.noise * max(gain, 0.01)))
        self.perf = min(self.ceiling, self.perf + max(0.0, gain))
        return self.perf


def pretrain_subset_picker(
    agent: SmartConfigAgent,
    impact_scores: np.ndarray,
    episodes: int = 60,
    iterations_per_episode: int = 20,
    rng: np.random.Generator | None = None,
    batched: bool = False,
) -> None:
    """Warm the Subset Picker's Q-network by running surrogate tuning
    episodes against the sweep-derived impact structure.

    ``batched=True`` runs every episode in lockstep: per surrogate
    iteration the whole batch updates the State Observer through one
    :meth:`MLP.train_batch` call, acts through one batched forward pass,
    and trains the picker on one large minibatch -- checkpoint-level
    equivalent to the serial loop, several times faster.
    """
    rng = rng if rng is not None else agent.rng
    if batched:
        _pretrain_subset_picker_batched(
            agent, impact_scores, episodes, iterations_per_episode, rng
        )
        return
    agent.set_impact_scores(impact_scores)
    names = agent.space.names
    env = _SurrogateTuning(impact_scores=agent.impact_scores, rng=rng)
    scale = agent.normalizer.scale_mbps if agent.normalizer is not None else 1000.0
    for _ in range(episodes):
        agent.reset_episode()
        perf = env.reset()
        subset: tuple[str, ...] = names
        for it in range(iterations_per_episode):
            subset = agent.subset_picker(perf * scale, subset, iteration=it)
            idx = np.array([agent.space.index_of_name(n) for n in subset])
            perf = env.step(idx)
    agent.reset_episode()


def _pretrain_subset_picker_batched(
    agent: SmartConfigAgent,
    impact_scores: np.ndarray,
    episodes: int,
    iterations_per_episode: int,
    rng: np.random.Generator,
) -> None:
    """Lockstep surrogate pretraining: ``episodes`` analytic tuning runs
    advance together, batching every network touch.

    Mirrors the serial path's structure -- context -> observer update ->
    state observation -> delayed reward maturation -> picker update ->
    epsilon-greedy action -> subset materialisation -> env step -- with
    the per-episode python/NN calls fused into array operations.
    """
    agent.set_impact_scores(impact_scores)
    space = agent.space
    names = space.names
    n_params = len(space)
    m = episodes
    settings = agent.settings
    delay = settings.delay
    sizes = np.array(agent.subset_sizes)

    env = _SurrogateTuning(impact_scores=agent.impact_scores, rng=rng)
    perf = rng.uniform(0.05, 0.25, size=m)
    # Subset membership one-hot per episode; episodes start on the full
    # parameter set like the serial loop.
    member = np.ones((m, n_params))
    perf_trace = np.empty((iterations_per_episode, m))
    state_hist: list[np.ndarray] = []
    action_hist: list[np.ndarray] = []

    for it in range(iterations_per_episode):
        perf_trace[it] = perf
        subset_frac = member.sum(axis=1) / n_params
        contexts = np.concatenate(
            [
                member,
                perf[:, None],
                np.full((m, 1), min(2.0, it / settings.max_iterations)),
            ],
            axis=1,
        )
        reward_now = perf / subset_frac
        agent.observer.update_batch(contexts, reward_now)
        states = agent.observer.observe_state_batch(contexts)

        # Mature the decisions born ``delay`` iterations ago, rewarded
        # with the perf they led to (the serial delayed_reward closure).
        born = it - delay
        if born >= 0:
            agent.picker.observe_batch(
                state_hist[born],
                action_hist[born],
                perf / subset_frac,
                states,
                False,
            )
        agent.picker.train_step(batch_size=max(agent.picker.config.batch_size, 2 * m))

        actions = agent.picker.act_batch(states)
        state_hist.append(states)
        action_hist.append(actions)
        agent.picker.epsilon = max(
            agent.picker.config.epsilon_end,
            agent.picker.epsilon * agent.picker.config.epsilon_decay**m,
        )

        # Materialise each episode's next subset (per-episode sampling,
        # like the serial `_materialize_subset`), then step the analytic
        # environment for the whole batch at once.
        member = np.zeros((m, n_params))
        for i in range(m):
            subset = agent._materialize_subset(int(sizes[actions[i]]))
            for name in subset:
                member[i, space.index_of_name(name)] = 1.0
        covered = member @ agent.impact_scores
        gap = np.maximum(0.0, env.ceiling - perf)
        gain = env.rate * covered * gap
        gain += rng.normal(0.0, 1.0, size=m) * (env.noise * np.maximum(gain, 0.01))
        perf = np.minimum(env.ceiling, perf + np.maximum(0.0, gain))

    agent.reset_episode()


@dataclass
class TunIOAgents:
    """The offline-trained agent pair TunIO's pipeline consumes."""

    smart_config: SmartConfigAgent
    early_stopper: EarlyStoppingAgent
    impact_scores: np.ndarray


def _sweep_job(
    simulator: IOStackSimulator,
    workload: WorkloadLike,
    space: ParameterSpace,
    seed: int,
) -> SweepResult:
    """Process-pool job: one workload's parameter sweep with its own
    derived random stream and a private trace cache."""
    return parameter_sweep(
        simulator, workload, space, rng=np.random.default_rng(seed)
    )


def train_tunio_agents(
    simulator: IOStackSimulator,
    training_workloads: Sequence[WorkloadLike],
    normalizer: PerfNormalizer,
    space: ParameterSpace = TUNED_SPACE,
    rng: np.random.Generator | None = None,
    curve_generator: LogCurveGenerator | None = None,
    cache: EvaluationCache | None = None,
    workers: int | None = None,
    batched: bool = False,
) -> TunIOAgents:
    """The full offline phase: sweep the representative kernels, run the
    PCA, pre-train the subset picker, and train the early stopper on
    generated log curves.  All sweeps share ``cache`` when given.

    The defaults keep the original serial, bit-reproducible behaviour.
    ``workers >= 2`` fans the per-workload sweeps onto a process pool
    (each sweep on an independent seed derived from ``rng``), and
    ``batched=True`` switches both pretraining phases to their
    vectorized fastpaths; either opt-in trains checkpoint-equivalent --
    not bit-identical -- agents, validated by the offline-fastpath
    equivalence tests.
    """
    rng = rng if rng is not None else np.random.default_rng()
    use_pool = workers is not None and workers >= 2 and len(training_workloads) > 1
    if use_pool:
        seeds = [int(s) for s in rng.integers(2**63, size=len(training_workloads))]
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(training_workloads))
            ) as pool:
                futures = [
                    pool.submit(_sweep_job, simulator, w, space, seed)
                    for w, seed in zip(training_workloads, seeds)
                ]
                sweeps = [f.result() for f in futures]
        except Exception:
            # Pool breakage (spawn failure, unpicklable platform) falls
            # back to in-process sweeps on the same derived seeds.
            sweeps = [
                _sweep_job(simulator, w, space, seed)
                for w, seed in zip(training_workloads, seeds)
            ]
    else:
        sweeps = [
            parameter_sweep(simulator, w, space, rng=rng, cache=cache)
            for w in training_workloads
        ]
    impact = impact_from_sweeps(sweeps)

    smart = SmartConfigAgent(space=space, normalizer=normalizer, rng=rng)
    pretrain_subset_picker(smart, impact, rng=rng, batched=batched)

    stopper = EarlyStoppingAgent(rng=rng)
    stopper.train_offline(generator=curve_generator, rng=rng, batched=batched)

    return TunIOAgents(smart_config=smart, early_stopper=stopper, impact_scores=impact)


def save_agents(agents: TunIOAgents, path: str | Path) -> None:
    """Checkpoint the trained agents to a ``.npz`` file (stamped with
    the schema version so loaders can detect incompatible files)."""
    payload: dict[str, np.ndarray] = {
        "checkpoint_version": np.array(CHECKPOINT_VERSION),
        "impact_scores": agents.impact_scores,
    }
    for k, v in agents.smart_config.get_state().items():
        payload[f"smart_{k}"] = v
    for k, v in agents.early_stopper.get_weights().items():
        payload[f"stop_{k}"] = v
    np.savez(Path(path), **payload)


def load_agents(
    path: str | Path,
    normalizer: PerfNormalizer,
    space: ParameterSpace = TUNED_SPACE,
    rng: np.random.Generator | None = None,
) -> TunIOAgents:
    """Restore a :func:`save_agents` checkpoint.

    The file is validated before any agent sees it (readable archive,
    supported schema version, required keys present, finite values, sane
    impact scores); shape mismatches against the freshly built agents
    are caught too.  All failure modes raise
    :class:`~repro.rl.guardrails.CheckpointError` with an actionable
    message -- a truncated or corrupted checkpoint can degrade the run,
    never poison the agents with garbage weights.
    """
    try:
        with np.load(Path(path)) as archive:
            data = {k: archive[k] for k in archive.files}
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, EOFError
        raise CheckpointError(
            f"agent checkpoint {path} is unreadable ({exc}); it is likely "
            f"truncated or corrupted -- delete it and retrain"
        ) from exc
    validate_agent_checkpoint(data, path=str(path))
    smart = SmartConfigAgent(space=space, normalizer=normalizer, rng=rng)
    stopper = EarlyStoppingAgent(rng=rng)
    try:
        smart.set_state(
            {k[len("smart_"):]: v for k, v in data.items() if k.startswith("smart_")}
        )
        stopper.set_weights(
            {k[len("stop_"):]: v for k, v in data.items() if k.startswith("stop_")}
        )
    except ValueError as exc:
        raise CheckpointError(
            f"agent checkpoint {path} does not match the current agent "
            f"architecture ({exc}); it was written by an incompatible build -- "
            f"delete it and retrain"
        ) from exc
    return TunIOAgents(
        smart_config=smart,
        early_stopper=stopper,
        impact_scores=data["impact_scores"],
    )
