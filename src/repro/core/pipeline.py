"""The TunIO tuning pipeline: HSTuner + the three TunIO components.

:class:`TunIOTuner` extends :class:`~repro.tuners.hstuner.HSTuner` by

* asking the Smart Configuration Generation agent for the parameter
  subset each generation may vary (Impact-First Tuning),
* crediting that subset with the normalised perf change it produced, and
* consulting the RL early stopper after every generation.

:func:`build_tunio` wires a ready pipeline from offline-trained agents;
:class:`TuningSession` adds the paper's future-work interactive
refinement: a session can be resumed for more iterations later, keeping
the GA population, agents and clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.iostack.evalcache import EvaluationCache
from repro.iostack.parameters import TUNED_SPACE, ParameterSpace
from repro.iostack.simulator import IOStackSimulator, WorkloadLike
from repro.rl.guardrails import GuardrailMonitor
from repro.tuners.base import IterationRecord, TuningResult
from repro.tuners.hstuner import HSTuner
from repro.tuners.journal import JournalWriter, ReplayCursor

from .early_stopping import GuardedStopper, RLStopper
from .objective import PerfNormalizer
from .offline_training import TunIOAgents
from .smart_config import GuardedSubsetPicker, SmartConfigAgent

__all__ = ["TunIOTuner", "build_tunio", "TuningSession"]


class TunIOTuner(HSTuner):
    """HSTuner with TunIO's Smart Configuration Generation and RL early
    stopping attached.

    Both agents run behind guardrails (see :mod:`repro.rl.guardrails`):
    the subset picker through a
    :class:`~repro.core.smart_config.GuardedSubsetPicker` and an
    :class:`RLStopper` through a :class:`GuardedStopper`, sharing one
    :class:`~repro.rl.guardrails.GuardrailMonitor` (``self.guardrails``).
    On a healthy run the guardrails are pure observers -- results are
    bit-identical to unguarded wiring.  When one trips, the affected
    component degrades to plain-GA behaviour (full parameter set /
    patience-heuristic stopping) for the rest of the run, and the trips
    are reported on :class:`~repro.tuners.base.TuningResult`.
    """

    name = "tunio"

    def __init__(
        self,
        simulator: IOStackSimulator,
        smart_config: SmartConfigAgent,
        stopper: RLStopper,
        space: ParameterSpace = TUNED_SPACE,
        **kwargs,
    ):
        self.guardrails = GuardrailMonitor()
        # Reads the *current* fault plan each call (the attribute is
        # swapped around journal cache warming and by tests).
        fault_source = lambda: simulator.faults  # noqa: E731
        self._picker = GuardedSubsetPicker(
            smart_config, self.guardrails, fault_source=fault_source
        )
        if isinstance(stopper, RLStopper):
            stopper = GuardedStopper(
                stopper, self.guardrails, fault_source=fault_source
            )
        super().__init__(simulator, space=space, stopper=stopper, **kwargs)
        self.guardrails.recorder = self.recorder
        self.smart_config = smart_config
        self._current_subset: tuple[str, ...] | None = None
        self._last_best_norm: float | None = None

    # -- HSTuner extension points ------------------------------------------------

    def _select_subset(
        self, iteration: int, history: Sequence[IterationRecord]
    ) -> tuple[str, ...] | None:
        if iteration == 0:
            # Generation 0 evaluates the seed population; the agent takes
            # over from the first bred generation.
            self._picker.reset_episode()
            self._current_subset = None
            self._last_best_norm = None
            return None
        last = history[-1]
        subset = self._picker.pick(
            last.best_perf,
            self._current_subset,
            iteration=iteration,
        )
        self._current_subset = subset
        recorder = self.recorder
        if recorder.enabled:
            recorder.emit(
                "agent_decision",
                agent="subset-picker",
                iteration=iteration,
                subset=None if subset is None else list(subset),
                degraded=self.guardrails.tripped("subset-picker"),
            )
        return subset

    def _observe_iteration(self, record: IterationRecord) -> None:
        norm = self.smart_config._normalize(record.best_perf)
        if self._current_subset is not None and self._last_best_norm is not None:
            self._picker.credit_subset(
                self._current_subset, norm - self._last_best_norm
            )
        self._last_best_norm = norm

    def _journal_agent_state(self) -> dict | None:
        # Informational only: replay re-trains the agents by re-driving
        # them, so nothing here is read back on resume.
        state: dict = {
            "impact_scores": [float(s) for s in self.smart_config.impact_scores],
        }
        if self.guardrails.trips:
            state["guardrail_trips"] = [str(t) for t in self.guardrails.trips]
        return state

    # -- guardrail surfaces -------------------------------------------------------

    def _begin_stats_window(self) -> None:
        # tune() starts a fresh run: re-arm the guardrails so a journal
        # replay re-earns its trips deterministically.  (In-session
        # resume() does not pass here, so degradation persists across
        # interactive refinement, as it must.)
        super()._begin_stats_window()
        self.guardrails.reset()
        self._picker.reset()
        # (tune() has already reset the stopper, guarded or not.)

    def _drain_guardrail_warnings(self) -> list[str]:
        return self.guardrails.drain_warnings()

    def _guardrail_trip_count(self) -> int:
        return len(self.guardrails.trips)

    def _collect_stats(self):
        self._result.guardrail_trips = tuple(str(t) for t in self.guardrails.trips)
        return super()._collect_stats()


def build_tunio(
    simulator: IOStackSimulator,
    agents: TunIOAgents,
    normalizer: PerfNormalizer,
    space: ParameterSpace = TUNED_SPACE,
    expected_runs: float | None = None,
    rng: np.random.Generator | None = None,
    cache: EvaluationCache | None = None,
    **kwargs,
) -> TunIOTuner:
    """Assemble a TunIO pipeline from offline-trained agents.

    ``cache`` (an :class:`~repro.iostack.evalcache.EvaluationCache`) lets
    revisited configurations skip the stack traversal; tuning results
    are bit-identical with or without it.
    """
    stopper = RLStopper(
        agents.early_stopper, normalizer, expected_runs=expected_runs
    )
    return TunIOTuner(
        simulator,
        smart_config=agents.smart_config,
        stopper=stopper,
        space=space,
        rng=rng,
        cache=cache,
        **kwargs,
    )


@dataclass
class TuningSession:
    """A resumable tuning session (the paper's proposed "interactive
    session feature where a configuration can be refined over time
    across a series of runs").

    The first :meth:`run` starts tuning; later calls continue from the
    preserved GA population and clock, so a user can spend budget in
    instalments.

    With ``journal_path`` set, every completed generation is appended to
    a crash-safe JSONL journal (see :mod:`repro.tuners.journal`); pass a
    :class:`~repro.tuners.journal.ReplayCursor` over the loaded journal
    as ``replay`` to resume an interrupted run bit-identically.
    """

    tuner: HSTuner
    workload: WorkloadLike
    result: TuningResult | None = None
    journal_path: str | None = None
    journal_header: dict | None = None
    replay: ReplayCursor | None = None
    _writer: JournalWriter | None = None

    def run(self, iterations: int) -> TuningResult:
        """Tune for up to ``iterations`` more iterations."""
        if self.result is None:
            if self.journal_path is not None:
                header = dict(self.journal_header or {})
                header.setdefault("workload", self.workload.name)
                header.setdefault("tuner", self.tuner.name)
                self._writer = JournalWriter(
                    self.journal_path,
                    header,
                    resume_from=self.replay.journal if self.replay else None,
                )
                self.tuner.attach_journal(self._writer, self.replay)
            self.result = self.tuner.tune(self.workload, max_iterations=iterations)
        else:
            self.result = self.tuner.resume(extra_iterations=iterations)
        return self.result

    def close(self) -> None:
        """Release the journal file handle, if any."""
        if self._writer is not None:
            self._writer.close()

    @property
    def best_perf(self) -> float:
        if self.result is None:
            raise RuntimeError("session has not run yet")
        return self.result.best_perf
