"""The TunIO tuning pipeline: HSTuner + the three TunIO components.

:class:`TunIOTuner` extends :class:`~repro.tuners.hstuner.HSTuner` by

* asking the Smart Configuration Generation agent for the parameter
  subset each generation may vary (Impact-First Tuning),
* crediting that subset with the normalised perf change it produced, and
* consulting the RL early stopper after every generation.

:func:`build_tunio` wires a ready pipeline from offline-trained agents;
:class:`TuningSession` adds the paper's future-work interactive
refinement: a session can be resumed for more iterations later, keeping
the GA population, agents and clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.iostack.evalcache import EvaluationCache
from repro.iostack.parameters import TUNED_SPACE, ParameterSpace
from repro.iostack.simulator import IOStackSimulator, WorkloadLike
from repro.tuners.base import IterationRecord, TuningResult
from repro.tuners.hstuner import HSTuner
from repro.tuners.journal import JournalWriter, ReplayCursor

from .early_stopping import RLStopper
from .objective import PerfNormalizer
from .offline_training import TunIOAgents
from .smart_config import SmartConfigAgent

__all__ = ["TunIOTuner", "build_tunio", "TuningSession"]


class TunIOTuner(HSTuner):
    """HSTuner with TunIO's Smart Configuration Generation and RL early
    stopping attached."""

    name = "tunio"

    def __init__(
        self,
        simulator: IOStackSimulator,
        smart_config: SmartConfigAgent,
        stopper: RLStopper,
        space: ParameterSpace = TUNED_SPACE,
        **kwargs,
    ):
        super().__init__(simulator, space=space, stopper=stopper, **kwargs)
        self.smart_config = smart_config
        self._current_subset: tuple[str, ...] | None = None
        self._last_best_norm: float | None = None

    # -- HSTuner extension points ------------------------------------------------

    def _select_subset(
        self, iteration: int, history: Sequence[IterationRecord]
    ) -> tuple[str, ...] | None:
        if iteration == 0:
            # Generation 0 evaluates the seed population; the agent takes
            # over from the first bred generation.
            self.smart_config.reset_episode()
            self._current_subset = None
            self._last_best_norm = None
            return None
        last = history[-1]
        subset = self.smart_config.subset_picker(
            last.best_perf,
            self._current_subset,
            iteration=iteration,
        )
        self._current_subset = subset
        return subset

    def _observe_iteration(self, record: IterationRecord) -> None:
        norm = self.smart_config._normalize(record.best_perf)
        if self._current_subset is not None and self._last_best_norm is not None:
            self.smart_config.credit_subset(
                self._current_subset, norm - self._last_best_norm
            )
        self._last_best_norm = norm

    def _journal_agent_state(self) -> dict | None:
        # Informational only: replay re-trains the agents by re-driving
        # them, so nothing here is read back on resume.
        return {
            "impact_scores": [float(s) for s in self.smart_config.impact_scores],
        }


def build_tunio(
    simulator: IOStackSimulator,
    agents: TunIOAgents,
    normalizer: PerfNormalizer,
    space: ParameterSpace = TUNED_SPACE,
    expected_runs: float | None = None,
    rng: np.random.Generator | None = None,
    cache: EvaluationCache | None = None,
    **kwargs,
) -> TunIOTuner:
    """Assemble a TunIO pipeline from offline-trained agents.

    ``cache`` (an :class:`~repro.iostack.evalcache.EvaluationCache`) lets
    revisited configurations skip the stack traversal; tuning results
    are bit-identical with or without it.
    """
    stopper = RLStopper(
        agents.early_stopper, normalizer, expected_runs=expected_runs
    )
    return TunIOTuner(
        simulator,
        smart_config=agents.smart_config,
        stopper=stopper,
        space=space,
        rng=rng,
        cache=cache,
        **kwargs,
    )


@dataclass
class TuningSession:
    """A resumable tuning session (the paper's proposed "interactive
    session feature where a configuration can be refined over time
    across a series of runs").

    The first :meth:`run` starts tuning; later calls continue from the
    preserved GA population and clock, so a user can spend budget in
    instalments.

    With ``journal_path`` set, every completed generation is appended to
    a crash-safe JSONL journal (see :mod:`repro.tuners.journal`); pass a
    :class:`~repro.tuners.journal.ReplayCursor` over the loaded journal
    as ``replay`` to resume an interrupted run bit-identically.
    """

    tuner: HSTuner
    workload: WorkloadLike
    result: TuningResult | None = None
    journal_path: str | None = None
    journal_header: dict | None = None
    replay: ReplayCursor | None = None
    _writer: JournalWriter | None = None

    def run(self, iterations: int) -> TuningResult:
        """Tune for up to ``iterations`` more iterations."""
        if self.result is None:
            if self.journal_path is not None:
                header = dict(self.journal_header or {})
                header.setdefault("workload", self.workload.name)
                header.setdefault("tuner", self.tuner.name)
                self._writer = JournalWriter(
                    self.journal_path,
                    header,
                    resume_from=self.replay.journal if self.replay else None,
                )
                self.tuner.attach_journal(self._writer, self.replay)
            self.result = self.tuner.tune(self.workload, max_iterations=iterations)
        else:
            self.result = self.tuner.resume(extra_iterations=iterations)
        return self.result

    def close(self) -> None:
        """Release the journal file handle, if any."""
        if self._writer is not None:
            self._writer.close()

    @property
    def best_perf(self) -> float:
        if self.result is None:
            raise RuntimeError("session has not run yet")
        return self.result.best_perf
