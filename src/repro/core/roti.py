"""Return on Tuning Investment (RoTI).

The paper's cost/benefit metric::

    RoTI(t) = (perf_achieved(t) - perf_achieved(0)) / t

where ``perf_achieved(t)`` is the best ``perf`` (MB/s) reached by time
``t`` (minutes of tuning overhead) and ``perf_achieved(0)`` is the
default configuration's perf.  An RoTI of 40 means every minute spent
tuning bought 40 MB/s of application bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tuners.base import TuningResult

__all__ = ["roti", "RoTICurve", "roti_curve"]


def roti(perf_at_t: float, perf_at_0: float, minutes: float) -> float:
    """Point RoTI in (MB/s) per minute of tuning overhead."""
    if minutes <= 0:
        raise ValueError("minutes must be positive")
    return (perf_at_t - perf_at_0) / minutes


@dataclass(frozen=True)
class RoTICurve:
    """RoTI as a function of tuning time, derived from a tuning run."""

    minutes: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.minutes.shape != self.values.shape or self.minutes.ndim != 1:
            raise ValueError("minutes and values must be matching 1-D arrays")
        if self.minutes.size == 0:
            raise ValueError("empty curve")
        if np.any(np.diff(self.minutes) < 0):
            raise ValueError("minutes must be non-decreasing")
        if not np.all(np.isfinite(self.values)):
            raise ValueError(
                "RoTI values must be finite; a NaN/inf curve means the "
                "baseline perf or an iteration perf was corrupt"
            )

    @property
    def peak(self) -> float:
        """Maximum RoTI over the run."""
        return float(self.values.max())

    @property
    def peak_minutes(self) -> float:
        """Tuning time at which RoTI peaked."""
        return float(self.minutes[int(self.values.argmax())])

    @property
    def final(self) -> float:
        """RoTI at the end of the run (what the user actually got)."""
        return float(self.values[-1])

    def at_minutes(self, minutes: float) -> float:
        """RoTI at (or just before) a given tuning time.

        Duplicate time points are legal (a retry- or straggler-charged
        iteration can end at the same ``elapsed_minutes`` as its
        predecessor); querying a tied timestamp returns the *last*
        record at it -- ``side="right"`` places the insertion point past
        every tie, so the ``- 1`` lands on the final one.
        """
        idx = int(np.searchsorted(self.minutes, minutes, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no RoTI data at or before {minutes} minutes")
        return float(self.values[idx])


def roti_curve(result: TuningResult) -> RoTICurve:
    """RoTI per iteration of a tuning run (skipping zero-time points).

    Fails fast when ``baseline_perf`` is NaN or otherwise non-finite:
    silently propagating it would produce an all-NaN curve whose
    ``peak``/``peak_minutes`` are garbage (``argmax`` of NaNs).
    """
    if not np.isfinite(result.baseline_perf):
        raise ValueError(
            f"baseline_perf is {result.baseline_perf!r}; the RoTI curve "
            f"needs a finite baseline measurement (was the run "
            f"reconstructed from an incomplete trace?)"
        )
    minutes = result.minutes_series()
    perfs = result.perf_series()
    mask = minutes > 0
    if not mask.any():
        raise ValueError("tuning result has no time-charged iterations")
    minutes, perfs = minutes[mask], perfs[mask]
    values = (perfs - result.baseline_perf) / minutes
    return RoTICurve(minutes=minutes, values=values)
