"""TunIO's Smart Configuration Generation component (Impact-First
Tuning).

Per Section III-C, the component is an RL agent with two neural pieces:

* a **State Observer** -- an NN contextual bandit fed the agent's raw
  inputs (the parameter subset used and the best perf achieved with it)
  whose learned hidden representation is the state observation;
* a **Subset Picker** -- an NN Q-learning function that maps the state
  observation to the subset to tune next iteration.

The reward is ``norm(perf) / norm(num_parameters_subset)`` with a
5-iteration delay: performance per tuned parameter, so small
high-impact subsets dominate.

The subset itself is materialised from a ranked **impact score** per
parameter: initialised offline (parameter sweep + PCA on representative
kernels, see :mod:`.offline_training`) and updated online by crediting
the parameters of a subset with the normalised improvement it produced.
The picker's discrete action chooses the subset *size*; the top-k
parameters by impact fill it (with light exploration swaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.iostack.parameters import ParameterSpace, TUNED_SPACE
from repro.rl.bandit import NeuralContextualBandit
from repro.rl.qlearning import QLearningAgent, QLearningConfig
from repro.rl.replay import DelayedRewardBuffer

from .objective import PerfNormalizer

__all__ = ["SmartConfigSettings", "SmartConfigAgent"]


@dataclass(frozen=True)
class SmartConfigSettings:
    """Hyper-parameters of the Smart Configuration Generation agent."""

    #: Candidate subset sizes the picker chooses among.
    subset_sizes: tuple[int, ...] = (2, 3, 4, 6, 8, 12)
    #: Reward-maturation delay in iterations (the paper uses 5).
    delay: int = 5
    #: Width of the state observation (bandit hidden layer).
    state_dim: int = 16
    #: EMA rate for online impact-score updates.
    impact_learning_rate: float = 0.25
    #: Probability of swapping one subset member for an excluded
    #: parameter (exploration of the ranking).
    swap_probability: float = 0.25
    discount: float = 0.9
    learning_rate: float = 2e-3
    #: Nominal iteration budget for feature normalisation.
    max_iterations: int = 50

    def __post_init__(self) -> None:
        if not self.subset_sizes or any(k < 1 for k in self.subset_sizes):
            raise ValueError("subset_sizes must be positive")
        if not 0.0 <= self.swap_probability <= 1.0:
            raise ValueError("swap_probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


class SmartConfigAgent:
    """Ranks parameters by impact and picks the next tuning subset."""

    def __init__(
        self,
        space: ParameterSpace = TUNED_SPACE,
        normalizer: PerfNormalizer | None = None,
        settings: SmartConfigSettings | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.space = space
        self.settings = settings or SmartConfigSettings()
        self.normalizer = normalizer
        self.rng = rng if rng is not None else np.random.default_rng()
        n = len(space)
        sizes = tuple(k for k in self.settings.subset_sizes if k <= n)
        if not sizes:
            raise ValueError("no subset size fits the space")
        self.subset_sizes = sizes
        #: Per-parameter impact scores, normalised to sum to 1.
        self.impact_scores = np.full(n, 1.0 / n)
        # Context: subset membership one-hot + [norm perf, iter fraction].
        self.observer = NeuralContextualBandit(
            context_dim=n + 2,
            state_dim=self.settings.state_dim,
            learning_rate=self.settings.learning_rate,
            rng=self.rng,
        )
        self.picker = QLearningAgent(
            QLearningConfig(
                state_dim=self.settings.state_dim,
                n_actions=len(sizes),
                hidden=(24,),
                learning_rate=self.settings.learning_rate,
                discount=self.settings.discount,
                epsilon_start=0.4,
                epsilon_end=0.05,
                epsilon_decay=0.99,
            ),
            self.rng,
        )
        self._delayed = DelayedRewardBuffer(delay=self.settings.delay)
        self._perf_trace: list[float] = []
        self._last_state: np.ndarray | None = None

    # -- context / state ---------------------------------------------------------

    def _context(self, subset: Sequence[str], perf_norm: float, iteration: int) -> np.ndarray:
        onehot = np.array([1.0 if p in subset else 0.0 for p in self.space.names])
        extra = np.array([perf_norm, min(2.0, iteration / self.settings.max_iterations)])
        return np.concatenate([onehot, extra])

    def _normalize(self, perf_mbps: float) -> float:
        if self.normalizer is None:
            return perf_mbps / 1000.0  # fall back to GB/s units
        return self.normalizer.normalize(perf_mbps)

    # -- impact ranking ------------------------------------------------------------

    def set_impact_scores(self, scores: Sequence[float]) -> None:
        """Install offline-trained impact scores (sum-normalised)."""
        arr = np.asarray(scores, dtype=float)
        if arr.shape != (len(self.space),):
            raise ValueError("scores must have one entry per parameter")
        if np.any(arr < 0) or arr.sum() <= 0:
            raise ValueError("scores must be non-negative and not all zero")
        self.impact_scores = arr / arr.sum()

    def ranked_parameters(self) -> tuple[str, ...]:
        """All parameters, most impactful first."""
        order = np.argsort(self.impact_scores)[::-1]
        return tuple(self.space.names[i] for i in order)

    def _materialize_subset(self, k: int) -> tuple[str, ...]:
        """Fill a subset of size ``k``: the top-ranked parameter is
        always included; the rest are sampled without replacement with
        probability proportional to impact score.  Sampling (rather than
        a hard top-k cut) keeps mid-ranked parameters cycling through
        subsets, so online credit assignment can promote a parameter the
        offline sweep under-rated -- interaction-only effects like
        collective I/O depend on this."""
        names = list(self.space.names)
        order = np.argsort(self.impact_scores)[::-1]
        subset = [names[order[0]]]
        if k > 1:
            remaining = [i for i in order[1:]]
            weights = self.impact_scores[remaining] ** 1.5
            weights = weights / weights.sum()
            picks = self.rng.choice(
                len(remaining), size=k - 1, replace=False, p=weights
            )
            subset.extend(names[remaining[int(i)]] for i in picks)
        return tuple(subset)

    # -- the Table I API --------------------------------------------------------------

    def subset_picker(
        self,
        perf_mbps: float,
        current_parameter_set: Sequence[str] | None,
        iteration: int = 0,
    ) -> tuple[str, ...]:
        """Given the perf achieved with the current subset, return the
        subset for the next iteration (Table I: ``subset_picker(perf,
        current_parameter_set) -> next_parameter_set``)."""
        perf_norm = self._normalize(perf_mbps)
        current = tuple(current_parameter_set or self.space.names)

        # Mature delayed rewards from decisions >= delay iterations old.
        self._perf_trace.append(perf_norm)

        context = self._context(current, perf_norm, iteration)
        reward_now = perf_norm / (len(current) / len(self.space))
        self.observer.update(context, reward_now)
        state = self.observer.observe_state(context)

        def delayed_reward(born: int, now: int) -> float:
            horizon = min(now, len(self._perf_trace) - 1)
            return self._perf_trace[horizon] / (len(current) / len(self.space))

        for tr in self._delayed.mature(iteration, delayed_reward, state, done=False):
            self.picker.observe(tr)
        self.picker.train_step()

        action = self.picker.act(state)
        self._delayed.remember(state, action, iteration)
        self.picker.decay_epsilon()

        k = self.subset_sizes[action]
        return self._materialize_subset(k)

    # -- online impact updates ------------------------------------------------------------

    def credit_subset(self, subset: Sequence[str], perf_delta_norm: float) -> None:
        """Credit (or debit) the parameters of a subset with the perf
        change their tuning iteration produced."""
        if not subset:
            return
        beta = self.settings.impact_learning_rate
        scores = self.impact_scores.copy()
        if perf_delta_norm > 0:
            credit = perf_delta_norm / len(subset)
            for name in subset:
                i = self.space.index_of_name(name)
                scores[i] = (1.0 - beta) * scores[i] + beta * (scores[i] + credit)
        else:
            # A fruitless iteration mildly debits its subset so stale
            # rankings erode and other parameters get their turn.
            for name in subset:
                i = self.space.index_of_name(name)
                scores[i] *= 1.0 - 0.25 * beta
        self.impact_scores = scores / scores.sum()

    def reset_episode(self) -> None:
        """Clear per-run state (new tuning session); learned weights and
        impact scores persist, as the paper's agent 'continues to learn
        from the applications it is exposed to'."""
        self._delayed.clear()
        self._perf_trace.clear()
        self._last_state = None

    # -- checkpointing -------------------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        out = {"impact_scores": self.impact_scores.copy()}
        for k, v in self.picker.get_weights().items():
            out[f"picker_{k}"] = v
        for k, v in self.observer.model.get_weights().items():
            out[f"observer_{k}"] = v
        return out

    def set_state(self, state: dict[str, np.ndarray]) -> None:
        self.set_impact_scores(state["impact_scores"])
        picker = {k[len("picker_"):]: v for k, v in state.items() if k.startswith("picker_")}
        observer = {k[len("observer_"):]: v for k, v in state.items() if k.startswith("observer_")}
        if picker:
            self.picker.set_weights(picker)
        if observer:
            self.observer.model.set_weights(observer)
