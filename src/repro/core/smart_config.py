"""TunIO's Smart Configuration Generation component (Impact-First
Tuning).

Per Section III-C, the component is an RL agent with two neural pieces:

* a **State Observer** -- an NN contextual bandit fed the agent's raw
  inputs (the parameter subset used and the best perf achieved with it)
  whose learned hidden representation is the state observation;
* a **Subset Picker** -- an NN Q-learning function that maps the state
  observation to the subset to tune next iteration.

The reward is ``norm(perf) / norm(num_parameters_subset)`` with a
5-iteration delay: performance per tuned parameter, so small
high-impact subsets dominate.

The subset itself is materialised from a ranked **impact score** per
parameter: initialised offline (parameter sweep + PCA on representative
kernels, see :mod:`.offline_training`) and updated online by crediting
the parameters of a subset with the normalised improvement it produced.
The picker's discrete action chooses the subset *size*; the top-k
parameters by impact fill it (with light exploration swaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.iostack.faults import FaultPlan
from repro.iostack.parameters import ParameterSpace, TUNED_SPACE
from repro.rl.bandit import NeuralContextualBandit
from repro.rl.guardrails import (
    GuardrailMonitor,
    LossDivergenceMonitor,
    bandit_weight_issue,
    corrupt_network,
    qagent_weight_issue,
)
from repro.rl.qlearning import QLearningAgent, QLearningConfig
from repro.rl.replay import DelayedRewardBuffer

from .objective import PerfNormalizer

__all__ = ["SmartConfigSettings", "SmartConfigAgent", "GuardedSubsetPicker"]


@dataclass(frozen=True)
class SmartConfigSettings:
    """Hyper-parameters of the Smart Configuration Generation agent."""

    #: Candidate subset sizes the picker chooses among.
    subset_sizes: tuple[int, ...] = (2, 3, 4, 6, 8, 12)
    #: Reward-maturation delay in iterations (the paper uses 5).
    delay: int = 5
    #: Width of the state observation (bandit hidden layer).
    state_dim: int = 16
    #: EMA rate for online impact-score updates.
    impact_learning_rate: float = 0.25
    #: Probability of swapping one subset member for an excluded
    #: parameter (exploration of the ranking).
    swap_probability: float = 0.25
    discount: float = 0.9
    learning_rate: float = 2e-3
    #: Nominal iteration budget for feature normalisation.
    max_iterations: int = 50

    def __post_init__(self) -> None:
        if not self.subset_sizes or any(k < 1 for k in self.subset_sizes):
            raise ValueError("subset_sizes must be positive")
        if not 0.0 <= self.swap_probability <= 1.0:
            raise ValueError("swap_probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


class SmartConfigAgent:
    """Ranks parameters by impact and picks the next tuning subset."""

    def __init__(
        self,
        space: ParameterSpace = TUNED_SPACE,
        normalizer: PerfNormalizer | None = None,
        settings: SmartConfigSettings | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.space = space
        self.settings = settings or SmartConfigSettings()
        self.normalizer = normalizer
        self.rng = rng if rng is not None else np.random.default_rng()
        n = len(space)
        sizes = tuple(k for k in self.settings.subset_sizes if k <= n)
        if not sizes:
            raise ValueError("no subset size fits the space")
        self.subset_sizes = sizes
        #: Per-parameter impact scores, normalised to sum to 1.
        self.impact_scores = np.full(n, 1.0 / n)
        # Context: subset membership one-hot + [norm perf, iter fraction].
        self.observer = NeuralContextualBandit(
            context_dim=n + 2,
            state_dim=self.settings.state_dim,
            learning_rate=self.settings.learning_rate,
            rng=self.rng,
        )
        self.picker = QLearningAgent(
            QLearningConfig(
                state_dim=self.settings.state_dim,
                n_actions=len(sizes),
                hidden=(24,),
                learning_rate=self.settings.learning_rate,
                discount=self.settings.discount,
                epsilon_start=0.4,
                epsilon_end=0.05,
                epsilon_decay=0.99,
            ),
            self.rng,
        )
        self._delayed = DelayedRewardBuffer(delay=self.settings.delay)
        self._perf_trace: list[float] = []
        self._last_state: np.ndarray | None = None

    # -- context / state ---------------------------------------------------------

    def _context(self, subset: Sequence[str], perf_norm: float, iteration: int) -> np.ndarray:
        onehot = np.array([1.0 if p in subset else 0.0 for p in self.space.names])
        extra = np.array([perf_norm, min(2.0, iteration / self.settings.max_iterations)])
        return np.concatenate([onehot, extra])

    def _normalize(self, perf_mbps: float) -> float:
        if self.normalizer is None:
            return perf_mbps / 1000.0  # fall back to GB/s units
        return self.normalizer.normalize(perf_mbps)

    # -- impact ranking ------------------------------------------------------------

    def set_impact_scores(self, scores: Sequence[float]) -> None:
        """Install offline-trained impact scores (sum-normalised)."""
        arr = np.asarray(scores, dtype=float)
        if arr.shape != (len(self.space),):
            raise ValueError("scores must have one entry per parameter")
        if np.any(arr < 0) or arr.sum() <= 0:
            raise ValueError("scores must be non-negative and not all zero")
        self.impact_scores = arr / arr.sum()

    def ranked_parameters(self) -> tuple[str, ...]:
        """All parameters, most impactful first."""
        order = np.argsort(self.impact_scores)[::-1]
        return tuple(self.space.names[i] for i in order)

    def _materialize_subset(self, k: int) -> tuple[str, ...]:
        """Fill a subset of size ``k``: the top-ranked parameter is
        always included; the rest are sampled without replacement with
        probability proportional to impact score.  Sampling (rather than
        a hard top-k cut) keeps mid-ranked parameters cycling through
        subsets, so online credit assignment can promote a parameter the
        offline sweep under-rated -- interaction-only effects like
        collective I/O depend on this."""
        names = list(self.space.names)
        order = np.argsort(self.impact_scores)[::-1]
        subset = [names[order[0]]]
        if k > 1:
            remaining = [i for i in order[1:]]
            weights = self.impact_scores[remaining] ** 1.5
            weights = weights / weights.sum()
            picks = self.rng.choice(
                len(remaining), size=k - 1, replace=False, p=weights
            )
            subset.extend(names[remaining[int(i)]] for i in picks)
        return tuple(subset)

    # -- the Table I API --------------------------------------------------------------

    def subset_picker(
        self,
        perf_mbps: float,
        current_parameter_set: Sequence[str] | None,
        iteration: int = 0,
    ) -> tuple[str, ...]:
        """Given the perf achieved with the current subset, return the
        subset for the next iteration (Table I: ``subset_picker(perf,
        current_parameter_set) -> next_parameter_set``)."""
        perf_norm = self._normalize(perf_mbps)
        current = tuple(current_parameter_set or self.space.names)

        # Mature delayed rewards from decisions >= delay iterations old.
        self._perf_trace.append(perf_norm)

        context = self._context(current, perf_norm, iteration)
        reward_now = perf_norm / (len(current) / len(self.space))
        self.observer.update(context, reward_now)
        state = self.observer.observe_state(context)

        def delayed_reward(born: int, now: int) -> float:
            horizon = min(now, len(self._perf_trace) - 1)
            return self._perf_trace[horizon] / (len(current) / len(self.space))

        for tr in self._delayed.mature(iteration, delayed_reward, state, done=False):
            self.picker.observe(tr)
        self.picker.train_step()

        action = self.picker.act(state)
        self._delayed.remember(state, action, iteration)
        self.picker.decay_epsilon()

        k = self.subset_sizes[action]
        return self._materialize_subset(k)

    # -- online impact updates ------------------------------------------------------------

    def credit_subset(self, subset: Sequence[str], perf_delta_norm: float) -> None:
        """Credit (or debit) the parameters of a subset with the perf
        change their tuning iteration produced."""
        if not subset:
            return
        beta = self.settings.impact_learning_rate
        scores = self.impact_scores.copy()
        if perf_delta_norm > 0:
            credit = perf_delta_norm / len(subset)
            for name in subset:
                i = self.space.index_of_name(name)
                scores[i] = (1.0 - beta) * scores[i] + beta * (scores[i] + credit)
        else:
            # A fruitless iteration mildly debits its subset so stale
            # rankings erode and other parameters get their turn.
            for name in subset:
                i = self.space.index_of_name(name)
                scores[i] *= 1.0 - 0.25 * beta
        self.impact_scores = scores / scores.sum()

    def reset_episode(self) -> None:
        """Clear per-run state (new tuning session); learned weights and
        impact scores persist, as the paper's agent 'continues to learn
        from the applications it is exposed to'."""
        self._delayed.clear()
        self._perf_trace.clear()
        self._last_state = None

    # -- checkpointing -------------------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        out = {"impact_scores": self.impact_scores.copy()}
        for k, v in self.picker.get_weights().items():
            out[f"picker_{k}"] = v
        for k, v in self.observer.model.get_weights().items():
            out[f"observer_{k}"] = v
        return out

    def set_state(self, state: dict[str, np.ndarray]) -> None:
        self.set_impact_scores(state["impact_scores"])
        picker = {k[len("picker_"):]: v for k, v in state.items() if k.startswith("picker_")}
        observer = {k[len("observer_"):]: v for k, v in state.items() if k.startswith("observer_")}
        if picker:
            self.picker.set_weights(picker)
        if observer:
            self.observer.model.set_weights(observer)


class GuardedSubsetPicker:
    """Guardrail wrapper around :class:`SmartConfigAgent`.

    Sits between the pipeline and the agent and enforces three kinds of
    safety property without perturbing a healthy agent:

    * **weight health** -- before every call that would consume agent
      RNG, the picker's Q-networks and the observer bandit are scanned
      for non-finite or exploded weights.  A dirty network trips the
      guardrail *before* any random draw, so a degraded run consumes
      exactly the same GA random stream as a plain-GA run;
    * **training health** -- after a healthy call, the networks' last
      loss / gradient-norm telemetry feeds a
      :class:`~repro.rl.guardrails.LossDivergenceMonitor`;
    * **output sanity** -- the returned subset must be non-empty, use
      known parameter names, match a configured subset size, and not
      repeat identically for ``constant_window`` consecutive calls
      (degenerate-policy watchdog; full-space subsets are exempt since
      repeating "tune everything" is the legitimate fallback).  Healthy
      pickers empirically never repeat a non-full subset more than
      twice in a row (exploration keeps reshuffling the top-k), so the
      default window of 6 has a 3x margin against false positives
      while still firing inside a short early-stopped run.

    Once any guardrail trips, the wrapper is permanently **degraded**
    for the rest of the run and :meth:`pick` returns ``None``, which the
    pipeline interprets as "tune the full parameter set" (plain-GA
    behaviour).  :meth:`reset` re-arms the wrapper so a journal replay
    re-earns the trip deterministically.

    Fault injection (``FaultPlan.agent_fault``) is applied here: weight
    corruption modes corrupt the underlying networks once when the fault
    activates, and forced-output modes bypass the agent entirely (again
    before any RNG draw, keeping degraded runs bit-reproducible).
    """

    def __init__(
        self,
        agent: SmartConfigAgent,
        monitor: GuardrailMonitor | None = None,
        fault_source: Callable[[], FaultPlan | None] | None = None,
        constant_window: int = 6,
    ):
        if constant_window < 2:
            raise ValueError("constant_window must be >= 2")
        self.agent = agent
        self.monitor = monitor if monitor is not None else GuardrailMonitor()
        self._fault_source = fault_source
        self.constant_window = constant_window
        self._degraded_reason: str | None = None
        self._corrupted = False
        self._forced_constant: tuple[str, ...] | None = None
        self._repeat_subset: tuple[str, ...] | None = None
        self._repeat_count = 0
        # Online-RL losses legitimately jump orders of magnitude when the
        # reward scale shifts (a new best perf rescales the Q-targets);
        # only true numerical runaway -- many orders beyond any healthy
        # Q-value -- may trip, or healthy runs would spuriously degrade.
        self._loss_monitor = LossDivergenceMonitor(divergence_factor=1e6)

    # -- degradation state ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        return self._degraded_reason

    def _trip(self, kind: str, detail: str, iteration: int | None = None) -> None:
        self.monitor.trip("subset-picker", kind, detail, iteration=iteration)
        if self._degraded_reason is None:
            self._degraded_reason = f"{kind}: {detail}"

    def reset(self) -> None:
        """Re-arm the guardrails (used by journal replay; the trip is
        re-earned deterministically from the same fault plan)."""
        self._degraded_reason = None
        self._corrupted = False
        self._forced_constant = None
        self._repeat_subset = None
        self._repeat_count = 0
        self._loss_monitor.reset()

    # -- fault injection -----------------------------------------------------------

    def _active_fault(self, iteration: int) -> str | None:
        if self._fault_source is None:
            return None
        plan = self._fault_source()
        if plan is None:
            return None
        return plan.agent_fault_active(iteration)

    def _apply_corruption(self, mode: str) -> None:
        if self._corrupted:
            return
        self._corrupted = True
        corrupt_network(self.agent.picker.q_network, mode)
        corrupt_network(self.agent.picker.target_network, mode)
        corrupt_network(self.agent.observer.model, mode)

    # -- guarded Table I call ------------------------------------------------------

    def pick(
        self,
        perf_mbps: float,
        current_parameter_set: Sequence[str] | None,
        iteration: int = 0,
    ) -> tuple[str, ...] | None:
        """Guarded ``subset_picker``; ``None`` means *degraded: tune the
        full parameter set*."""
        if self.degraded:
            return None

        fault = self._active_fault(iteration)
        if fault in ("nan-weights", "explode-weights"):
            self._apply_corruption(fault)

        # Pre-call weight scan: trips before any agent RNG is consumed.
        issue = qagent_weight_issue(self.agent.picker)
        if issue is None:
            issue = bandit_weight_issue(self.agent.observer)
        if issue is not None:
            kind = "non-finite-weights" if "non-finite" in issue else "exploded-weights"
            self._trip(kind, issue, iteration)
            return None

        # Forced degenerate outputs bypass the agent (and its RNG).
        if fault == "empty-subset":
            subset: tuple[str, ...] = ()
        elif fault == "constant-subset":
            # A collapsed policy emits literally the same subset forever:
            # freeze the top-2 ranking at the moment the fault engages.
            if self._forced_constant is None:
                self._forced_constant = self.agent.ranked_parameters()[:2]
            subset = self._forced_constant
        else:
            subset = self.agent.subset_picker(perf_mbps, current_parameter_set, iteration)
            reason = self._loss_monitor.observe(
                self.agent.picker.q_network.last_loss,
                self.agent.picker.q_network.last_grad_norm,
            )
            if reason is None:
                reason = self._loss_monitor.observe(self.agent.observer.model.last_loss)
            if reason is not None:
                self._trip("training-divergence", reason, iteration)
                return None

        return self._checked(subset, iteration)

    def _checked(self, subset: tuple[str, ...], iteration: int) -> tuple[str, ...] | None:
        if not subset:
            self._trip("invalid-output", "picker returned an empty subset", iteration)
            return None
        unknown = [p for p in subset if p not in self.agent.space.names]
        if unknown:
            self._trip(
                "invalid-output",
                f"picker returned unknown parameter(s) {unknown!r}",
                iteration,
            )
            return None
        if len(subset) not in self.agent.subset_sizes:
            self._trip(
                "invalid-output",
                f"subset size {len(subset)} not in configured sizes "
                f"{self.agent.subset_sizes!r}",
                iteration,
            )
            return None
        # Degenerate-policy watchdog: the same non-full subset repeated
        # ``constant_window`` times in a row means the policy collapsed.
        if len(subset) < len(self.agent.space):
            if subset == self._repeat_subset:
                self._repeat_count += 1
            else:
                self._repeat_subset = subset
                self._repeat_count = 1
            if self._repeat_count >= self.constant_window:
                self._trip(
                    "degenerate-policy",
                    f"subset {subset!r} repeated {self._repeat_count} times",
                    iteration,
                )
                return None
        else:
            self._repeat_subset = None
            self._repeat_count = 0
        return subset

    # -- transparent delegation ----------------------------------------------------

    def reset_episode(self) -> None:
        self.agent.reset_episode()
        self._repeat_subset = None
        self._repeat_count = 0

    def credit_subset(self, subset: Sequence[str], perf_delta_norm: float) -> None:
        if self.degraded:
            return
        self.agent.credit_subset(subset, perf_delta_norm)

    @property
    def impact_scores(self) -> np.ndarray:
        return self.agent.impact_scores

    def get_state(self) -> dict[str, np.ndarray]:
        return self.agent.get_state()

    def set_state(self, state: dict[str, np.ndarray]) -> None:
        self.agent.set_state(state)
