"""The tuning specification and the one-call pipeline entry point.

Figure 3 of the paper: "TunIO takes as inputs the tuning specification
(including all user constraints) and source code."  :class:`TuningSpec`
is that specification -- the iteration/minute budget, the anticipated
production-run count, and the kernel-reduction choices that "capture the
user tuning constraints (e.g., debugging or production job)" --
and :func:`tune_application` runs the whole pipeline from C source to a
tuned H5Tuner configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.discovery.kernel import DiscoveryOptions, IOKernel, discover_io
from repro.discovery.modelgen import ModelHints, workload_from_source
from repro.discovery.reducers import IOPathSwitching, LoopReduction, Reducer
from repro.iostack.cluster import cori
from repro.iostack.noise import NoiseModel
from repro.iostack.simulator import IOStackSimulator
from repro.tuners.base import TuningResult
from repro.tuners.stoppers import AnyStopper, TimeBudgetStopper
from repro.workloads import flash, hacc, vpic

from .early_stopping import RLStopper
from .objective import PerfNormalizer
from .offline_training import TunIOAgents, train_tunio_agents
from .pipeline import TunIOTuner

__all__ = ["TuningSpec", "TuningOutcome", "tune_application"]


@dataclass(frozen=True)
class TuningSpec:
    """User constraints for one tuning job.

    Attributes
    ----------
    max_iterations:
        Hard cap on GA generations.
    budget_minutes:
        Optional hard cap on simulated tuning overhead; the pipeline
        stops when it is exhausted even if the RL stopper would go on.
    expected_runs:
        Anticipated production executions of the tuned application; more
        runs buy the stopper more patience (the paper's future-work
        input).
    use_io_kernel:
        Tune the discovered I/O kernel instead of the full application.
    loop_reduction:
        Optional fraction of I/O-loop iterations the kernel keeps
        (e.g. ``0.01``); a debugging-phase constraint.
    path_switch:
        Optional memory-backed path prefix (e.g. ``"/dev/shm"``); trades
        storage-target fidelity for evaluation speed.
    repeats:
        Runs averaged per objective evaluation.
    seed:
        Seed for every stochastic component of the job.
    """

    max_iterations: int = 50
    budget_minutes: float | None = None
    expected_runs: float | None = None
    use_io_kernel: bool = True
    loop_reduction: float | None = None
    path_switch: str | None = None
    repeats: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.budget_minutes is not None and self.budget_minutes <= 0:
            raise ValueError("budget_minutes must be positive")
        if self.expected_runs is not None and self.expected_runs <= 0:
            raise ValueError("expected_runs must be positive")
        if self.loop_reduction is not None and not 0 < self.loop_reduction <= 1:
            raise ValueError("loop_reduction must be in (0, 1]")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")

    def reducers(self) -> tuple[Reducer, ...]:
        """The kernel reducers this specification asks for."""
        out: list[Reducer] = []
        if self.loop_reduction is not None:
            out.append(LoopReduction(self.loop_reduction))
        if self.path_switch is not None:
            out.append(IOPathSwitching(self.path_switch))
        return tuple(out)


@dataclass(frozen=True)
class TuningOutcome:
    """Everything :func:`tune_application` produces."""

    result: TuningResult
    kernel: IOKernel | None
    #: Perf of the chosen configuration on the *full application* (MB/s).
    app_perf_mbps: float
    #: Perf of the default configuration on the full application (MB/s).
    app_baseline_mbps: float

    @property
    def gain(self) -> float:
        """Application-level speedup factor of the tune."""
        if self.app_baseline_mbps <= 0:
            return 1.0
        return self.app_perf_mbps / self.app_baseline_mbps


def tune_application(
    source_code: str,
    hints: ModelHints,
    spec: TuningSpec | None = None,
    name: str = "app",
    agents: TunIOAgents | None = None,
    simulator: IOStackSimulator | None = None,
) -> TuningOutcome:
    """The paper's end-to-end pipeline in one call.

    Steps: discover the I/O kernel from ``source_code`` (per the spec's
    reduction constraints), offline-train the agents if none are given,
    run the TunIO pipeline under the spec's budget, and evaluate the
    winning configuration back on the full application.
    """
    spec = spec or TuningSpec()
    rng = np.random.default_rng(spec.seed)
    platform = cori(hints.n_nodes)
    if simulator is None:
        simulator = IOStackSimulator(platform, NoiseModel(seed=spec.seed))
    normalizer = PerfNormalizer.for_platform(platform, hints.n_nodes)

    app = workload_from_source(source_code, f"{name}-app", hints)
    kernel: IOKernel | None = None
    target = app
    if spec.use_io_kernel:
        kernel = discover_io(
            source_code,
            name,
            DiscoveryOptions(hints=hints, reducers=spec.reducers()),
        )
        target = kernel.to_workload()

    if agents is None:
        training_sim = IOStackSimulator(cori(4), NoiseModel(seed=spec.seed + 1))
        agents = train_tunio_agents(
            training_sim, [vpic(), flash(), hacc()],
            PerfNormalizer.for_platform(cori(4), 4),
            rng=rng,
        )

    stopper = RLStopper(
        agents.early_stopper, normalizer, expected_runs=spec.expected_runs
    )
    if spec.budget_minutes is not None:
        stopper = AnyStopper(stopper, TimeBudgetStopper(spec.budget_minutes))
    tuner = TunIOTuner(
        simulator,
        smart_config=agents.smart_config,
        stopper=stopper,
        repeats=spec.repeats,
        rng=rng,
    )
    result = tuner.tune(target, max_iterations=spec.max_iterations)

    from repro.iostack.config import StackConfiguration

    baseline = simulator.evaluate(app, StackConfiguration.default(), repeats=spec.repeats)
    tuned = simulator.evaluate(app, result.best_config, repeats=spec.repeats)
    return TuningOutcome(
        result=result,
        kernel=kernel,
        app_perf_mbps=tuned.perf_mbps,
        app_baseline_mbps=baseline.perf_mbps,
    )
