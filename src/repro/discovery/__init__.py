"""Application I/O Discovery: slice an HPC application down to its I/O
kernel.

Pipeline: :func:`~repro.discovery.formatter.format_source` (one statement
per line) -> :func:`~repro.discovery.parser.parse_source` (line-level
structure) -> :func:`~repro.discovery.marking.mark_lines` (the marking
loop) -> :func:`~repro.discovery.reconstruct.reconstruct_kernel` ->
optional :mod:`~repro.discovery.reducers` -> an
:class:`~repro.discovery.kernel.IOKernel` that binds to the simulator via
:mod:`~repro.discovery.modelgen`.
"""

from .constants import ConstantEnv, UnresolvableExpression
from .formatter import format_source
from .kernel import DiscoveryOptions, IOKernel, discover_io
from .lexer import LexError, Token, TokenKind, tokenize
from .marking import MarkingOptions, MarkingResult, mark_lines
from .modelgen import ModelGenError, ModelHints, workload_from_source
from .parser import (
    CallInfo,
    FunctionInfo,
    LineKind,
    ParsedSource,
    SourceLine,
    parse_source,
)
from .reconstruct import annotate_source, reconstruct_kernel
from .reducers import (
    BlindWriteRecord,
    BlindWriteRemoval,
    ComputeSimulation,
    IOPathSwitching,
    LoopReduction,
    NullReduction,
    PathSwitchRecord,
    Reducer,
    ReducerOutcome,
    ReductionRecord,
)

__all__ = [
    "ConstantEnv",
    "UnresolvableExpression",
    "format_source",
    "DiscoveryOptions",
    "IOKernel",
    "discover_io",
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "MarkingOptions",
    "MarkingResult",
    "mark_lines",
    "ModelGenError",
    "ModelHints",
    "workload_from_source",
    "CallInfo",
    "FunctionInfo",
    "LineKind",
    "ParsedSource",
    "SourceLine",
    "parse_source",
    "annotate_source",
    "reconstruct_kernel",
    "BlindWriteRecord",
    "BlindWriteRemoval",
    "ComputeSimulation",
    "IOPathSwitching",
    "LoopReduction",
    "NullReduction",
    "PathSwitchRecord",
    "Reducer",
    "ReducerOutcome",
    "ReductionRecord",
]
