"""``tunio-discover``: the CLI front-end of Application I/O Discovery.

The paper: "TunIO ... provides a CLI tool for the Application I/O
Discovery component.  This tool converts the source code to its
equivalent I/O kernel, which the user can compile using their preferred
method and use as a substitute for the application during the
configuration evaluation phase."

Usage::

    tunio-discover app.c -o kernel.c
    tunio-discover app.c --loop-reduction 0.01 --path-switch /dev/shm
    tunio-discover app.c --explain          # annotated keep/drop listing
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .kernel import DiscoveryOptions, discover_io
from .marking import MarkingOptions
from .reducers import BlindWriteRemoval, IOPathSwitching, LoopReduction, Reducer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tunio-discover",
        description="Reduce an HPC application source to its I/O kernel.",
    )
    parser.add_argument("input", type=Path, help="C source file of the application")
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="kernel output path (default: <input>.kernel.c)",
    )
    parser.add_argument(
        "--loop-reduction", type=float, default=None, metavar="FRACTION",
        help="run only this fraction of I/O-loop iterations (e.g. 0.01)",
    )
    parser.add_argument(
        "--path-switch", type=str, default=None, metavar="PREFIX",
        help="prepend opened paths with a memory-backed prefix (e.g. /dev/shm)",
    )
    parser.add_argument(
        "--remove-blind-writes", action="store_true",
        help="drop H5Dwrite calls to datasets never read back (experimental)",
    )
    parser.add_argument(
        "--io-prefix", action="append", default=None, metavar="PREFIX",
        help="call-name prefix treated as I/O (default: H5; repeatable)",
    )
    parser.add_argument(
        "--keep-region", action="append", default=None, metavar="START:END",
        help="1-based inclusive line range kept verbatim (repeatable)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the annotated keep/drop listing instead of the kernel",
    )
    return parser


def _parse_regions(specs: list[str] | None) -> tuple[tuple[int, int], ...]:
    if not specs:
        return ()
    regions: list[tuple[int, int]] = []
    for spec in specs:
        try:
            start_s, _, end_s = spec.partition(":")
            start, end = int(start_s), int(end_s)
        except ValueError:
            raise SystemExit(f"invalid --keep-region {spec!r}; expected START:END")
        regions.append((start - 1, end - 1))  # CLI is 1-based
    return tuple(regions)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        source = args.input.read_text()
    except OSError as exc:
        print(f"tunio-discover: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2

    marking = MarkingOptions(
        io_prefixes=tuple(args.io_prefix) if args.io_prefix else ("H5",),
        keep_regions=_parse_regions(args.keep_region),
    )
    reducers: list[Reducer] = []
    if args.loop_reduction is not None:
        reducers.append(LoopReduction(args.loop_reduction, io_prefixes=marking.io_prefixes))
    if args.path_switch is not None:
        reducers.append(IOPathSwitching(args.path_switch))
    if args.remove_blind_writes:
        reducers.append(BlindWriteRemoval())

    kernel = discover_io(
        source,
        name=args.input.stem,
        options=DiscoveryOptions(marking=marking, reducers=tuple(reducers)),
    )

    if args.explain:
        print(kernel.explain(), end="")
        return 0

    output = args.output or args.input.with_suffix(".kernel.c")
    output.write_text(kernel.source)
    kept, total = kernel.kept_line_count, kernel.original_line_count
    print(
        f"tunio-discover: kept {kept}/{total} lines "
        f"({100 * kernel.reduction_ratio:.1f}%) -> {output}"
    )
    if kernel.extrapolation_factor != 1.0:
        print(
            "tunio-discover: scalable I/O metrics must be multiplied by "
            f"{kernel.extrapolation_factor:g}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
