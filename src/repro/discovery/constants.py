"""Constant resolution: evaluate ``#define`` macros and simple constant
expressions.

Both the loop-reduction transform (to compute trip counts) and the
workload model generator (to size datasets and loops) need to know the
integer value of expressions like ``NP * 8`` where ``NP`` comes from a
``#define``.  :class:`ConstantEnv` builds the macro table from a parsed
source and evaluates integer expressions over it with a small recursive-
descent evaluator (no ``eval``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import Token, TokenKind, tokenize
from .parser import LineKind, ParsedSource

__all__ = ["ConstantEnv", "UnresolvableExpression"]


class UnresolvableExpression(ValueError):
    """The expression references unknown identifiers or unsupported
    syntax."""


@dataclass
class ConstantEnv:
    """Integer-constant environment built from ``#define`` directives and
    (optionally) ``const int``-style declarations with literal
    initialisers."""

    macros: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_parsed(cls, parsed: ParsedSource) -> "ConstantEnv":
        env = cls()
        for line in parsed.lines:
            if line.kind != LineKind.DIRECTIVE:
                continue
            text = line.text.strip()
            if not text.startswith("#define"):
                continue
            body = text[len("#define") :].strip()
            parts = body.split(None, 1)
            if len(parts) != 2:
                continue
            name, value = parts
            if "(" in name:  # function-like macro: skip
                continue
            env.macros[name] = value.strip()
        return env

    def define(self, name: str, value: int | str) -> None:
        self.macros[name] = str(value)

    def resolve(self, expression: str, _depth: int = 0) -> int:
        """Evaluate an integer constant expression (may reference macros,
        recursively).  Raises :class:`UnresolvableExpression` otherwise."""
        if _depth > 32:
            raise UnresolvableExpression(f"macro recursion too deep in {expression!r}")
        tokens = [t for t in tokenize(expression) if t.kind != TokenKind.EOF]
        value, pos = self._parse_expr(tokens, 0, _depth)
        if pos != len(tokens):
            raise UnresolvableExpression(f"trailing tokens in {expression!r}")
        return value

    def try_resolve(self, expression: str) -> int | None:
        """Like :meth:`resolve` but returns ``None`` on failure."""
        try:
            return self.resolve(expression)
        except (UnresolvableExpression, Exception):
            return None

    # -- tiny recursive-descent evaluator: + - * / % and parens -----------------

    def _parse_expr(self, toks: list[Token], pos: int, depth: int) -> tuple[int, int]:
        value, pos = self._parse_term(toks, pos, depth)
        while pos < len(toks) and toks[pos].text in ("+", "-"):
            op = toks[pos].text
            rhs, pos = self._parse_term(toks, pos + 1, depth)
            value = value + rhs if op == "+" else value - rhs
        return value, pos

    def _parse_term(self, toks: list[Token], pos: int, depth: int) -> tuple[int, int]:
        value, pos = self._parse_atom(toks, pos, depth)
        while pos < len(toks) and toks[pos].text in ("*", "/", "%"):
            op = toks[pos].text
            rhs, pos = self._parse_atom(toks, pos + 1, depth)
            if op == "*":
                value *= rhs
            elif op == "/":
                if rhs == 0:
                    raise UnresolvableExpression("division by zero")
                value //= rhs
            else:
                if rhs == 0:
                    raise UnresolvableExpression("modulo by zero")
                value %= rhs
        return value, pos

    def _parse_atom(self, toks: list[Token], pos: int, depth: int) -> tuple[int, int]:
        if pos >= len(toks):
            raise UnresolvableExpression("unexpected end of expression")
        tok = toks[pos]
        if tok.text == "-":
            value, pos = self._parse_atom(toks, pos + 1, depth)
            return -value, pos
        if tok.text == "(":
            value, pos = self._parse_expr(toks, pos + 1, depth)
            if pos >= len(toks) or toks[pos].text != ")":
                raise UnresolvableExpression("unbalanced parentheses")
            return value, pos + 1
        if tok.kind == TokenKind.NUMBER:
            text = tok.text.rstrip("uUlL")
            try:
                return (int(text, 16) if text.lower().startswith("0x") else int(text)), pos + 1
            except ValueError:
                raise UnresolvableExpression(f"non-integer literal {tok.text!r}") from None
        if tok.kind == TokenKind.IDENT:
            if tok.text not in self.macros:
                raise UnresolvableExpression(f"unknown identifier {tok.text!r}")
            return self.resolve(self.macros[tok.text], depth + 1), pos + 1
        raise UnresolvableExpression(f"unsupported token {tok.text!r}")
