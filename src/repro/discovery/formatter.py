"""Source normalisation: one statement per line.

TunIO marks code to keep *per line*, so before parsing it runs "a custom
clang-format preprocessing step which avoids line breaking with a
200-character column limit while placing curly braces on distinct lines
and splitting multi-statement lines".  :func:`format_source` reproduces
that: it re-emits the token stream so that

* every statement ends its line at the ``;`` (except inside ``for(...)``
  headers, tracked by paren depth),
* every ``{`` and ``}`` sits on its own line,
* each preprocessor directive occupies one (unwrapped) line,
* no line is ever wrapped (the 200-column limit is a no-break limit).
"""

from __future__ import annotations

from .lexer import Token, TokenKind, tokenize

__all__ = ["format_source", "COLUMN_LIMIT"]

#: The paper's no-break column limit (we never wrap, so this is advisory).
COLUMN_LIMIT = 200

_NO_SPACE_BEFORE = {";", ",", ")", "]", "++", "--", ".", "->"}
_NO_SPACE_AFTER = {"(", "[", "!", "~", ".", "->"}
_UNARY_CONTEXT = {"(", "[", ",", "=", "+", "-", "*", "/", "%", "<", ">", "<=", ">=",
                  "==", "!=", "&&", "||", "!", "&", "|", "^", "return", ";", "{",
                  "+=", "-=", "*=", "/=", "?", ":"}


def _join(tokens: list[Token]) -> str:
    """Render a token run with lightweight C spacing rules."""
    parts: list[str] = []
    prev: Token | None = None
    for tok in tokens:
        text = tok.text
        if prev is None:
            parts.append(text)
            prev = tok
            continue
        no_space = False
        if text in _NO_SPACE_BEFORE:
            no_space = True
        elif prev.text in _NO_SPACE_AFTER:
            no_space = True
        elif text == "(" and prev.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            # call/definition parens hug the name, but control keywords
            # conventionally take a space: if (, for (, while (...
            no_space = prev.text not in ("if", "for", "while", "switch", "return", "sizeof")
        elif text == "(" and prev.text in (")", "]"):
            no_space = True
        elif text in ("++", "--") and prev.kind == TokenKind.IDENT:
            no_space = True
        elif prev.text in ("++", "--") and tok.kind == TokenKind.IDENT:
            no_space = True
        elif text == "[" and prev.kind in (TokenKind.IDENT, TokenKind.STRING) :
            no_space = True
        elif prev.text == "*" and tok.kind == TokenKind.IDENT:
            # pointer declarator hugs the name: char *buf
            no_space = True
        elif text == "*" and prev.kind == TokenKind.KEYWORD:
            pass  # "char *" keeps the space before '*'
        parts.append(text if no_space else " " + text)
        prev = tok
    return "".join(parts)


def format_source(source: str) -> str:
    """Normalise C source to the one-statement-per-line form the marking
    loop operates on.  Idempotent: formatting formatted output yields the
    same text."""
    tokens = tokenize(source)
    lines: list[str] = []
    current: list[Token] = []
    paren_depth = 0
    indent = 0
    init_brace_depth = 0  # braces inside `= {...}` initialisers stay inline

    def flush() -> None:
        nonlocal current
        if current:
            lines.append("    " * indent + _join(current))
            current = []

    for tok in tokens:
        if tok.kind == TokenKind.EOF:
            break
        if tok.kind == TokenKind.DIRECTIVE:
            flush()
            lines.append(tok.text)
            continue
        if tok.kind == TokenKind.PUNCT:
            if tok.text == "(":
                paren_depth += 1
            elif tok.text == ")":
                paren_depth = max(0, paren_depth - 1)
            elif tok.text == "{" and paren_depth == 0:
                if init_brace_depth > 0 or (
                    current and current[-1].text in ("=", ",", "{")
                ):
                    init_brace_depth += 1
                    current.append(tok)
                    continue
                flush()
                lines.append("    " * indent + "{")
                indent += 1
                continue
            elif tok.text == "}" and paren_depth == 0:
                if init_brace_depth > 0:
                    init_brace_depth -= 1
                    current.append(tok)
                    continue
                flush()
                indent = max(0, indent - 1)
                lines.append("    " * indent + "}")
                continue
            elif tok.text == ";" and paren_depth == 0:
                # `};` from struct/array initialisers attaches to the brace.
                if not current and lines and lines[-1].endswith("}"):
                    lines[-1] += ";"
                    continue
                current.append(tok)
                flush()
                continue
        current.append(tok)
    flush()
    return "\n".join(lines) + "\n"
