"""The Application I/O Discovery pipeline and its product, the
:class:`IOKernel`.

:func:`discover_io` is the paper's Table I API entry point: it takes
source code and options, runs format -> parse -> mark -> reconstruct ->
reduce, and returns an :class:`IOKernel` bundling the kernel source, the
marking diagnostics, the reduction records, and a
:meth:`IOKernel.to_workload` binding that "compiles" the kernel for the
stack simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.base import Workload

from .formatter import format_source
from .marking import MarkingOptions, MarkingResult, mark_lines
from .modelgen import ModelHints, workload_from_source
from .parser import parse_source
from .reconstruct import annotate_source, reconstruct_kernel
from .reducers import Reducer, ReducerOutcome

__all__ = ["DiscoveryOptions", "IOKernel", "discover_io"]


@dataclass(frozen=True)
class DiscoveryOptions:
    """Options of the ``discover_io`` API ("options may include manually
    indicated keep regions and flags for source code modifiers such as
    I/O path switching")."""

    marking: MarkingOptions = field(default_factory=MarkingOptions)
    #: Reducers applied, in order, to the reconstructed kernel.
    reducers: tuple[Reducer, ...] = ()
    #: Run-layout hints used when the kernel is bound to the simulator.
    hints: ModelHints | None = None


@dataclass(frozen=True)
class IOKernel:
    """A generated I/O kernel.

    Attributes
    ----------
    name:
        Kernel label (derived from the application name).
    source:
        The final kernel source (after reducers).
    kernel_source:
        The unreduced kernel source (straight from reconstruction).
    original_source:
        The formatted original application source.
    marking:
        Which lines were kept and why.
    reducer_outcomes:
        One outcome per applied reducer, in order.
    extrapolation_factor:
        Combined multiplier mapping this kernel's scalable I/O metrics
        back to the original application's (1.0 without loop reduction).
    hints:
        Run-layout hints for workload binding.
    """

    name: str
    source: str
    kernel_source: str
    original_source: str
    marking: MarkingResult
    reducer_outcomes: tuple[ReducerOutcome, ...]
    extrapolation_factor: float
    hints: ModelHints | None = None

    @property
    def kept_line_count(self) -> int:
        return len(self.marking.kept)

    @property
    def original_line_count(self) -> int:
        return len(self.original_source.splitlines())

    @property
    def reduction_ratio(self) -> float:
        """Fraction of original lines surviving into the kernel."""
        if self.original_line_count == 0:
            return 0.0
        return self.kept_line_count / self.original_line_count

    def to_workload(self, hints: ModelHints | None = None) -> Workload:
        """Bind the kernel to the simulator: statically interpret its
        source into a runnable :class:`Workload`."""
        effective = hints or self.hints
        return workload_from_source(
            self.source,
            name=f"{self.name}-kernel",
            hints=effective,
            extrapolation_factor=self.extrapolation_factor,
        )

    def explain(self) -> str:
        """Annotated keep/drop listing (the paper's Figure 5 view)."""
        parsed = parse_source(self.original_source)
        return annotate_source(parsed, self.marking)


def discover_io(
    source_code: str,
    name: str = "app",
    options: DiscoveryOptions | None = None,
) -> IOKernel:
    """Run the full Application I/O Discovery pipeline.

    The application "has to be passed through this component only once,
    but every evaluation of the objective will benefit from the improved
    runtime".
    """
    opts = options or DiscoveryOptions()
    formatted = format_source(source_code)
    parsed = parse_source(formatted)
    marking = mark_lines(parsed, opts.marking)
    kernel_source = reconstruct_kernel(parsed, marking)

    current = kernel_source
    outcomes: list[ReducerOutcome] = []
    extrapolation = 1.0
    for reducer in opts.reducers:
        outcome = reducer.apply(current)
        outcomes.append(outcome)
        current = outcome.source
        extrapolation *= outcome.extrapolation_factor

    return IOKernel(
        name=name,
        source=current,
        kernel_source=kernel_source,
        original_source=formatted,
        marking=marking,
        reducer_outcomes=tuple(outcomes),
        extrapolation_factor=extrapolation,
        hints=opts.hints,
    )
