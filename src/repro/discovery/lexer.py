"""C tokenizer for the Application I/O Discovery component.

The paper parses application sources with the Clang Python bindings; this
reproduction ships its own lexer + structural parser.  The lexer turns C
source into a token stream with line/column positions, skipping comments
and preserving preprocessor directives as single DIRECTIVE tokens (the
slicer keeps them wholesale).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenKind", "Token", "tokenize", "LexError", "C_KEYWORDS"]


class LexError(ValueError):
    """Raised on malformed input (unterminated string/comment)."""


class TokenKind(Enum):
    IDENT = auto()
    KEYWORD = auto()
    NUMBER = auto()
    STRING = auto()
    CHAR = auto()
    PUNCT = auto()
    DIRECTIVE = auto()  # a whole preprocessor line
    NEWLINE = auto()  # significant only inside directives; emitted per line
    EOF = auto()


C_KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool _Complex _Imaginary
    """.split()
)

# Multi-char operators, longest first so maximal munch works.
_PUNCTUATORS = sorted(
    [
        "<<=", ">>=", "...",
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
        "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".",
        "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    ],
    key=len,
    reverse=True,
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int  # 1-based source line
    col: int  # 1-based column

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize C source.  Comments are dropped; preprocessor lines
    (including their continuations) become single DIRECTIVE tokens."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    at_line_start = True
    while i < n:
        ch = source[i]

        # Whitespace
        if ch in " \t\r":
            advance(1)
            continue
        if ch == "\n":
            advance(1)
            at_line_start = True
            continue

        # Comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {line}")
            advance(end + 2 - i)
            continue

        # Preprocessor directive: swallow the whole (possibly continued) line
        if ch == "#" and at_line_start:
            start_line, start_col = line, col
            parts: list[str] = []
            while i < n:
                j = source.find("\n", i)
                if j == -1:
                    j = n
                segment = source[i:j]
                advance(j - i)
                if segment.rstrip().endswith("\\"):
                    parts.append(segment.rstrip()[:-1])
                    if i < n:
                        advance(1)  # consume the newline
                    continue
                parts.append(segment)
                break
            tokens.append(
                Token(TokenKind.DIRECTIVE, " ".join(p.strip() for p in parts), start_line, start_col)
            )
            at_line_start = True
            continue

        at_line_start = False

        # String literal
        if ch == '"':
            start_line, start_col = line, col
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == '"':
                    break
                if source[j] == "\n":
                    raise LexError(f"unterminated string literal at line {start_line}")
                j += 1
            else:
                raise LexError(f"unterminated string literal at line {start_line}")
            text = source[i : j + 1]
            advance(j + 1 - i)
            tokens.append(Token(TokenKind.STRING, text, start_line, start_col))
            continue

        # Char literal
        if ch == "'":
            start_line, start_col = line, col
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == "'":
                    break
                j += 1
            else:
                raise LexError(f"unterminated char literal at line {start_line}")
            text = source[i : j + 1]
            advance(j + 1 - i)
            tokens.append(Token(TokenKind.CHAR, text, start_line, start_col))
            continue

        # Number (ints, floats, hex, suffixes)
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and (source[j] in "0123456789abcdefABCDEF"):
                    j += 1
            else:
                while j < n and (source[j].isdigit() or source[j] in ".eE"):
                    if source[j] in "eE" and j + 1 < n and source[j + 1] in "+-":
                        j += 1
                    j += 1
            while j < n and source[j] in "uUlLfF":
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(TokenKind.NUMBER, text, start_line, start_col))
            continue

        # Identifier / keyword
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = TokenKind.KEYWORD if text in C_KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue

        # Punctuator
        for punct in _PUNCTUATORS:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, line, col))
                advance(len(punct))
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}, col {col}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
