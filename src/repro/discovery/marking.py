"""The marking loop: decide which lines belong to the I/O kernel.

Implements the paper's algorithm (Section III-B, Figures 4-5) on the
line-level structure from :mod:`.parser`:

1. Find and mark every I/O call (HDF5 calls in the prototype), plus the
   *essential* runtime calls without which the I/O cannot execute
   (``MPI_Init``/``MPI_Finalize``).
2. For every marked line, mark its **dependents**: the identifiers it
   uses.  Whenever a variable is marked, a **backward traversal** marks
   every line that assigns to it (in the same function, or globally).
3. Mark the **contextual parents** of every kept line: the enclosing
   loop/conditional/function headers and their braces; parents bring
   their own dependents (loop bounds, conditions).
4. Functions containing kept lines are kept callable: their heads,
   closing braces, ``return`` statements and *call sites* are marked,
   and the loop continues from those call sites.

The loop iterates to a fixpoint.  Preprocessor directives are always
kept.  Every kept line records *why* it was kept, which the tests and
the CLI's ``--explain`` mode use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .parser import LineKind, ParsedSource

__all__ = ["MarkingOptions", "MarkingResult", "mark_lines"]

#: Call-name prefixes treated as I/O in the prototype (HDF5).
DEFAULT_IO_PREFIXES = ("H5",)

#: Calls that must survive for the I/O to run at all.
DEFAULT_ESSENTIAL_CALLS = ("MPI_Init", "MPI_Finalize")


@dataclass(frozen=True)
class MarkingOptions:
    """Tuning knobs of the marking loop.

    ``keep_regions`` supports the paper's "manually indicated keep
    regions" option: inclusive (start, end) line-index ranges kept
    verbatim.
    """

    io_prefixes: tuple[str, ...] = DEFAULT_IO_PREFIXES
    essential_calls: tuple[str, ...] = DEFAULT_ESSENTIAL_CALLS
    keep_regions: tuple[tuple[int, int], ...] = ()

    def is_io_call(self, name: str) -> bool:
        return name.startswith(self.io_prefixes)


@dataclass
class MarkingResult:
    """Outcome of the marking loop."""

    kept: set[int]
    #: line index -> first reason it was marked (diagnostic).
    reasons: dict[int, str]
    #: Names of functions that contain kept code.
    live_functions: set[str] = field(default_factory=set)

    def kept_sorted(self) -> list[int]:
        return sorted(self.kept)


def mark_lines(
    parsed: ParsedSource, options: MarkingOptions | None = None
) -> MarkingResult:
    """Run the marking loop to fixpoint and return the kept-line set."""
    opts = options or MarkingOptions()
    lines = parsed.lines
    kept: set[int] = set()
    reasons: dict[int, str] = {}
    worklist: list[int] = []

    # Index: (function scope, variable) -> defining lines.  Global-scope
    # definitions (func None) are visible everywhere.
    def_index: dict[tuple[str | None, str], list[int]] = {}
    for line in lines:
        for name in line.defs:
            def_index.setdefault((line.func, name), []).append(line.index)

    def keep(idx: int, reason: str) -> None:
        if idx in kept:
            return
        kept.add(idx)
        reasons[idx] = reason
        worklist.append(idx)

    # -- seeds -----------------------------------------------------------------
    for line in lines:
        if line.kind == LineKind.DIRECTIVE:
            keep(line.index, "directive")
            continue
        for call in line.calls:
            if opts.is_io_call(call.name):
                keep(line.index, f"io-call:{call.name}")
            elif call.name in opts.essential_calls:
                keep(line.index, f"essential:{call.name}")
    for start, end in opts.keep_regions:
        if start > end:
            raise ValueError(f"invalid keep region ({start}, {end})")
        for idx in range(start, end + 1):
            if 0 <= idx < len(lines):
                keep(idx, "keep-region")

    # -- fixpoint --------------------------------------------------------------
    def mark_variable(name: str, scope: str | None, origin: int) -> None:
        """Backward traversal: keep every assignment to ``name`` visible
        from ``scope``."""
        for key in ((scope, name), (None, name)):
            for def_line in def_index.get(key, ()):
                keep(def_line, f"backward-slice:{name}<-L{origin}")

    while worklist:
        idx = worklist.pop()
        line = lines[idx]
        if line.kind in (LineKind.DIRECTIVE, LineKind.BLANK):
            continue

        # Dependents: everything this line reads.
        for name in line.uses:
            mark_variable(name, line.func, idx)
        # Loop headers also *define* their induction variable on the
        # header line itself; nothing extra needed (defs live here).

        # Contextual parents: enclosing headers with their braces.
        for header_idx in parsed.enclosing_headers(idx):
            header = lines[header_idx]
            keep(header_idx, f"parent-of:L{idx}")
            if header.block_open is not None:
                keep(header.block_open, f"brace-of:L{header_idx}")
            if header.block_close is not None:
                keep(header.block_close, f"brace-of:L{header_idx}")
            # `else` requires its `if`; `if` kept alone is fine.
            if header.kind == LineKind.ELSE:
                if_idx = _matching_if(parsed, header_idx)
                if if_idx is not None:
                    keep(if_idx, f"if-of-else:L{header_idx}")
                    if_line = lines[if_idx]
                    if if_line.block_open is not None:
                        keep(if_line.block_open, f"brace-of:L{if_idx}")
                    if if_line.block_close is not None:
                        keep(if_line.block_close, f"brace-of:L{if_idx}")

        # Keep the enclosing function callable.
        if line.func is not None and line.func in parsed.functions:
            fn = parsed.functions[line.func]
            if fn.head != idx:
                keep(fn.head, f"function-of:L{idx}")
            if fn.block_open >= 0:
                keep(fn.block_open, f"brace-of:L{fn.head}")
            if fn.block_close >= 0:
                keep(fn.block_close, f"brace-of:L{fn.head}")
            # Return statements keep the function well-formed.
            for body_idx in range(fn.head, fn.block_close + 1 if fn.block_close >= 0 else fn.head + 1):
                if lines[body_idx].kind == LineKind.RETURN:
                    keep(body_idx, f"return-of:{fn.name}")
            # The kernel must still *call* the function.
            if fn.name != "main":
                for site in parsed.call_sites.get(fn.name, ()):
                    keep(site, f"call-site-of:{fn.name}")

    live_functions = {
        lines[i].func for i in kept if lines[i].func is not None  # type: ignore[misc]
    }
    return MarkingResult(kept=kept, reasons=reasons, live_functions=live_functions)


def _matching_if(parsed: ParsedSource, else_idx: int) -> int | None:
    """Find the IF header whose block immediately precedes an ELSE."""
    lines = parsed.lines
    # Scan backwards over the `}` that closes the if-branch.
    for idx in range(else_idx - 1, -1, -1):
        line = lines[idx]
        if line.kind == LineKind.BLANK:
            continue
        if line.kind == LineKind.BRACE_CLOSE:
            # Whose block is this?
            for cand in range(idx - 1, -1, -1):
                if lines[cand].block_close == idx:
                    return cand if lines[cand].kind == LineKind.IF else None
        return None
    return None
