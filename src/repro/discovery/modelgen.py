"""Workload model generation: static interpretation of (kernel) sources.

The paper compiles the generated I/O kernel and runs it on the real
machine.  In this reproduction the "machine" is the stack simulator, so
"compiling" a source means statically interpreting it into a
:class:`~repro.workloads.base.Workload`: loop trip counts and dataset
sizes are resolved through the ``#define`` table, HDF5 calls become
request/metadata streams, plain C loops become a compute-time estimate,
and ``fprintf``/``fwrite`` chatter becomes the non-collective logging
stream.  Both the original application source and every kernel variant
go through this same interpreter, so their simulated behaviours differ
exactly where their sources differ -- which is what the Figure 8
fidelity experiments measure.

Static analysis cannot know run-layout facts that are not in the source
(process count, file-access interleaving, chunking); those come in as
:class:`ModelHints`, mirroring the "options" argument of the paper's
``discover_io`` API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
import numpy as np

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MAX_SAMPLE, MetadataStream, RequestStream
from repro.iostack.units import MiB

from repro.workloads.base import LoopGroup, Workload

from .constants import ConstantEnv
from .formatter import format_source
from .parser import CallInfo, LineKind, ParsedSource, SourceLine, parse_source

__all__ = ["ModelHints", "workload_from_source", "ModelGenError"]


class ModelGenError(ValueError):
    """The source cannot be interpreted into a workload."""


#: HDF5 native type name -> element size in bytes.
_H5_TYPE_SIZES = {
    "H5T_NATIVE_CHAR": 1,
    "H5T_NATIVE_SCHAR": 1,
    "H5T_NATIVE_UCHAR": 1,
    "H5T_NATIVE_SHORT": 2,
    "H5T_NATIVE_USHORT": 2,
    "H5T_NATIVE_INT": 4,
    "H5T_NATIVE_UINT": 4,
    "H5T_NATIVE_LONG": 8,
    "H5T_NATIVE_ULONG": 8,
    "H5T_NATIVE_LLONG": 8,
    "H5T_NATIVE_FLOAT": 4,
    "H5T_NATIVE_DOUBLE": 8,
    "H5T_NATIVE_INT32": 4,
    "H5T_NATIVE_INT64": 8,
    "H5T_NATIVE_UINT16": 2,
}

#: HDF5 calls that are metadata operations (object management).
_H5_METADATA_CALLS = frozenset(
    """
    H5Fcreate H5Fopen H5Fclose H5Dcreate2 H5Dcreate H5Dopen2 H5Dopen H5Dclose
    H5Gcreate2 H5Gopen2 H5Gclose H5Acreate2 H5Awrite H5Aread H5Aclose
    H5Screate_simple H5Sclose H5Pcreate H5Pclose H5Dset_extent
    """.split()
)


@dataclass(frozen=True)
class ModelHints:
    """Run-layout facts the source alone cannot provide."""

    n_procs: int = 128
    n_nodes: int = 4
    #: File-access character of the HDF5 data writes/reads.
    interleave: float = 0.3
    contiguity: float = 0.8
    shared_file: bool = True
    chunked: bool = True
    chunk_size: int = MiB
    working_set_per_proc: int = 64 * MiB
    #: Seconds per executed compute-statement (the static cost model).
    statement_cost: float = 2e-9
    #: Paths under these prefixes are served by the memory tier.
    memory_prefixes: tuple[str, ...] = ("/dev/shm", "/tmp/shm")

    def __post_init__(self) -> None:
        if self.n_procs < 1 or self.n_nodes < 1 or self.n_procs < self.n_nodes:
            raise ValueError("invalid job shape")
        if self.statement_cost < 0:
            raise ValueError("statement_cost must be >= 0")


@dataclass
class _Event:
    """One interpreted I/O or compute contribution, per loop iteration."""

    kind: str  # "write" | "read" | "meta" | "log" | "compute"
    #: Bytes per operation (data/log) or seconds (compute).
    size: float
    #: Operations per iteration per process (data/meta/log).
    count: float
    #: Executed only on the loop's first iteration.
    first_only: bool = False
    #: Executed by a single rank (rank-guarded) rather than all.
    single_proc: bool = False


@dataclass
class _LoopModel:
    header_index: int
    iterations: int
    events: list[_Event] = field(default_factory=list)


@dataclass
class _Interp:
    """Interpreter state."""

    parsed: ParsedSource
    env: ConstantEnv
    hints: ModelHints
    arrays: dict[str, list[int]] = field(default_factory=dict)
    spaces: dict[str, int] = field(default_factory=dict)  # space var -> n elements
    datasets: dict[str, tuple[int, int]] = field(default_factory=dict)  # var -> (elements, elt_size)
    file_paths: list[str] = field(default_factory=list)
    top_events: list[_Event] = field(default_factory=list)
    loops: list[_LoopModel] = field(default_factory=list)

    def children(self) -> dict[int | None, list[SourceLine]]:
        by_parent: dict[int | None, list[SourceLine]] = {}
        for line in self.parsed.lines:
            by_parent.setdefault(line.parent, []).append(line)
        return by_parent


def workload_from_source(
    source: str,
    name: str,
    hints: ModelHints | None = None,
    extrapolation_factor: float = 1.0,
) -> Workload:
    """Interpret C source into a :class:`Workload`.

    ``extrapolation_factor`` is carried through from the reducer pipeline
    (see :class:`repro.discovery.kernel.IOKernel`).
    """
    hints = hints or ModelHints()
    formatted = format_source(source)
    parsed = parse_source(formatted)
    if "main" not in parsed.functions:
        raise ModelGenError("source has no main() function")
    env = ConstantEnv.from_parsed(parsed)
    interp = _Interp(parsed=parsed, env=env, hints=hints)

    children = interp.children()
    main = parsed.functions["main"]
    body = [
        l
        for l in children.get(main.head, [])
        if l.kind not in (LineKind.BRACE_OPEN, LineKind.BRACE_CLOSE, LineKind.BLANK)
    ]
    _walk_block(interp, body, children, loop=None, first_only=False, single_proc=False)

    return _assemble(interp, name, extrapolation_factor)


# ---------------------------------------------------------------------------
# interpretation
# ---------------------------------------------------------------------------


def _walk_block(
    interp: _Interp,
    statements: list[SourceLine],
    children: dict[int | None, list[SourceLine]],
    loop: _LoopModel | None,
    first_only: bool,
    single_proc: bool,
) -> None:
    for line in statements:
        if line.kind in (LineKind.BRACE_OPEN, LineKind.BRACE_CLOSE, LineKind.BLANK,
                         LineKind.DIRECTIVE, LineKind.RETURN):
            continue
        if line.kind == LineKind.FOR:
            _walk_for(interp, line, children, loop, first_only, single_proc)
            continue
        if line.kind in (LineKind.IF, LineKind.ELSE, LineKind.WHILE, LineKind.DO):
            guard_first, guard_single = _analyse_guard(interp, line, loop)
            body = _body_of(line, children)
            _walk_block(
                interp,
                body,
                children,
                loop,
                first_only or guard_first,
                single_proc or guard_single,
            )
            continue
        # Ordinary statement: track state, then record events.
        _track_state(interp, line)
        _record_events(interp, line, loop, first_only, single_proc)


def _body_of(header: SourceLine, children: dict[int | None, list[SourceLine]]) -> list[SourceLine]:
    return [
        l
        for l in children.get(header.index, [])
        if l.kind not in (LineKind.BRACE_OPEN, LineKind.BRACE_CLOSE, LineKind.BLANK)
    ]


def _walk_for(
    interp: _Interp,
    header: SourceLine,
    children: dict[int | None, list[SourceLine]],
    outer_loop: _LoopModel | None,
    first_only: bool,
    single_proc: bool,
) -> None:
    trips, loop_var = _trip_count(interp, header)
    body = _body_of(header, children)

    contains_io = _contains_h5_data_call(interp, header, children)
    if contains_io and outer_loop is None:
        loop = _LoopModel(header_index=header.index, iterations=trips)
        interp.loops.append(loop)
        _walk_loop_body(interp, body, children, loop, loop_var, single_proc)
        return

    if contains_io and outer_loop is not None:
        # Nested I/O loop: multiply into the outer loop's events.
        scaled = _LoopModel(header_index=header.index, iterations=trips)
        _walk_loop_body(interp, body, children, scaled, loop_var, single_proc)
        for ev in scaled.events:
            outer_loop.events.append(
                replace(
                    ev,
                    count=ev.count * (1 if ev.first_only else trips),
                    first_only=first_only,
                )
            )
        return

    # Pure compute loop: one aggregate compute event.
    n_statements = _count_statements(body, children)
    inner_trips = _nested_trip_product(interp, body, children)
    seconds = trips * inner_trips * n_statements * interp.hints.statement_cost
    target = outer_loop.events if outer_loop is not None else interp.top_events
    target.append(
        _Event(
            kind="compute",
            size=seconds,
            count=1.0,
            first_only=first_only,
            single_proc=single_proc,
        )
    )


def _walk_loop_body(
    interp: _Interp,
    body: list[SourceLine],
    children: dict[int | None, list[SourceLine]],
    loop: _LoopModel,
    loop_var: str | None,
    single_proc: bool,
) -> None:
    """Walk the body of an I/O loop, tagging first-iteration-only work."""
    for line in body:
        if line.kind in (LineKind.BRACE_OPEN, LineKind.BRACE_CLOSE, LineKind.BLANK,
                         LineKind.DIRECTIVE, LineKind.RETURN):
            continue
        if line.kind == LineKind.FOR:
            _walk_for(interp, line, children, loop, False, single_proc)
            continue
        if line.kind in (LineKind.IF, LineKind.ELSE, LineKind.WHILE, LineKind.DO):
            guard_first, guard_single = _analyse_guard(interp, line, loop, loop_var)
            _walk_block(
                interp,
                _body_of(line, children),
                children,
                loop,
                guard_first,
                single_proc or guard_single,
            )
            continue
        _track_state(interp, line)
        _record_events(interp, line, loop, False, single_proc)


def _analyse_guard(
    interp: _Interp,
    header: SourceLine,
    loop: _LoopModel | None,
    loop_var: str | None = None,
) -> tuple[bool, bool]:
    """Classify an if/while condition: (first-iteration-only, single-rank).

    Recognises ``if (VAR == CONST)`` where VAR is the enclosing loop
    variable (first-only when CONST resolves to the loop start) and
    ``if (rank == CONST)`` (single-rank).
    """
    text = header.text
    lpar, rpar = text.find("("), text.rfind(")")
    if lpar == -1 or rpar == -1:
        return False, False
    cond = text[lpar + 1 : rpar]
    if "==" not in cond:
        return False, False
    lhs, _, rhs = cond.partition("==")
    lhs, rhs = lhs.strip(), rhs.strip()
    if interp.env.try_resolve(rhs) is None:
        return False, False
    if loop_var is not None and lhs == loop_var:
        return True, False
    if lhs in ("rank", "mpi_rank", "my_rank", "myrank"):
        return False, True
    return False, False


def _trip_count(interp: _Interp, header: SourceLine) -> tuple[int, str | None]:
    """Resolve a for-header's trip count; unresolvable loops count as 1."""
    text = header.text
    lpar, rpar = text.find("("), text.rfind(")")
    if lpar == -1 or rpar == -1:
        return 1, None
    parts = text[lpar + 1 : rpar].split(";")
    if len(parts) != 3:
        return 1, None
    init, cond, update = (p.strip() for p in parts)

    var: str | None = None
    start = 0
    if "=" in init:
        var_part, _, start_expr = init.partition("=")
        var = var_part.replace("int", "").replace("long", "").strip()
        start = interp.env.try_resolve(start_expr.strip()) or 0

    step = 1
    if "+=" in update:
        step = interp.env.try_resolve(update.partition("+=")[2].strip()) or 1

    for op in ("<=", "<"):
        if op in cond:
            bound_expr = cond.partition(op)[2].strip()
            bound = interp.env.try_resolve(bound_expr)
            if bound is None:
                return 1, var
            if op == "<=":
                bound += 1
            trips = max(0, math.ceil((bound - start) / max(1, step)))
            return max(1, trips), var
    return 1, var


def _contains_h5_data_call(
    interp: _Interp, header: SourceLine, children: dict[int | None, list[SourceLine]]
) -> bool:
    """Whether any HDF5 call (data or metadata) occurs under a header --
    the same "loop contains I/O" notion the loop reducer uses."""
    stack = [header.index]
    while stack:
        idx = stack.pop()
        for line in children.get(idx, ()):
            if any(c.name.startswith("H5") for c in line.calls):
                return True
            stack.append(line.index)
    return False


def _count_statements(body: list[SourceLine], children: dict[int | None, list[SourceLine]]) -> int:
    total = 0
    stack = list(body)
    while stack:
        line = stack.pop()
        if line.kind in (LineKind.DECL, LineKind.EXPR):
            total += 1
        stack.extend(_body_of(line, children))
    return max(1, total)


def _nested_trip_product(
    interp: _Interp, body: list[SourceLine], children: dict[int | None, list[SourceLine]]
) -> int:
    """Product of nested compute-loop trip counts (depth-first max path)."""
    best = 1
    for line in body:
        if line.kind == LineKind.FOR:
            trips, _ = _trip_count(interp, line)
            inner = _nested_trip_product(interp, _body_of(line, children), children)
            best = max(best, trips * inner)
    return best


def _track_state(interp: _Interp, line: SourceLine) -> None:
    """Update arrays / dataspaces / datasets / constants from one line."""
    env, text = interp.env, line.text

    # Array initialiser: `hsize_t dims[2] = { A, B };`
    if line.kind == LineKind.DECL and "[" in text and "{" in text and "=" in text:
        name = text.split("[", 1)[0].split()[-1].lstrip("*")
        inner = text[text.find("{") + 1 : text.rfind("}")]
        values = [env.try_resolve(p.strip()) for p in inner.split(",") if p.strip()]
        if all(v is not None for v in values) and values:
            interp.arrays[name] = [int(v) for v in values]  # type: ignore[arg-type]

    # Array element assignment: `dims[0] = N;`
    elif "[" in text and "=" in text and line.kind == LineKind.EXPR:
        head, _, rhs = text.partition("=")
        if "[" in head and "]" in head:
            name = head.split("[", 1)[0].strip()
            idx = env.try_resolve(head[head.find("[") + 1 : head.find("]")])
            val = env.try_resolve(rhs.strip(" ;"))
            if name in interp.arrays and idx is not None and val is not None:
                arr = interp.arrays[name]
                if 0 <= idx < len(arr):
                    arr[int(idx)] = int(val)

    # Scalar constant: `int n = 8;` / `n = n * 2;`
    elif "=" in text and line.kind in (LineKind.DECL, LineKind.EXPR) and not line.calls:
        head, _, rhs = text.partition("=")
        name = head.split()[-1].lstrip("*") if head.split() else ""
        val = env.try_resolve(rhs.strip(" ;"))
        if name.isidentifier() and val is not None:
            env.define(name, val)

    for call in line.calls:
        if call.name == "H5Screate_simple":
            _track_dataspace(interp, line, call)
        elif call.name in ("H5Dcreate2", "H5Dcreate", "H5Dopen2", "H5Dopen"):
            _track_dataset(interp, line, call)
        elif call.name in ("H5Fcreate", "H5Fopen", "fopen", "MPI_File_open"):
            if call.string_args:
                interp.file_paths.append(call.string_args[0])


def _assigned_var(line: SourceLine) -> str | None:
    if "=" not in line.text:
        return None
    head = line.text.partition("=")[0].split()
    return head[-1].lstrip("*") if head else None


def _track_dataspace(interp: _Interp, line: SourceLine, call: CallInfo) -> None:
    var = _assigned_var(line)
    if var is None:
        return
    dims_var = next((a for a in call.arg_idents if a in interp.arrays), None)
    if dims_var is None:
        return
    ndims = interp.env.try_resolve(
        line.text[line.text.find("(") + 1 :].split(",", 1)[0]
    )
    dims = interp.arrays[dims_var]
    if ndims is not None:
        dims = dims[: int(ndims)]
    interp.spaces[var] = int(np.prod(dims)) if dims else 0


def _track_dataset(interp: _Interp, line: SourceLine, call: CallInfo) -> None:
    var = _assigned_var(line)
    if var is None:
        return
    elt = next((_H5_TYPE_SIZES[a] for a in call.arg_idents if a in _H5_TYPE_SIZES), 8)
    space = next((interp.spaces[a] for a in call.arg_idents if a in interp.spaces), 0)
    interp.datasets[var] = (space, elt)


def _record_events(
    interp: _Interp,
    line: SourceLine,
    loop: _LoopModel | None,
    first_only: bool,
    single_proc: bool,
) -> None:
    target = loop.events if loop is not None else interp.top_events
    for call in line.calls:
        if call.name in ("H5Dwrite", "H5Dread"):
            size = _transfer_bytes(interp, call)
            target.append(
                _Event(
                    kind="write" if call.name == "H5Dwrite" else "read",
                    size=size,
                    count=1.0,
                    first_only=first_only,
                    single_proc=single_proc,
                )
            )
        elif call.name in _H5_METADATA_CALLS:
            target.append(
                _Event(
                    kind="meta",
                    size=0.0,
                    count=1.0,
                    first_only=first_only,
                    single_proc=single_proc,
                )
            )
        elif call.name in ("usleep", "sleep"):
            # Simulated compute (the ComputeSimulation reducer emits
            # usleep calls carrying the estimated loop duration).
            text = line.text
            arg = text[text.find("(") + 1 : text.find(")")]
            value = interp.env.try_resolve(arg.strip())
            if value is not None:
                seconds = value * (1e-6 if call.name == "usleep" else 1.0)
                target.append(
                    _Event(kind="compute", size=float(seconds), count=1.0,
                           first_only=first_only, single_proc=single_proc)
                )
        elif call.name == "fprintf":
            # Log line cost ~ the format string length (plus newline).
            size = float(len(call.string_args[0]) + 8) if call.string_args else 64.0
            target.append(
                _Event(kind="log", size=size, count=1.0, first_only=first_only,
                       single_proc=single_proc)
            )
        elif call.name == "fwrite":
            text = line.text
            args = text[text.find("(") + 1 : text.rfind(")")].split(",")
            size = cnt = None
            if len(args) >= 3:
                size = interp.env.try_resolve(args[1].strip())
                cnt = interp.env.try_resolve(args[2].strip())
            total = float((size or 64) * (cnt or 1))
            target.append(
                _Event(kind="log", size=total, count=1.0, first_only=first_only,
                       single_proc=single_proc)
            )


def _transfer_bytes(interp: _Interp, call: CallInfo) -> float:
    """Bytes moved by one H5Dwrite/H5Dread call (per process)."""
    elt = next((_H5_TYPE_SIZES[a] for a in call.arg_idents if a in _H5_TYPE_SIZES), None)
    # Prefer an explicit memory dataspace among the args.
    space = next((interp.spaces[a] for a in call.arg_idents if a in interp.spaces), None)
    if space is None:
        dset = next((interp.datasets[a] for a in call.arg_idents if a in interp.datasets), None)
        if dset is not None:
            space, dset_elt = dset
            elt = elt if elt is not None else dset_elt
    if space is None or space == 0:
        space = MiB  # fallback: unknown selection, assume 1 MiB of elements
        elt = 1
    return float(space * (elt or 8))


# ---------------------------------------------------------------------------
# assembly
# ---------------------------------------------------------------------------


def _assemble(interp: _Interp, name: str, extrapolation_factor: float) -> Workload:
    hints = interp.hints
    memory_tier = bool(interp.file_paths) and all(
        p.startswith(hints.memory_prefixes) for p in interp.file_paths
    )
    tier = "memory" if memory_tier else "lustre"

    fixed: list[IOPhase] = []
    loops: list[LoopGroup] = []
    log_events: list[_Event] = []

    # Top-level (setup/finalise) events become one fixed phase.
    top_data = [e for e in interp.top_events if e.kind in ("write", "read")]
    top_meta = [e for e in interp.top_events if e.kind == "meta"]
    top_compute = sum(e.size for e in interp.top_events if e.kind == "compute")
    log_events.extend(e for e in interp.top_events if e.kind == "log")
    if top_data or top_meta or top_compute > 0:
        phase = _phase_from_events(
            "setup", top_data, top_meta, top_compute, 1, hints, tier
        )
        if phase is not None:
            fixed.append(phase)

    for i, loop in enumerate(interp.loops):
        per_iter = [e for e in loop.events if not e.first_only]
        first_extra = [e for e in loop.events if e.first_only]
        log_events.extend(
            replace(e, count=e.count * (1 if e.first_only else loop.iterations))
            for e in loop.events
            if e.kind == "log"
        )
        data_iter = [e for e in per_iter if e.kind in ("write", "read")]
        meta_iter = [e for e in per_iter if e.kind == "meta"]
        compute_iter = sum(e.size for e in per_iter if e.kind == "compute")
        data_first = [e for e in first_extra if e.kind in ("write", "read")]
        meta_first = [e for e in first_extra if e.kind == "meta"]
        compute_first = sum(e.size for e in first_extra if e.kind == "compute")

        blocks: list[IOPhase] = []
        first = _phase_from_events(
            f"loop{i}_first",
            data_iter + data_first,
            meta_iter + meta_first,
            compute_iter + compute_first,
            1,
            hints,
            tier,
        )
        if first is not None:
            blocks.append(first)
        if loop.iterations > 1:
            steady = _phase_from_events(
                f"loop{i}_steady", data_iter, meta_iter, compute_iter,
                loop.iterations - 1, hints, tier,
            )
            if steady is not None:
                blocks.append(steady)
        if blocks:
            loops.append(
                LoopGroup(
                    name=f"io_loop_{i}",
                    n_iterations=loop.iterations,
                    phases=tuple(blocks),
                )
            )

    log_phase = _logging_phase(log_events, hints, tier)
    if log_phase is not None:
        fixed.append(log_phase)

    if not fixed and not loops:
        raise ModelGenError(f"source {name!r} produced no I/O or compute events")

    return Workload(
        name=name,
        n_procs=hints.n_procs,
        n_nodes=hints.n_nodes,
        fixed_phases=tuple(fixed),
        loops=tuple(loops),
        extrapolation_factor=extrapolation_factor,
    )


def _proc_count(event: _Event, hints: ModelHints) -> int:
    return 1 if event.single_proc else hints.n_procs


def _phase_from_events(
    name: str,
    data: list[_Event],
    meta: list[_Event],
    compute_seconds: float,
    iterations: int,
    hints: ModelHints,
    tier: str,
) -> IOPhase | None:
    streams: list[RequestStream] = []
    for op in ("write", "read"):
        events = [e for e in data if e.kind == op]
        if not events:
            continue
        total_ops = int(round(sum(e.count * _proc_count(e, hints) for e in events) * iterations))
        total_bytes = int(round(sum(e.size * e.count * _proc_count(e, hints) for e in events) * iterations))
        if total_ops <= 0 or total_bytes <= 0:
            continue
        sizes = _size_sample(events, hints)
        streams.append(
            RequestStream(
                op=op,  # type: ignore[arg-type]
                sizes=sizes,
                total_ops=total_ops,
                total_bytes=total_bytes,
                n_procs=hints.n_procs,
                shared_file=hints.shared_file,
                contiguity=hints.contiguity,
                interleave=hints.interleave,
                collective_capable=True,
            )
        )
    meta_ops = int(round(sum(e.count * _proc_count(e, hints) for e in meta) * iterations))
    metadata = (
        MetadataStream(total_ops=meta_ops, n_procs=hints.n_procs, per_proc_redundant=True)
        if meta_ops > 0
        else None
    )
    if not streams and metadata is None and compute_seconds <= 0:
        return None
    if not streams and metadata is None:
        # Pure compute phase: no data streams, just wall-clock time.
        return IOPhase(
            name=name,
            compute_seconds=compute_seconds * iterations,
            data=(),
            tier=tier,
        )
    return IOPhase(
        name=name,
        compute_seconds=compute_seconds * iterations,
        data=tuple(streams),
        metadata=metadata,
        chunked=hints.chunked and tier == "lustre",
        chunk_size=hints.chunk_size,
        working_set_per_proc=hints.working_set_per_proc,
        tier=tier,
    )


def _size_sample(events: list[_Event], hints: ModelHints) -> np.ndarray:
    """Representative request-size sample weighted by event counts."""
    weights = np.array([max(1e-9, e.count) for e in events])
    sizes = np.array([max(1.0, e.size) for e in events])
    reps = np.maximum(1, np.round(weights / weights.sum() * min(MAX_SAMPLE, 256)).astype(int))
    return np.repeat(sizes, reps)[:MAX_SAMPLE]


def _logging_phase(
    log_events: list[_Event], hints: ModelHints, tier: str
) -> IOPhase | None:
    if not log_events:
        return None
    total_ops = int(round(sum(e.count * _proc_count(e, hints) for e in log_events)))
    total_bytes = int(round(sum(e.size * e.count * _proc_count(e, hints) for e in log_events)))
    if total_ops <= 0 or total_bytes <= 0:
        return None
    mean = max(1, total_bytes // total_ops)
    return IOPhase(
        name="logging",
        compute_seconds=0.0,
        data=(
            RequestStream.uniform(
                "write",
                mean,
                total_ops,
                hints.n_procs,
                shared_file=False,
                contiguity=1.0,
                interleave=0.0,
                collective_capable=False,
            ),
        ),
        tier=tier,
    )
