"""Structural line parser: the Discovery component's AST substitute.

The paper marks code to keep per *line* (Clang's statement granularity is
too nuanced), so what the marking loop really needs from the "AST" is,
for every formatted line:

* its kind (directive / function head / loop / conditional / declaration
  / expression / brace),
* which variables it defines and uses,
* which functions it calls (with argument identifiers, and which
  arguments are address-of outputs),
* its contextual parent (the enclosing loop/conditional/function header).

:func:`parse_source` computes exactly that over the output of
:func:`~repro.discovery.formatter.format_source`.  Sources must be
brace-delimited (the formatter guarantees one statement per line and
braces on their own lines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from .lexer import Token, TokenKind, tokenize

__all__ = ["LineKind", "CallInfo", "SourceLine", "FunctionInfo", "ParsedSource", "parse_source"]


class LineKind(Enum):
    DIRECTIVE = auto()
    FUNC_HEAD = auto()
    BRACE_OPEN = auto()
    BRACE_CLOSE = auto()
    FOR = auto()
    WHILE = auto()
    DO = auto()
    IF = auto()
    ELSE = auto()
    DECL = auto()
    EXPR = auto()
    RETURN = auto()
    BLANK = auto()


#: Type names that begin declarations in addition to C keywords.  Covers
#: the HDF5/MPI/stdio types the target applications use.
DECL_TYPES = frozenset(
    """
    hid_t hsize_t hssize_t herr_t haddr_t
    MPI_Comm MPI_Info MPI_Status MPI_Request MPI_File MPI_Datatype MPI_Offset
    FILE size_t ssize_t time_t clock_t
    int8_t int16_t int32_t int64_t uint8_t uint16_t uint32_t uint64_t
    """.split()
)

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
_HEADER_KINDS = {LineKind.FOR, LineKind.WHILE, LineKind.IF, LineKind.ELSE, LineKind.DO, LineKind.FUNC_HEAD}


@dataclass(frozen=True)
class CallInfo:
    """One function call found on a line."""

    name: str
    #: Identifiers referenced in the argument list.
    arg_idents: tuple[str, ...]
    #: Identifiers passed by address (``&x``): outputs of the call.
    out_idents: tuple[str, ...]
    #: String literal arguments (file paths etc.), unquoted.
    string_args: tuple[str, ...]


@dataclass
class SourceLine:
    """One formatted line with its structural annotations."""

    index: int
    text: str
    kind: LineKind
    defs: frozenset[str] = frozenset()
    uses: frozenset[str] = frozenset()
    calls: tuple[CallInfo, ...] = ()
    #: Line index of the contextual parent header (or None at top level).
    parent: int | None = None
    #: For header lines: indices of their '{' / '}' lines.
    block_open: int | None = None
    block_close: int | None = None
    #: Name of the enclosing function (None outside functions).
    func: str | None = None


@dataclass
class FunctionInfo:
    """A function definition found in the file."""

    name: str
    head: int
    block_open: int
    block_close: int
    #: Parameter names.
    params: tuple[str, ...] = ()


@dataclass
class ParsedSource:
    """The parsed file: lines plus function and call-site indexes."""

    lines: list[SourceLine]
    functions: dict[str, FunctionInfo]
    #: function name -> lines that call it.
    call_sites: dict[str, list[int]] = field(default_factory=dict)

    def line_calls(self, index: int) -> tuple[CallInfo, ...]:
        return self.lines[index].calls

    def enclosing_headers(self, index: int) -> list[int]:
        """All transitive contextual parents of a line, innermost first."""
        out: list[int] = []
        cur = self.lines[index].parent
        while cur is not None:
            out.append(cur)
            cur = self.lines[cur].parent
        return out


def _extract_calls(tokens: list[Token]) -> tuple[CallInfo, ...]:
    calls: list[CallInfo] = []
    i = 0
    while i < len(tokens) - 1:
        tok, nxt = tokens[i], tokens[i + 1]
        if (
            tok.kind == TokenKind.IDENT
            and nxt.kind == TokenKind.PUNCT
            and nxt.text == "("
            and not (i > 0 and tokens[i - 1].text in ("->", "."))
        ):
            depth = 0
            j = i + 1
            arg_idents: list[str] = []
            out_idents: list[str] = []
            string_args: list[str] = []
            while j < len(tokens):
                t = tokens[j]
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t.kind == TokenKind.IDENT:
                    arg_idents.append(t.text)
                    if tokens[j - 1].text == "&":
                        out_idents.append(t.text)
                elif t.kind == TokenKind.STRING:
                    string_args.append(t.text[1:-1])
                j += 1
            calls.append(
                CallInfo(
                    name=tok.text,
                    arg_idents=tuple(arg_idents),
                    out_idents=tuple(out_idents),
                    string_args=tuple(string_args),
                )
            )
        i += 1
    return tuple(calls)


def _defs_uses(tokens: list[Token], kind: LineKind) -> tuple[frozenset[str], frozenset[str]]:
    """Defined and used identifiers of one statement line."""
    defs: set[str] = set()
    uses: set[str] = set()

    # Called function names are not variable uses.
    call_names = {
        t.text
        for i, t in enumerate(tokens)
        if t.kind == TokenKind.IDENT
        and i + 1 < len(tokens)
        and tokens[i + 1].text == "("
    }

    def idents(toks: list[Token]) -> set[str]:
        return {
            t.text
            for t in toks
            if t.kind == TokenKind.IDENT and t.text not in call_names and t.text not in DECL_TYPES
        }

    # Split at top-level assignment operators (left-to-right, first one).
    depth = 0
    split_at: int | None = None
    for i, t in enumerate(tokens):
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
        elif depth == 0 and t.kind == TokenKind.PUNCT and t.text in _ASSIGN_OPS:
            split_at = i
            break

    if split_at is not None:
        lhs, op, rhs = tokens[:split_at], tokens[split_at], tokens[split_at + 1 :]
        lhs_idents = idents(lhs)
        if lhs_idents:
            # `buf[i] = x`: buf is defined, i is used.
            base = next(
                (t.text for t in lhs if t.kind == TokenKind.IDENT and t.text in lhs_idents),
                None,
            )
            if base is not None:
                defs.add(base)
                uses |= lhs_idents - {base}
        uses |= idents(rhs)
        if op.text != "=":
            uses |= defs  # compound assignment reads the target too
    else:
        uses |= idents(tokens)
        # `i++` / `++i` define (and use) their operand.
        for i, t in enumerate(tokens):
            if t.text in ("++", "--"):
                neighbor = tokens[i - 1] if i > 0 and tokens[i - 1].kind == TokenKind.IDENT else (
                    tokens[i + 1] if i + 1 < len(tokens) and tokens[i + 1].kind == TokenKind.IDENT else None
                )
                if neighbor is not None:
                    defs.add(neighbor.text)

    if kind == LineKind.DECL and split_at is not None:
        # `hid_t file_id = H5Fcreate(...)`: the declared name is the def.
        pass
    elif kind == LineKind.DECL:
        # Declaration without initialiser: every identifier is a def.
        defs |= idents(tokens)
        uses -= defs

    # Address-of arguments are outputs of the call on this line.
    for i, t in enumerate(tokens):
        if t.text == "&" and i + 1 < len(tokens) and tokens[i + 1].kind == TokenKind.IDENT:
            name = tokens[i + 1].text
            if name not in call_names:
                defs.add(name)

    return frozenset(defs), frozenset(uses)


def _classify(tokens: list[Token], text: str, at_top_level: bool, next_is_brace: bool) -> LineKind:
    if text.lstrip().startswith("#"):
        return LineKind.DIRECTIVE
    if not tokens:
        return LineKind.BLANK
    first = tokens[0]
    stripped = text.strip()
    if stripped in ("{",):
        return LineKind.BRACE_OPEN
    if stripped in ("}", "};"):
        return LineKind.BRACE_CLOSE
    if first.text == "for":
        return LineKind.FOR
    if first.text == "while":
        return LineKind.WHILE
    if first.text == "do":
        return LineKind.DO
    if first.text == "if":
        return LineKind.IF
    if first.text == "else":
        return LineKind.ELSE
    if first.text == "return":
        return LineKind.RETURN
    starts_with_type = first.kind == TokenKind.KEYWORD and first.text in (
        "int", "long", "short", "char", "float", "double", "unsigned", "signed",
        "void", "const", "static", "struct",
    )
    starts_with_typedef = first.kind == TokenKind.IDENT and first.text in DECL_TYPES
    if starts_with_type or starts_with_typedef:
        if at_top_level and next_is_brace:
            return LineKind.FUNC_HEAD
        return LineKind.DECL
    return LineKind.EXPR


def parse_source(formatted: str) -> ParsedSource:
    """Parse formatted source (one statement per line) into the
    line-level structure the marking loop consumes."""
    raw_lines = formatted.split("\n")
    if raw_lines and raw_lines[-1] == "":
        raw_lines.pop()

    # Tokenize per line so token positions map trivially to lines.
    per_line_tokens: list[list[Token]] = []
    for text in raw_lines:
        if text.lstrip().startswith("#"):
            per_line_tokens.append([])
            continue
        toks = [t for t in tokenize(text) if t.kind != TokenKind.EOF]
        per_line_tokens.append(toks)

    lines: list[SourceLine] = []
    functions: dict[str, FunctionInfo] = {}

    # First pass: classification.
    brace_depth = 0
    for idx, text in enumerate(raw_lines):
        toks = per_line_tokens[idx]
        next_brace = idx + 1 < len(raw_lines) and raw_lines[idx + 1].strip() == "{"
        kind = _classify(toks, text, brace_depth == 0, next_brace)
        if kind == LineKind.BRACE_OPEN:
            brace_depth += 1
        elif kind == LineKind.BRACE_CLOSE:
            brace_depth -= 1
        lines.append(SourceLine(index=idx, text=text, kind=kind))

    # Second pass: structure (parents, blocks, functions) + semantics.
    stack: list[int] = []  # header line indices whose blocks are open
    pending_header: int | None = None
    current_func: str | None = None
    func_stack_depth: list[int] = []

    for idx, line in enumerate(lines):
        toks = per_line_tokens[idx]
        if line.kind == LineKind.DIRECTIVE or line.kind == LineKind.BLANK:
            line.parent = stack[-1] if stack else None
            line.func = current_func
            continue

        if line.kind == LineKind.BRACE_OPEN:
            line.parent = pending_header if pending_header is not None else (stack[-1] if stack else None)
            line.func = current_func
            if pending_header is not None:
                lines[pending_header].block_open = idx
                stack.append(pending_header)
                pending_header = None
            else:
                stack.append(idx)  # anonymous block: the brace is its own header
            continue

        if line.kind == LineKind.BRACE_CLOSE:
            if stack:
                header = stack.pop()
                lines[header].block_close = idx
                line.parent = lines[header].parent
                if lines[header].kind == LineKind.FUNC_HEAD and len(stack) == 0:
                    current_func = None
            else:
                line.parent = None
            line.func = current_func
            continue

        line.parent = stack[-1] if stack else None
        line.func = current_func

        defs, uses = _defs_uses(toks, line.kind)
        line.defs, line.uses = defs, uses
        line.calls = _extract_calls(toks)

        if line.kind in _HEADER_KINDS:
            pending_header = idx
            if line.kind == LineKind.FUNC_HEAD:
                calls = line.calls
                name = calls[0].name if calls else None
                if name:
                    current_func = name
                    params = calls[0].arg_idents
                    functions[name] = FunctionInfo(
                        name=name, head=idx, block_open=-1, block_close=-1, params=params
                    )
                    # A function head defines its parameters.
                    line.defs = frozenset(params)
                    line.uses = frozenset()
                    line.calls = ()
        line.func = current_func if line.kind != LineKind.FUNC_HEAD else current_func

    # Fix up function block ranges now that blocks are matched.
    for fn in functions.values():
        head = lines[fn.head]
        fn.block_open = head.block_open if head.block_open is not None else -1
        fn.block_close = head.block_close if head.block_close is not None else -1

    # func attribution: lines inside a function body get its name.
    for fn in functions.values():
        if fn.block_open < 0 or fn.block_close < 0:
            continue
        for idx in range(fn.head, fn.block_close + 1):
            lines[idx].func = fn.name

    parsed = ParsedSource(lines=lines, functions=functions)
    for line in lines:
        for call in line.calls:
            parsed.call_sites.setdefault(call.name, []).append(line.index)
    return parsed
