"""Kernel reconstruction: emit compilable source from the kept lines.

After marking, the kernel is simply the kept lines in original order.
Because the marking loop keeps headers together with both their braces
and every dependent assignment, the result is well-formed C; bodies that
lost all their statements become legal empty blocks.
"""

from __future__ import annotations

from .marking import MarkingResult
from .parser import ParsedSource

__all__ = ["reconstruct_kernel", "annotate_source"]


def reconstruct_kernel(parsed: ParsedSource, marking: MarkingResult) -> str:
    """Source text of the I/O kernel (kept lines, original order)."""
    out = [parsed.lines[i].text for i in marking.kept_sorted()]
    return "\n".join(out) + ("\n" if out else "")


def annotate_source(parsed: ParsedSource, marking: MarkingResult) -> str:
    """The full source with per-line keep/drop markers and reasons --
    the CLI's ``--explain`` output, mirroring the paper's Figure 5."""
    rows: list[str] = []
    for line in parsed.lines:
        if line.index in marking.kept:
            tag = "KEEP"
            why = marking.reasons.get(line.index, "")
        else:
            tag = "drop"
            why = ""
        rows.append(f"{line.index + 1:4d} {tag:4s} | {line.text:<80s} {why}")
    return "\n".join(rows) + "\n"
