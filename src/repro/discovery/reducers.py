"""Kernel reducers: optional source-to-source transforms applied after
reconstruction.

The paper ships two ("they are optional to apply -- a null reduction
step could be used instead"):

* :class:`LoopReduction` -- run only a percentage of the iterations of
  loops containing I/O, recording the scale factor so "the scalable
  metrics for that I/O are then multiplied by the loop reductions".
  Loops whose reduced trip count would not shrink are left alone
  ("whenever the loop iterations are too small to reduce, loop reduction
  will not be able to do anything").  Only the outermost I/O loop is
  reduced, and the recorded extrapolation factor is the *achieved*
  reduction (original/kept iterations), so byte extrapolation stays
  accurate even when ``ceil`` rounds the kept count up.
* :class:`IOPathSwitching` -- prepend every opened path with a
  memory-backed prefix (``/dev/shm``) so evaluations avoid slow storage.

Three of the paper's future-work transforms are also provided:

* :class:`BlindWriteRemoval` -- drop H5Dwrite calls to datasets that are
  never read back within the kernel.
* :class:`ComputeSimulation` -- replace pure-compute loops with usleep
  calls of the statically estimated duration ("simulating necessary
  compute"): the kernel keeps the application's timing shape without
  doing the work.
* :class:`NullReduction` -- the identity transform.

Each reducer returns a new source plus typed records describing what it
changed; the records drive metric extrapolation in the harness.
"""

from __future__ import annotations

import abc
import math
import re
from dataclasses import dataclass

from .constants import ConstantEnv
from .formatter import format_source
from .parser import LineKind, ParsedSource, parse_source

__all__ = [
    "ReductionRecord",
    "PathSwitchRecord",
    "BlindWriteRecord",
    "ReducerOutcome",
    "Reducer",
    "NullReduction",
    "LoopReduction",
    "IOPathSwitching",
    "BlindWriteRemoval",
    "ComputeSimulation",
]


@dataclass(frozen=True)
class ReductionRecord:
    """One reduced loop."""

    line_index: int
    variable: str
    original_iterations: int
    reduced_iterations: int

    @property
    def scale(self) -> float:
        """Multiplier to extrapolate this loop's metrics back up."""
        return self.original_iterations / self.reduced_iterations


@dataclass(frozen=True)
class PathSwitchRecord:
    """One redirected file path."""

    line_index: int
    original: str
    switched: str


@dataclass(frozen=True)
class BlindWriteRecord:
    """One removed blind write."""

    line_index: int
    dataset_variable: str


@dataclass(frozen=True)
class ReducerOutcome:
    """Transformed source plus what changed."""

    source: str
    reductions: tuple[ReductionRecord, ...] = ()
    path_switches: tuple[PathSwitchRecord, ...] = ()
    removed_writes: tuple[BlindWriteRecord, ...] = ()
    #: Nominal multiplier for scalable I/O metrics.  The paper multiplies
    #: by the *requested* reduction (e.g. 100x for 1%), not the achieved
    #: per-loop ratio; :class:`LoopReduction` records it here.
    extrapolation_factor: float = 1.0


class Reducer(abc.ABC):
    """A source-to-source kernel transform."""

    @abc.abstractmethod
    def apply(self, source: str) -> ReducerOutcome:
        """Transform ``source`` (already formatted or not) and report."""


class NullReduction(Reducer):
    """Identity: formats the source and changes nothing."""

    def apply(self, source: str) -> ReducerOutcome:
        return ReducerOutcome(source=format_source(source))


# Matches `for (init ; VAR < BOUND ; update)` capturing the three parts.
_FOR_RE = re.compile(
    r"^(\s*for\s*\()\s*(?P<init>[^;]*);\s*(?P<var>\w+)\s*(?P<op><=?)\s*(?P<bound>[^;]+);(?P<update>[^)]*)(\)\s*)$"
)


class LoopReduction(Reducer):
    """Shrink I/O-loop trip counts to ``fraction`` of the original.

    Only loops that (transitively) contain an I/O call are touched; the
    bound must resolve to an integer constant through the kernel's
    ``#define`` table.
    """

    def __init__(self, fraction: float, io_prefixes: tuple[str, ...] = ("H5",)):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.io_prefixes = io_prefixes

    def apply(self, source: str) -> ReducerOutcome:
        formatted = format_source(source)
        parsed = parse_source(formatted)
        env = ConstantEnv.from_parsed(parsed)
        io_loops = self._loops_containing_io(parsed)

        lines = [line.text for line in parsed.lines]
        records: list[ReductionRecord] = []
        for idx in io_loops:
            match = _FOR_RE.match(lines[idx])
            if match is None:
                continue
            bound_expr = match.group("bound").strip()
            bound = env.try_resolve(bound_expr)
            if bound is None:
                continue
            iterations = bound + 1 if match.group("op") == "<=" else bound
            if iterations <= 0:
                continue
            reduced = max(1, math.ceil(iterations * self.fraction))
            if reduced >= iterations:
                continue  # too small to reduce
            new_bound = str(reduced) if match.group("op") == "<" else str(reduced - 1)
            lines[idx] = (
                f"{match.group(1)}{match.group('init')}; {match.group('var')} "
                f"{match.group('op')} {new_bound};{match.group('update')}) "
                f"/* tunio:loop-reduced {iterations}->{reduced} */"
            )
            records.append(
                ReductionRecord(
                    line_index=idx,
                    variable=match.group("var"),
                    original_iterations=iterations,
                    reduced_iterations=reduced,
                )
            )

        if records:
            total_orig = sum(r.original_iterations for r in records)
            total_red = sum(r.reduced_iterations for r in records)
            factor = total_orig / total_red
        else:
            factor = 1.0
        return ReducerOutcome(
            source="\n".join(lines) + "\n",
            reductions=tuple(records),
            extrapolation_factor=factor,
        )

    def _loops_containing_io(self, parsed: ParsedSource) -> list[int]:
        """Outermost FOR loops that (transitively) contain an I/O call.

        Only the outermost loop is reduced: shrinking nested loops too
        would compound the reduction and make extrapolation ambiguous.
        """
        loops: set[int] = set()
        for line in parsed.lines:
            if not any(c.name.startswith(self.io_prefixes) for c in line.calls):
                continue
            outermost: int | None = None
            for header_idx in parsed.enclosing_headers(line.index):
                if parsed.lines[header_idx].kind == LineKind.FOR:
                    outermost = header_idx
            if outermost is not None:
                loops.add(outermost)
        return sorted(loops)


#: Calls whose first string argument is a file path to switch.
_PATH_OPENING_CALLS = ("H5Fcreate", "H5Fopen", "fopen", "open", "MPI_File_open")


class IOPathSwitching(Reducer):
    """Prepend every opened path with a memory-backed prefix."""

    def __init__(self, prefix: str = "/dev/shm"):
        if not prefix or not prefix.startswith("/"):
            raise ValueError("prefix must be an absolute path")
        self.prefix = prefix.rstrip("/")

    def apply(self, source: str) -> ReducerOutcome:
        formatted = format_source(source)
        parsed = parse_source(formatted)
        lines = [line.text for line in parsed.lines]
        records: list[PathSwitchRecord] = []
        for line in parsed.lines:
            for call in line.calls:
                if call.name not in _PATH_OPENING_CALLS or not call.string_args:
                    continue
                original = call.string_args[0]
                if original.startswith(self.prefix):
                    continue
                switched = f"{self.prefix}/{original.lstrip('/')}"
                lines[line.index] = lines[line.index].replace(
                    f'"{original}"', f'"{switched}"', 1
                )
                records.append(
                    PathSwitchRecord(
                        line_index=line.index, original=original, switched=switched
                    )
                )
        return ReducerOutcome(
            source="\n".join(lines) + "\n", path_switches=tuple(records)
        )


class BlindWriteRemoval(Reducer):
    """Remove ``H5Dwrite`` calls on datasets that are never read back.

    A dataset variable is "read back" when it also appears in an
    ``H5Dread`` call.  This is one of the paper's future-work source
    transforms; it trades kernel fidelity (written bytes drop) for
    evaluation speed, so it is off by default everywhere.
    """

    def apply(self, source: str) -> ReducerOutcome:
        formatted = format_source(source)
        parsed = parse_source(formatted)
        read_datasets: set[str] = set()
        for line in parsed.lines:
            for call in line.calls:
                if call.name == "H5Dread" and call.arg_idents:
                    read_datasets.add(call.arg_idents[0])
        keep: list[str] = []
        records: list[BlindWriteRecord] = []
        for line in parsed.lines:
            write_call = next(
                (c for c in line.calls if c.name == "H5Dwrite" and c.arg_idents), None
            )
            if write_call is not None and write_call.arg_idents[0] not in read_datasets:
                records.append(
                    BlindWriteRecord(
                        line_index=line.index,
                        dataset_variable=write_call.arg_idents[0],
                    )
                )
                continue
            keep.append(line.text)
        return ReducerOutcome(
            source="\n".join(keep) + "\n", removed_writes=tuple(records)
        )


class ComputeSimulation(Reducer):
    """Replace pure-compute loops with ``usleep`` calls of the same
    estimated duration (the paper's future-work "simulating necessary
    compute").

    Unlike the plain kernel -- which drops compute entirely and therefore
    under-reports the application's end-to-end runtime -- a
    compute-simulated kernel preserves the run's *timing* shape (useful
    when tuning interacts with compute/I/O phasing) while performing
    none of the arithmetic.  Loop durations are estimated with the same
    static cost model the workload generator uses
    (:class:`~repro.discovery.modelgen.ModelHints.statement_cost`).

    Only loops that contain no I/O calls and whose trip count resolves
    statically are replaced.
    """

    def __init__(self, statement_cost: float = 2e-9, io_prefixes: tuple[str, ...] = ("H5",)):
        if statement_cost <= 0:
            raise ValueError("statement_cost must be positive")
        self.statement_cost = statement_cost
        self.io_prefixes = io_prefixes

    def apply(self, source: str) -> ReducerOutcome:
        from .constants import UnresolvableExpression  # local: avoid cycle noise

        formatted = format_source(source)
        parsed = parse_source(formatted)
        env = ConstantEnv.from_parsed(parsed)

        # Headers of loops containing any I/O-prefixed call (kept as-is).
        io_loops: set[int] = set()
        for line in parsed.lines:
            if any(c.name.startswith(self.io_prefixes) for c in line.calls):
                for header in parsed.enclosing_headers(line.index):
                    io_loops.add(header)

        lines = [line.text for line in parsed.lines]
        simulated: list[ReductionRecord] = []
        drop: set[int] = set()
        for line in parsed.lines:
            if line.kind != LineKind.FOR or line.index in io_loops:
                continue
            # Loops nested inside another *compute* loop fold into the
            # outer replacement; living inside an I/O loop is fine (that
            # is exactly MACSio's per-dump compute).
            if any(
                parsed.lines[h].kind == LineKind.FOR and h not in io_loops
                for h in parsed.enclosing_headers(line.index)
            ):
                continue
            match = _FOR_RE.match(line.text)
            if match is None:
                continue
            bound = env.try_resolve(match.group("bound").strip())
            if bound is None:
                continue
            iterations = bound + 1 if match.group("op") == "<=" else bound
            if iterations <= 0 or line.block_open is None or line.block_close is None:
                continue
            body = range(line.block_open + 1, line.block_close)
            statements = sum(
                1
                for i in body
                if parsed.lines[i].kind in (LineKind.DECL, LineKind.EXPR)
            )
            nested = 1
            for i in body:
                inner = parsed.lines[i]
                if inner.kind == LineKind.FOR:
                    m = _FOR_RE.match(inner.text)
                    b = env.try_resolve(m.group("bound").strip()) if m else None
                    if b:
                        nested = max(nested, b)
            micros = max(
                1, int(iterations * nested * max(1, statements) * self.statement_cost * 1e6)
            )
            indent = line.text[: len(line.text) - len(line.text.lstrip())]
            lines[line.index] = (
                f"{indent}usleep({micros}); /* tunio:compute-simulated "
                f"{iterations}x{nested} iters */"
            )
            drop.update(range(line.block_open, line.block_close + 1))
            simulated.append(
                ReductionRecord(
                    line_index=line.index,
                    variable=match.group("var"),
                    original_iterations=iterations,
                    reduced_iterations=1,
                )
            )

        kept = [text for i, text in enumerate(lines) if i not in drop]
        return ReducerOutcome(
            source="\n".join(kept) + "\n",
            reductions=tuple(simulated),
        )
