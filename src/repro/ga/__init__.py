"""A small evolutionary-algorithm framework (the reproduction's DEAP).

Provides integer-genome individuals, masked crossover/mutation operators,
the paper's tournament + elitism selection scheme, a DEAP-style toolbox
and a generational engine the tuning pipelines drive one step at a time.
"""

from .engine import EvolutionEngine, GenerationStats
from .individual import Individual
from .operators import (
    apply_mask,
    indexed_mutation,
    one_point_crossover,
    repair_individual,
    uniform_crossover,
    uniform_reset_mutation,
)
from .selection import elites, tournament_pair, tournament_selection
from .toolbox import Toolbox

__all__ = [
    "EvolutionEngine",
    "GenerationStats",
    "Individual",
    "apply_mask",
    "indexed_mutation",
    "one_point_crossover",
    "repair_individual",
    "uniform_crossover",
    "uniform_reset_mutation",
    "elites",
    "tournament_pair",
    "tournament_selection",
    "Toolbox",
]
