"""The generational evolution engine.

Drives the classic evaluate -> select -> mate -> mutate loop through a
:class:`~repro.ga.toolbox.Toolbox`, with elitism and optional gene masks
(for subset tuning).  The engine is deliberately DEAP-shaped: the tuning
pipeline owns the outer loop (it consults the early stopper and the
subset picker between generations), so the engine exposes a single
:meth:`step` advancing one generation, plus a convenience :meth:`run`.

Toolbox contract (all rng arguments are numpy Generators):

* ``generate(n, rng) -> list[Individual]`` -- initial population.
* ``evaluate(individual) -> float`` -- fitness, higher is better.
* ``select(population, rng) -> (Individual, Individual)`` -- two parents.
* ``mate(a, b, rng) -> (Individual, Individual)`` -- two offspring.
* ``mutate(individual, rng) -> Individual``.
* ``evaluate_batch(individuals) -> sequence[float]`` -- optional; when
  registered, a generation's unevaluated individuals are dispatched as
  one batch (in population order) instead of one ``evaluate`` call each.
* ``repair(individual) -> Individual`` -- optional; a deterministic,
  RNG-free projection applied to every bred individual (after mask
  pinning), so variation can never emit a constraint-violating genome.
  Repair may adjust genes outside the active mask when a constraint
  couples a masked gene to a pinned one -- validity wins over pinning.

Only individuals with no fitness are (re)evaluated, matching DEAP's
invalid-fitness convention -- elites carry their fitness across
generations for free.

Duplicate genomes within a generation can additionally be deduplicated
(``dedupe_duplicates=True``): only one representative per distinct
genome is dispatched and its fitness is shared by the duplicates.  This
is exact for deterministic evaluators, but it changes how many times a
stochastic evaluator is consulted (and hence any noise-stream or
clock-charging side effects), so it is off by default; the stack tuners
instead deduplicate at the trace level inside their batch evaluator,
which preserves per-evaluation accounting bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .individual import Individual
from .operators import apply_mask
from .selection import elites
from .toolbox import Toolbox

__all__ = ["GenerationStats", "EvolutionEngine"]


@dataclass(frozen=True)
class GenerationStats:
    """Summary of one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best: Individual
    #: Individuals assigned a fitness in this generation.
    evaluations: int
    #: Distinct genomes among them (evaluations - distinct = duplicates).
    distinct_genomes: int = 0


class EvolutionEngine:
    """Generational GA with elitism and optional subset masks.

    Parameters
    ----------
    toolbox:
        Operator registry (see module docstring for the contract).
    population_size:
        Individuals per generation (must fit at least the elites).
    n_elites:
        Individuals copied unchanged into the next generation.
    rng:
        Random source; pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        toolbox: Toolbox,
        population_size: int,
        n_elites: int = 1,
        rng: np.random.Generator | None = None,
        dedupe_duplicates: bool = False,
    ):
        toolbox.validate()
        if population_size < 3:
            raise ValueError("population_size must be >= 3 (tournament needs 3)")
        if not 0 <= n_elites < population_size:
            raise ValueError("n_elites must be in [0, population_size)")
        self.toolbox = toolbox
        self.population_size = population_size
        self.n_elites = n_elites
        self.dedupe_duplicates = dedupe_duplicates
        self.rng = rng if rng is not None else np.random.default_rng()
        self.population: list[Individual] = []
        self.history: list[GenerationStats] = []
        self._generation = 0
        self._mask: np.ndarray | None = None

    # -- subset masking ---------------------------------------------------------

    def set_mask(self, mask: Sequence[bool] | np.ndarray | None) -> None:
        """Restrict variation to the masked genome positions.  Unmasked
        genes of every offspring are pinned to the current best
        individual's values.  ``None`` clears the restriction."""
        if mask is None:
            self._mask = None
            return
        arr = np.asarray(mask, dtype=bool)
        if not arr.any():
            raise ValueError("mask must enable at least one gene")
        self._mask = arr

    # -- core loop ------------------------------------------------------------------

    def initialize(self) -> GenerationStats:
        """Create and evaluate generation 0.

        If a mask is already active, every generated individual is pinned
        to the first one (the seed/incumbent) outside the mask, so subset
        tuning constrains the whole run including generation 0.
        """
        if self.population:
            raise RuntimeError("engine already initialized")
        self.population = list(self.toolbox.generate(self.population_size, self.rng))
        if len(self.population) != self.population_size:
            raise ValueError("generate() returned the wrong number of individuals")
        if self._mask is not None:
            seed = self.population[0]
            self.population = [seed] + [
                apply_mask(ind, seed, self._mask) for ind in self.population[1:]
            ]
        if "repair" in self.toolbox:
            self.population = [self.toolbox.repair(ind) for ind in self.population]
        stats = self._evaluate_and_record()
        return stats

    def step(self) -> GenerationStats:
        """Advance one generation and return its stats."""
        if not self.population:
            return self.initialize()
        next_pop: list[Individual] = [ind for ind in elites(self.population, self.n_elites)]
        incumbent = self.best
        while len(next_pop) < self.population_size:
            pa, pb = self.toolbox.select(self.population, self.rng)
            ca, cb = self.toolbox.mate(pa, pb, self.rng)
            for child in (ca, cb):
                if len(next_pop) >= self.population_size:
                    break
                child = self.toolbox.mutate(child, self.rng)
                if self._mask is not None:
                    child = apply_mask(child, incumbent, self._mask)
                if "repair" in self.toolbox:
                    child = self.toolbox.repair(child)
                next_pop.append(child)
        self.population = next_pop
        self._generation += 1
        return self._evaluate_and_record()

    def run(
        self,
        n_generations: int,
        should_stop: Callable[[GenerationStats], bool] | None = None,
    ) -> list[GenerationStats]:
        """Run up to ``n_generations`` (including generation 0 if not yet
        initialised), stopping early when ``should_stop`` returns True."""
        if n_generations < 1:
            raise ValueError("n_generations must be >= 1")
        out: list[GenerationStats] = []
        for _ in range(n_generations):
            stats = self.step()
            out.append(stats)
            if should_stop is not None and should_stop(stats):
                break
        return out

    # -- accessors --------------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def best(self) -> Individual:
        """Best individual of the current population."""
        if not self.population:
            raise RuntimeError("engine not initialized")
        return elites(self.population, 1)[0]

    # -- internals ---------------------------------------------------------------------

    @staticmethod
    def duplicate_groups(individuals: Sequence[Individual]) -> list[list[int]]:
        """Group indices of ``individuals`` by identical genome, in
        first-seen order.  ``[[0, 3], [1], [2]]`` means individuals 0 and
        3 share a genome."""
        groups: dict[bytes, list[int]] = {}
        for i, ind in enumerate(individuals):
            groups.setdefault(ind.genome.tobytes(), []).append(i)
        return list(groups.values())

    def _evaluate_and_record(self) -> GenerationStats:
        pending = [ind for ind in self.population if not ind.evaluated]
        groups = self.duplicate_groups(pending)
        if pending:
            if self.dedupe_duplicates and len(groups) < len(pending):
                # Dispatch one representative per distinct genome; the
                # duplicates inherit its fitness.  Exact only for
                # deterministic evaluators (see module docstring).
                reps = [pending[g[0]] for g in groups]
                fits = self._dispatch(reps)
                for group, fit in zip(groups, fits):
                    for i in group:
                        pending[i].fitness = fit
            else:
                fits = self._dispatch(pending)
                for ind, fit in zip(pending, fits):
                    ind.fitness = fit
        fitnesses = np.array([ind.fitness for ind in self.population], dtype=float)
        best = self.best
        stats = GenerationStats(
            generation=self._generation,
            best_fitness=float(best.fitness),  # type: ignore[arg-type]
            mean_fitness=float(fitnesses.mean()),
            best=best,
            evaluations=len(pending),
            distinct_genomes=len(groups),
        )
        self.history.append(stats)
        return stats

    def _dispatch(self, individuals: list[Individual]) -> list[float]:
        """Evaluate a list of individuals, through ``evaluate_batch``
        when the toolbox registers one, else one ``evaluate`` call each
        (population order either way)."""
        if "evaluate_batch" in self.toolbox:
            fits = [float(f) for f in self.toolbox.evaluate_batch(individuals)]
            if len(fits) != len(individuals):
                raise ValueError(
                    f"evaluate_batch returned {len(fits)} fitnesses "
                    f"for {len(individuals)} individuals"
                )
            return fits
        return [float(self.toolbox.evaluate(ind)) for ind in individuals]
