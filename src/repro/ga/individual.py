"""Individuals: integer genomes with lazily assigned fitness.

The GA operates on index genomes (one integer per parameter, indexing
into that parameter's candidate values) so it needs no knowledge of the
I/O stack; the tuner's evaluation function decodes genomes into
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Individual"]


@dataclass
class Individual:
    """One candidate solution.

    ``fitness`` is ``None`` until evaluated; higher is better.  Genomes
    are copied defensively on construction so operators can mutate their
    own offspring freely.
    """

    genome: np.ndarray
    fitness: float | None = None

    def __post_init__(self) -> None:
        genome = np.asarray(self.genome, dtype=np.int64).copy()
        if genome.ndim != 1 or genome.size == 0:
            raise ValueError("genome must be a non-empty 1-D integer vector")
        if np.any(genome < 0):
            raise ValueError("genome indices must be >= 0")
        self.genome = genome

    @property
    def evaluated(self) -> bool:
        return self.fitness is not None

    def clone(self) -> "Individual":
        """An unevaluated copy (operators invalidate fitness)."""
        return Individual(self.genome.copy())

    def same_genome(self, other: "Individual") -> bool:
        return bool(np.array_equal(self.genome, other.genome))

    def __repr__(self) -> str:
        fit = f"{self.fitness:.3f}" if self.fitness is not None else "unevaluated"
        return f"Individual({self.genome.tolist()}, fitness={fit})"
