"""Variation operators: crossover and mutation over integer genomes.

All operators take and return :class:`~repro.ga.individual.Individual`
objects and never modify their inputs.  Each accepts an optional ``mask``
-- a boolean vector marking the genome positions that may vary.  The
mask is how Impact-First tuning confines the search to the RL-selected
parameter subset: unmasked genes are copied from the incumbent and left
untouched by crossover and mutation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .individual import Individual

if TYPE_CHECKING:  # layering: ga never imports iostack at runtime
    from repro.iostack.parameters import ConstraintContext, ConstraintRegistry

__all__ = [
    "uniform_crossover",
    "one_point_crossover",
    "indexed_mutation",
    "uniform_reset_mutation",
    "apply_mask",
    "repair_individual",
]

#: A neighbour function: (gene position, current index, rng) -> new index.
NeighborFn = Callable[[int, int, np.random.Generator], int]


def _validate_pair(a: Individual, b: Individual) -> None:
    if a.genome.size != b.genome.size:
        raise ValueError("parents have different genome lengths")


def _as_mask(mask: Sequence[bool] | np.ndarray | None, size: int) -> np.ndarray:
    if mask is None:
        return np.ones(size, dtype=bool)
    arr = np.asarray(mask, dtype=bool)
    if arr.shape != (size,):
        raise ValueError(f"mask shape {arr.shape} does not match genome size {size}")
    return arr


def uniform_crossover(
    a: Individual,
    b: Individual,
    rng: np.random.Generator,
    swap_probability: float = 0.5,
    mask: Sequence[bool] | np.ndarray | None = None,
) -> tuple[Individual, Individual]:
    """Exchange each masked gene between the parents with probability
    ``swap_probability``; unmasked genes are inherited unchanged."""
    _validate_pair(a, b)
    if not 0.0 <= swap_probability <= 1.0:
        raise ValueError("swap_probability must be in [0, 1]")
    m = _as_mask(mask, a.genome.size)
    swap = (rng.random(a.genome.size) < swap_probability) & m
    ga, gb = a.genome.copy(), b.genome.copy()
    ga[swap], gb[swap] = gb[swap], ga[swap]
    return Individual(ga), Individual(gb)


def one_point_crossover(
    a: Individual,
    b: Individual,
    rng: np.random.Generator,
    mask: Sequence[bool] | np.ndarray | None = None,
) -> tuple[Individual, Individual]:
    """Classic single cut point, restricted to masked positions."""
    _validate_pair(a, b)
    m = _as_mask(mask, a.genome.size)
    point = int(rng.integers(1, a.genome.size)) if a.genome.size > 1 else 0
    swap = np.zeros(a.genome.size, dtype=bool)
    swap[point:] = True
    swap &= m
    ga, gb = a.genome.copy(), b.genome.copy()
    ga[swap], gb[swap] = gb[swap], ga[swap]
    return Individual(ga), Individual(gb)


def indexed_mutation(
    ind: Individual,
    rng: np.random.Generator,
    neighbor: NeighborFn,
    per_gene_probability: float = 0.2,
    mask: Sequence[bool] | np.ndarray | None = None,
) -> Individual:
    """Mutate each masked gene with the given probability via a
    parameter-aware neighbour function (ordinal parameters drift to
    adjacent candidate values; categorical ones re-draw)."""
    if not 0.0 <= per_gene_probability <= 1.0:
        raise ValueError("per_gene_probability must be in [0, 1]")
    m = _as_mask(mask, ind.genome.size)
    genome = ind.genome.copy()
    hits = (rng.random(genome.size) < per_gene_probability) & m
    for pos in np.flatnonzero(hits):
        genome[pos] = neighbor(int(pos), int(genome[pos]), rng)
    return Individual(genome)


def uniform_reset_mutation(
    ind: Individual,
    rng: np.random.Generator,
    cardinalities: Sequence[int],
    per_gene_probability: float = 0.1,
    mask: Sequence[bool] | np.ndarray | None = None,
) -> Individual:
    """Re-draw each masked gene uniformly from its candidate range with
    the given probability (pure exploration; no ordinal structure)."""
    cards = np.asarray(cardinalities, dtype=np.int64)
    if cards.shape != (ind.genome.size,):
        raise ValueError("cardinalities must match genome length")
    if np.any(cards < 1):
        raise ValueError("cardinalities must be >= 1")
    m = _as_mask(mask, ind.genome.size)
    genome = ind.genome.copy()
    hits = (rng.random(genome.size) < per_gene_probability) & m
    for pos in np.flatnonzero(hits):
        genome[pos] = int(rng.integers(cards[pos]))
    return Individual(genome)


def apply_mask(
    offspring: Individual, incumbent: Individual, mask: Sequence[bool] | np.ndarray
) -> Individual:
    """Force unmasked genes of ``offspring`` back to the incumbent's
    values.  Used when entering a new subset-tuning iteration: genes
    outside the active subset are pinned to the best configuration found
    so far."""
    m = _as_mask(mask, offspring.genome.size)
    genome = np.where(m, offspring.genome, incumbent.genome)
    return Individual(genome)


def repair_individual(
    ind: Individual,
    registry: "ConstraintRegistry",
    context: "ConstraintContext | None" = None,
) -> Individual:
    """Project an individual onto the constraint-satisfying region.

    Delegates to the registry's deterministic, idempotent genome repair
    (every offending parameter is lowered to the largest candidate that
    satisfies its constraints).  Constraint-clean individuals are
    returned unchanged -- same object, fitness preserved -- so the hook
    is free when variation happens to produce a valid child.

    Consumes no randomness: registering this in a toolbox leaves the GA's
    RNG stream untouched, which is what keeps constraint-free runs
    bit-identical to runs where the registry never fires.
    """
    repaired = registry.repair_genome(ind.genome, context)
    if np.array_equal(repaired, ind.genome):
        return ind
    return Individual(repaired)
