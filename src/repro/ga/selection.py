"""Selection schemes: tournament selection and elitism.

The paper's pipeline "employs elitism ... to ensure the best solution
found so far is always carried through", counter-balanced by "tournament
selection, a technique where three individuals are chosen randomly from
the population ... and the best two are carried forward as parents".
Both are implemented exactly in that form, plus a generic k-way
tournament for library users.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .individual import Individual

__all__ = ["tournament_pair", "tournament_selection", "elites"]


def _require_evaluated(population: Sequence[Individual]) -> None:
    for ind in population:
        if not ind.evaluated:
            raise ValueError("selection requires a fully evaluated population")


def tournament_pair(
    population: Sequence[Individual], rng: np.random.Generator
) -> tuple[Individual, Individual]:
    """The paper's parent-selection rule: draw three distinct individuals
    at random, return the best two as parents."""
    if len(population) < 3:
        raise ValueError("tournament_pair needs a population of at least 3")
    _require_evaluated(population)
    picks = rng.choice(len(population), size=3, replace=False)
    chosen = sorted(
        (population[int(i)] for i in picks),
        key=lambda ind: ind.fitness,  # type: ignore[arg-type, return-value]
        reverse=True,
    )
    return chosen[0], chosen[1]


def tournament_selection(
    population: Sequence[Individual],
    n: int,
    rng: np.random.Generator,
    tournament_size: int = 3,
) -> list[Individual]:
    """Generic k-way tournament: repeat ``n`` times: sample
    ``tournament_size`` individuals, keep the best."""
    if tournament_size < 1:
        raise ValueError("tournament_size must be >= 1")
    if not population:
        raise ValueError("population is empty")
    _require_evaluated(population)
    k = min(tournament_size, len(population))
    out: list[Individual] = []
    for _ in range(n):
        picks = rng.choice(len(population), size=k, replace=False)
        best = max(
            (population[int(i)] for i in picks),
            key=lambda ind: ind.fitness,  # type: ignore[arg-type, return-value]
        )
        out.append(best)
    return out


def elites(population: Sequence[Individual], n: int) -> list[Individual]:
    """The ``n`` best individuals (ties broken by population order)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    _require_evaluated(population)
    ranked = sorted(
        population,
        key=lambda ind: ind.fitness,  # type: ignore[arg-type, return-value]
        reverse=True,
    )
    return list(ranked[:n])
