"""A DEAP-style toolbox: a registry of partially applied operators.

The paper builds its pipeline on DEAP, whose central idiom is
``toolbox.register("mutate", mutFlipBit, indpb=0.05)`` followed by
``toolbox.mutate(ind)``.  :class:`Toolbox` reproduces that surface so the
tuning pipeline reads like the original, and so users can swap operators
without touching the engine.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

__all__ = ["Toolbox"]


class Toolbox:
    """Named registry of callables with baked-in default arguments.

    Beyond the five required entries the engine recognises two optional
    ones:

    * ``evaluate_batch(individuals) -> sequence[float]``: when
      registered, each generation's unevaluated individuals are
      dispatched as a single call (in population order) instead of one
      ``evaluate`` call each, letting the evaluator share work across
      the generation (trace reuse, deduplication, worker pools).  It
      must return one fitness per input individual, aligned with the
      input order.
    * ``repair(individual) -> Individual``: a deterministic projection
      applied to every individual the engine breeds (initial population
      and post-variation offspring), so crossover/mutation can never
      emit an invalid genome.  Must be idempotent, consume no
      randomness, and return the input object unchanged when it is
      already valid.
    """

    _REQUIRED = ("generate", "evaluate", "mate", "mutate", "select")
    #: Optional entries the engine consults when present.
    OPTIONAL = ("evaluate_batch", "repair")

    def __init__(self) -> None:
        self._registry: dict[str, Callable[..., Any]] = {}

    def register(self, name: str, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Register ``fn`` under ``name`` with ``args``/``kwargs``
        pre-applied (``functools.partial`` semantics)."""
        if not callable(fn):
            raise TypeError(f"{name!r} must be registered with a callable")
        if name.startswith("_") or name in ("register", "unregister", "validate"):
            raise ValueError(f"illegal toolbox entry name {name!r}")
        partial = functools.partial(fn, *args, **kwargs) if (args or kwargs) else fn
        self._registry[name] = partial

    def unregister(self, name: str) -> None:
        try:
            del self._registry[name]
        except KeyError:
            raise KeyError(f"no toolbox entry named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._registry

    def __getattr__(self, name: str) -> Callable[..., Any]:
        try:
            return self._registry[name]
        except KeyError:
            raise AttributeError(f"no toolbox entry named {name!r}") from None

    def validate(self) -> None:
        """Check that the operators the engine calls are all present."""
        missing = [n for n in self._REQUIRED if n not in self._registry]
        if missing:
            raise ValueError(f"toolbox is missing required entries: {missing}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Toolbox({sorted(self._registry)})"
