"""Simulated HPC I/O stack: parameters, configurations, layer models,
platform descriptions and the run simulator.

This package is the reproduction's substitute for the paper's physical
testbed (Cori + Lustre + HDF5/MPI-IO).  See DESIGN.md section 2 for the
substitution rationale.
"""

from .clock import SimulatedClock
from .cluster import Platform, cori, testbed
from .config import StackConfiguration, from_xml, to_xml
from .darshan import DarshanReport, PhaseRecord
from .evalcache import (
    CacheStats,
    EvaluationCache,
    EvaluationStats,
    workload_fingerprint,
)
from .faults import (
    AGENT_FAULT_MODES,
    DegradedWindow,
    EvaluationError,
    EvaluationTimeout,
    FaultPlan,
    PoisonedConfigError,
    TransientFaultError,
    config_digest,
)
from .noise import NoiseModel
from .parameters import (
    LIBRARY_CATALOG,
    TUNED_SPACE,
    ConstraintContext,
    ConstraintRegistry,
    ConstraintViolation,
    ConstraintViolationError,
    DivisibilityConstraint,
    LibraryCatalog,
    Parameter,
    ParameterSpace,
    UpperBoundConstraint,
    default_constraints,
    stack_permutations,
)
from .phase import IOPhase
from .requests import MAX_SAMPLE, MetadataStream, RequestStream
from .simulator import (
    EvaluationResult,
    IOStackSimulator,
    PhaseTrace,
    StackTrace,
    StreamTrace,
    WorkloadLike,
)

__all__ = [
    "SimulatedClock",
    "Platform",
    "cori",
    "testbed",
    "StackConfiguration",
    "from_xml",
    "to_xml",
    "DarshanReport",
    "PhaseRecord",
    "NoiseModel",
    "LIBRARY_CATALOG",
    "TUNED_SPACE",
    "LibraryCatalog",
    "Parameter",
    "ParameterSpace",
    "stack_permutations",
    "ConstraintContext",
    "ConstraintRegistry",
    "ConstraintViolation",
    "ConstraintViolationError",
    "UpperBoundConstraint",
    "DivisibilityConstraint",
    "default_constraints",
    "IOPhase",
    "MAX_SAMPLE",
    "MetadataStream",
    "RequestStream",
    "EvaluationResult",
    "IOStackSimulator",
    "StackTrace",
    "PhaseTrace",
    "StreamTrace",
    "WorkloadLike",
    "CacheStats",
    "EvaluationCache",
    "EvaluationStats",
    "workload_fingerprint",
    "AGENT_FAULT_MODES",
    "DegradedWindow",
    "EvaluationError",
    "EvaluationTimeout",
    "FaultPlan",
    "PoisonedConfigError",
    "TransientFaultError",
    "config_digest",
]
