"""Simulated wall-clock used to account tuning overhead.

The paper reports tuning cost in *minutes of tuning overhead*: the time
spent running the application (or its I/O kernel) at each configuration
evaluation, plus fixed per-evaluation setup cost (job launch, configuration
injection).  Nothing in the reproduction uses real time; every evaluation
advances a :class:`SimulatedClock` by the simulated runtime of the run.

The clock also supports *charging policies* that mirror the paper's
methodology: each application run is performed ``runs_per_eval`` times and
bandwidths averaged, but "the time cost of running the application is not
accumulated across runs" -- i.e. only one run's duration is charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .units import seconds_to_minutes


@dataclass
class SimulatedClock:
    """Accumulates simulated seconds.

    Parameters
    ----------
    setup_overhead:
        Fixed cost in seconds charged per evaluation (job launch, config
        injection, monitor attach).  Defaults to 30 s, a typical batch
        job-step launch latency.
    """

    setup_overhead: float = 30.0
    _elapsed: float = field(default=0.0, repr=False)
    _n_evaluations: int = field(default=0, repr=False)

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated seconds accumulated so far."""
        return self._elapsed

    @property
    def elapsed_minutes(self) -> float:
        """Total simulated minutes accumulated so far."""
        return seconds_to_minutes(self._elapsed)

    @property
    def n_evaluations(self) -> int:
        """Number of charged evaluations."""
        return self._n_evaluations

    def advance(self, seconds: float) -> None:
        """Advance the clock by a raw duration (no setup overhead)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} s")
        self._elapsed += seconds

    def charge_evaluation(self, run_seconds: float) -> None:
        """Charge one configuration evaluation: setup overhead plus one
        run's duration (repeat runs are averaged for bandwidth but not
        charged, per the paper's methodology)."""
        if run_seconds < 0:
            raise ValueError(f"negative run duration {run_seconds!r}")
        self._elapsed += self.setup_overhead + run_seconds
        self._n_evaluations += 1

    def checkpoint(self) -> float:
        """Return the current elapsed seconds; useful to compute deltas."""
        return self._elapsed

    def reset(self) -> None:
        """Zero the clock (new tuning session)."""
        self._elapsed = 0.0
        self._n_evaluations = 0

    def restore(self, elapsed_seconds: float, n_evaluations: int) -> None:
        """Set the clock to a journaled state (resume).  ``elapsed_seconds``
        is restored bit-exactly (JSON round-trips Python floats), so a
        resumed run's time accounting matches the uninterrupted one."""
        if elapsed_seconds < 0 or n_evaluations < 0:
            raise ValueError("clock state must be non-negative")
        self._elapsed = elapsed_seconds
        self._n_evaluations = n_evaluations
