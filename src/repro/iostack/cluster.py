"""Cluster (platform) description for the I/O stack simulator.

:class:`Platform` captures the hardware quantities the layer models need:
node count, NIC injection bandwidth, Lustre OST/MDS characteristics, and
the memory tier used by I/O path switching.  :func:`cori` builds the
default platform modelled on NERSC Cori's Haswell partition and its
scratch Lustre file system (~700 GB/s aggregate over 248 OSTs), the
machine the paper evaluated on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .units import GB, MB, US, MS

__all__ = ["Platform", "cori", "testbed"]


@dataclass(frozen=True)
class Platform:
    """Hardware model consumed by the layer models.

    All bandwidths are bytes/second, all latencies seconds.
    """

    name: str
    n_nodes: int
    procs_per_node: int
    #: NIC injection bandwidth per node (network shuffle phases).
    nic_bandwidth: float
    #: One-way small-message network latency.
    network_latency: float
    #: Per-node ceiling on Lustre client traffic (LNET + client cache).
    client_lustre_bandwidth: float
    #: Number of object storage targets in the file system.
    n_osts: int
    #: Peak streaming bandwidth of a single OST.
    ost_bandwidth: float
    #: Fraction of OST bandwidth available to this job (shared system).
    ost_utilization: float
    #: Round-trip latency of one Lustre bulk RPC.
    rpc_latency: float
    #: Concurrent RPCs a single client keeps in flight per OST.
    max_rpcs_in_flight: int
    #: Latency of one metadata operation at the MDS.
    mds_latency: float
    #: Aggregate MDS operation throughput (ops/s).
    mds_throughput: float
    #: Per-node memory bandwidth for the /dev/shm tier.
    memory_bandwidth: float
    #: Per-syscall client CPU overhead.
    syscall_overhead: float
    #: Scales shared-file lock-contention penalties (dimensionless).
    lock_contention_coeff: float
    #: Scales shared-file read seek/readahead contention (dimensionless).
    read_contention_coeff: float
    #: Exponent for client-side bandwidth scaling with node count;
    #: sublinear (<1) captures LNET-router sharing at large allocations.
    client_scaling_exponent: float = 0.85

    def __post_init__(self) -> None:
        positive = (
            "n_nodes", "procs_per_node", "nic_bandwidth", "client_lustre_bandwidth",
            "n_osts", "ost_bandwidth", "rpc_latency", "max_rpcs_in_flight",
            "mds_latency", "mds_throughput", "memory_bandwidth",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.ost_utilization <= 1.0:
            raise ValueError("ost_utilization must be in (0, 1]")
        if self.network_latency < 0 or self.syscall_overhead < 0:
            raise ValueError("latencies must be >= 0")
        if self.lock_contention_coeff < 0 or self.read_contention_coeff < 0:
            raise ValueError("contention coefficients must be >= 0")

    @property
    def total_procs(self) -> int:
        return self.n_nodes * self.procs_per_node

    @property
    def aggregate_ost_bandwidth(self) -> float:
        """Peak file-system bandwidth visible to this job."""
        return self.n_osts * self.ost_bandwidth * self.ost_utilization

    def scaled_to(self, n_nodes: int) -> "Platform":
        """The same machine with a different allocation size (the paper's
        component tests use 4 nodes; the end-to-end test uses 500)."""
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        return replace(self, n_nodes=n_nodes)


def cori(n_nodes: int = 4) -> Platform:
    """NERSC Cori Haswell + scratch Lustre, the paper's testbed.

    Numbers are public figures for Cori: Haswell nodes with a Cray Aries
    interconnect (~8 GB/s injection), the cscratch1 Lustre file system
    with 248 OSTs and ~700 GB/s aggregate peak.  Per-client Lustre write
    traffic saturates well below the NIC in practice (~0.7 GB/s/node),
    which is what bounds small-allocation tuned bandwidth.
    """
    return Platform(
        name=f"cori-haswell-{n_nodes}n",
        n_nodes=n_nodes,
        procs_per_node=32,
        nic_bandwidth=8 * GB,
        network_latency=2 * US,
        client_lustre_bandwidth=0.7 * GB,
        n_osts=248,
        ost_bandwidth=2.8 * GB,
        ost_utilization=0.7,
        rpc_latency=0.4 * MS,
        max_rpcs_in_flight=8,
        mds_latency=0.5 * MS,
        mds_throughput=30_000.0,
        memory_bandwidth=50 * GB,
        syscall_overhead=4 * US,
        lock_contention_coeff=0.10,
        read_contention_coeff=0.12,
    )


def testbed(n_nodes: int = 2) -> Platform:
    """A small, fast-to-simulate platform for unit tests: few OSTs, low
    proc counts, exaggerated latencies so parameter effects are easy to
    assert on."""
    return Platform(
        name=f"testbed-{n_nodes}n",
        n_nodes=n_nodes,
        procs_per_node=4,
        nic_bandwidth=2 * GB,
        network_latency=10 * US,
        client_lustre_bandwidth=800 * MB,
        n_osts=16,
        ost_bandwidth=1 * GB,
        ost_utilization=0.8,
        rpc_latency=1 * MS,
        max_rpcs_in_flight=4,
        mds_latency=1 * MS,
        mds_throughput=5_000.0,
        memory_bandwidth=20 * GB,
        syscall_overhead=5 * US,
        lock_contention_coeff=0.5,
        read_contention_coeff=0.3,
    )
