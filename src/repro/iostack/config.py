"""Stack configurations and the H5Tuner-style override mechanism.

The paper's reference implementation injects candidate configurations into
HDF5 applications through H5Tuner, which intercepts ``H5Fcreate``/
``H5Fopen`` and applies parameter overrides read from an XML file -- no
recompilation.  :class:`StackConfiguration` is the in-memory form;
:func:`to_xml` / :func:`from_xml` round-trip the H5Tuner file format so a
configuration can be handed to an external runner.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Iterator, Mapping

import numpy as np

from .parameters import (
    TUNED_SPACE,
    ConstraintContext,
    ConstraintRegistry,
    ConstraintViolation,
    ParameterSpace,
)

__all__ = ["StackConfiguration", "to_xml", "from_xml"]

# XML section element per stack layer, mirroring H5Tuner's config format.
_LAYER_SECTIONS = {"hdf5": "HDF5", "mpiio": "MPI-IO", "lustre": "Lustre"}
_SECTION_LAYERS = {v: k for k, v in _LAYER_SECTIONS.items()}


class StackConfiguration(Mapping[str, Any]):
    """An immutable assignment of values to every parameter of a space.

    Behaves as a read-only mapping from parameter name to value.  Equality
    and hashing consider both the space and the values, so configurations
    can be used as dict keys (e.g. for evaluation caching).
    """

    __slots__ = ("_space", "_values", "_hash")

    def __init__(self, space: ParameterSpace, values: Mapping[str, Any]):
        unknown = set(values) - set(space.names)
        if unknown:
            raise KeyError(f"values for unknown parameters: {sorted(unknown)}")
        merged = space.default_values()
        merged.update(values)
        # Validate through encode (raises on non-candidate values).
        space.encode(merged)
        self._space = space
        self._values = merged
        self._hash: int | None = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def default(cls, space: ParameterSpace = TUNED_SPACE) -> "StackConfiguration":
        """The untuned configuration (all library defaults)."""
        return cls(space, {})

    @classmethod
    def random(
        cls, rng: np.random.Generator, space: ParameterSpace = TUNED_SPACE
    ) -> "StackConfiguration":
        """A uniformly random configuration."""
        return cls(space, space.random_values(rng))

    @classmethod
    def from_genome(
        cls, space: ParameterSpace, indices: np.ndarray | list[int]
    ) -> "StackConfiguration":
        """Build from an index vector in genome order."""
        return cls(space, space.decode(indices))

    # -- mapping protocol ------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._space.names)

    def __len__(self) -> int:
        return len(self._space)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackConfiguration):
            return NotImplemented
        return self._space == other._space and self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._space.names, tuple(self._values[n] for n in self._space.names))
            )
        return self._hash

    def __repr__(self) -> str:
        non_default = {
            n: v for n, v in self._values.items() if v != self._space[n].default
        }
        return f"StackConfiguration({non_default or 'defaults'})"

    # -- accessors ----------------------------------------------------------------

    @property
    def space(self) -> ParameterSpace:
        return self._space

    def genome(self) -> np.ndarray:
        """Index-vector encoding in genome order."""
        return self._space.encode(self._values)

    def normalized(self) -> np.ndarray:
        """Values mapped to [0,1]^n; NN feature representation."""
        return self._space.normalized(self.genome())

    def layer(self, layer: str) -> dict[str, Any]:
        """All values consumed by one stack layer."""
        return {
            p.name: self._values[p.name] for p in self._space if p.layer == layer
        }

    def changed_parameters(self) -> dict[str, Any]:
        """Parameters whose value differs from the library default (the
        paper reports e.g. 'seven parameters changed from defaults')."""
        return {
            n: v for n, v in self._values.items() if v != self._space[n].default
        }

    def hamming_distance(self, other: "StackConfiguration") -> int:
        """Number of parameters at which two configurations differ."""
        if self._space != other._space:
            raise ValueError("configurations from different spaces")
        return int(sum(self._values[n] != other._values[n] for n in self._space.names))

    # -- functional updates ----------------------------------------------------------

    def with_values(self, **updates: Any) -> "StackConfiguration":
        """A new configuration with some parameters replaced."""
        merged = dict(self._values)
        merged.update(updates)
        return StackConfiguration(self._space, merged)

    # -- cross-parameter constraints ----------------------------------------------

    def violations(
        self,
        registry: "ConstraintRegistry",
        context: "ConstraintContext | None" = None,
    ) -> list["ConstraintViolation"]:
        """Constraints of ``registry`` this configuration violates."""
        return registry.violations(self._values, context)

    def validate(
        self,
        registry: "ConstraintRegistry",
        context: "ConstraintContext | None" = None,
    ) -> None:
        """Raise :class:`~repro.iostack.parameters.ConstraintViolationError`
        if any constraint of ``registry`` fails; actionable per-violation
        messages include the repaired value."""
        registry.validate(self._values, context)

    def repaired(
        self,
        registry: "ConstraintRegistry",
        context: "ConstraintContext | None" = None,
    ) -> "StackConfiguration":
        """A constraint-clean copy (``self`` when already clean, so the
        happy path allocates nothing new)."""
        fixed = registry.repair(self._values, context)
        if fixed == self._values:
            return self
        return StackConfiguration(self._space, fixed)


def to_xml(config: StackConfiguration) -> str:
    """Serialise to the H5Tuner-style XML override file.

    Layout::

        <Parameters>
          <HDF5>
            <sieve_buf_size>1048576</sieve_buf_size>
            ...
          </HDF5>
          <MPI-IO>...</MPI-IO>
          <Lustre>...</Lustre>
        </Parameters>
    """
    root = ET.Element("Parameters")
    for layer, section in _LAYER_SECTIONS.items():
        values = config.layer(layer)
        if not values:
            continue
        elem = ET.SubElement(root, section)
        for name, value in values.items():
            child = ET.SubElement(elem, name)
            child.text = _render(value)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def from_xml(text: str, space: ParameterSpace = TUNED_SPACE) -> StackConfiguration:
    """Parse an H5Tuner-style XML override file produced by :func:`to_xml`.

    Unlisted parameters take their defaults, matching H5Tuner semantics
    (the interceptor only overrides what the file mentions).
    """
    root = ET.fromstring(text)
    if root.tag != "Parameters":
        raise ValueError(f"expected <Parameters> root, got <{root.tag}>")
    values: dict[str, Any] = {}
    for section in root:
        if section.tag not in _SECTION_LAYERS:
            raise ValueError(f"unknown section <{section.tag}>")
        for child in section:
            if child.tag not in space:
                raise KeyError(f"unknown parameter {child.tag!r}")
            values[child.tag] = _parse(child.text or "", space[child.tag].values)
    return StackConfiguration(space, values)


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse(text: str, candidates: tuple[Any, ...]) -> Any:
    text = text.strip()
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    # Categorical string: must match a candidate exactly.
    if text in candidates:
        return text
    raise ValueError(f"cannot parse parameter value {text!r}")
