"""Darshan-style I/O characterisation counters.

The paper's fitness function monitors bandwidth "using monitoring hooks
such as Darshan".  :class:`DarshanReport` is the simulator's equivalent: a
per-run record of byte and operation counters at the application level
(what the program asked for) and the POSIX level (what reached storage
after the stack transformed it), plus timing.  The Figure 8(c)
kernel-similarity experiment compares these counters between the original
application and its generated I/O kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .units import bytes_per_sec_to_mb_per_sec

__all__ = ["DarshanReport", "PhaseRecord"]


@dataclass(frozen=True)
class PhaseRecord:
    """Per-phase slice of a report."""

    name: str
    bytes_written: int
    bytes_read: int
    write_ops: int
    read_ops: int
    io_seconds: float
    meta_seconds: float
    compute_seconds: float


@dataclass
class DarshanReport:
    """Counters for one application run.

    ``app_*`` counters reflect the application's requests; ``posix_*``
    counters reflect the transformed traffic that reached the storage
    tier (post sieving/collective buffering/alignment padding).
    """

    app_bytes_written: int = 0
    app_bytes_read: int = 0
    app_write_ops: int = 0
    app_read_ops: int = 0
    posix_bytes_written: int = 0
    posix_bytes_read: int = 0
    posix_write_ops: int = 0
    posix_read_ops: int = 0
    meta_ops: int = 0
    write_seconds: float = 0.0
    read_seconds: float = 0.0
    meta_seconds: float = 0.0
    compute_seconds: float = 0.0
    overhead_seconds: float = 0.0
    phases: list[PhaseRecord] = field(default_factory=list)

    # -- derived metrics -------------------------------------------------------

    @property
    def io_seconds(self) -> float:
        return self.write_seconds + self.read_seconds

    @property
    def runtime_seconds(self) -> float:
        """End-to-end simulated runtime of the run."""
        return (
            self.compute_seconds
            + self.io_seconds
            + self.meta_seconds
            + self.overhead_seconds
        )

    @property
    def write_bandwidth(self) -> float:
        """Application-level write bandwidth in bytes/s (0 if no writes)."""
        if self.app_bytes_written == 0 or self.write_seconds <= 0:
            return 0.0
        return self.app_bytes_written / self.write_seconds

    @property
    def read_bandwidth(self) -> float:
        """Application-level read bandwidth in bytes/s (0 if no reads)."""
        if self.app_bytes_read == 0 or self.read_seconds <= 0:
            return 0.0
        return self.app_bytes_read / self.read_seconds

    @property
    def write_bandwidth_mbps(self) -> float:
        return bytes_per_sec_to_mb_per_sec(self.write_bandwidth)

    @property
    def read_bandwidth_mbps(self) -> float:
        return bytes_per_sec_to_mb_per_sec(self.read_bandwidth)

    @property
    def alpha(self) -> float:
        """Fraction of transferred bytes that are writes -- the weight in
        the paper's ``perf`` objective."""
        total = self.app_bytes_written + self.app_bytes_read
        if total == 0:
            return 0.0
        return self.app_bytes_written / total

    def record_phase(self, record: PhaseRecord) -> None:
        self.phases.append(record)

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline counters; convenient for tabulation
        and for the Fig 8(c) similarity comparison."""
        return {
            "app_bytes_written": float(self.app_bytes_written),
            "app_bytes_read": float(self.app_bytes_read),
            "app_write_ops": float(self.app_write_ops),
            "app_read_ops": float(self.app_read_ops),
            "posix_bytes_written": float(self.posix_bytes_written),
            "posix_bytes_read": float(self.posix_bytes_read),
            "posix_write_ops": float(self.posix_write_ops),
            "posix_read_ops": float(self.posix_read_ops),
            "meta_ops": float(self.meta_ops),
            "runtime_seconds": self.runtime_seconds,
            "write_bandwidth_mbps": self.write_bandwidth_mbps,
            "read_bandwidth_mbps": self.read_bandwidth_mbps,
        }
