"""Persistent on-disk backend for the evaluation cache.

:class:`~repro.iostack.evalcache.EvaluationCache` memoizes noise-free
stack traces in memory, which makes *one* tuning run fast but leaves
every new process cold: a second figure run, a resumed sweep, or a fleet
of parallel experiment workers all re-traverse the same stack for the
same configurations.  :class:`DiskCacheBackend` persists the traces as
content-addressed ``.npz`` entries under a cache directory, so repeat
runs -- and concurrent workers sharing one ``--cache-dir`` -- start
warm.

Design
------
* **Content-addressed keys.**  An entry's filename is a SHA-256 digest
  over everything that determines the trace *and* the conditions under
  which serving it is safe: the schema version, the platform, the
  workload fingerprint, the configuration (space names and values), the
  active :meth:`~repro.iostack.faults.FaultPlan.fingerprint` and the
  active
  :meth:`~repro.iostack.parameters.ConstraintRegistry.fingerprint`.
  Serving a cached trace skips the fault plan's per-attempt decision
  draw, so an entry written under one plan must never satisfy a lookup
  under a different one -- the plan fingerprint in the key guarantees
  that structurally instead of by caller discipline.
* **Atomic writes.**  Entries are written to a process-unique temp file
  in the cache directory and published with :func:`os.replace`, so a
  reader never observes a torn entry and concurrent writers of the same
  key simply last-write-win with identical bytes (traces are
  deterministic functions of the key).
* **Bit-identity.**  A trace round-trips through ``.npz`` exactly
  (int64/float64/str arrays), and replaying a loaded trace is
  bit-identical to replaying the freshly built one -- the in-memory
  cache's contract extends to disk unchanged.
* **LRU bound.**  ``max_entries`` caps the directory; reads refresh the
  entry mtime and stores evict the stalest files beyond the cap.
  Eviction races between workers are benign (missing files are skipped).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import itertools
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Hashable

import numpy as np

from .evalcache import workload_fingerprint
from .simulator import PhaseTrace, StackTrace, StreamTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Platform
    from .config import StackConfiguration
    from .simulator import WorkloadLike

__all__ = [
    "DISK_SCHEMA_VERSION",
    "DiskCacheStats",
    "DiskCacheBackend",
    "trace_to_arrays",
    "trace_from_arrays",
]

#: Bump when the entry layout or the key recipe changes; old entries
#: then simply never match and age out of the LRU.  v2 packed the nine
#: per-field arrays into three dense ones: zip-member overhead, not
#: bytes, dominates small-entry load times.
DISK_SCHEMA_VERSION = 2

_SUFFIX = ".npz"

#: Per-process counter making concurrent temp-file names unique even
#: within one process (thread-pooled stores).
_TMP_COUNTER = itertools.count()


@dataclass(frozen=True)
class DiskCacheStats:
    """Counters of one backend instance (per process, not per directory)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Unreadable/corrupt entries and failed writes -- all swallowed
    #: (the disk layer degrades to a miss, never breaks an evaluation).
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


# -- trace serialization -----------------------------------------------------------


def trace_to_arrays(trace: StackTrace) -> dict[str, np.ndarray]:
    """Flatten a :class:`StackTrace` into three fixed-dtype arrays.

    Phases and their variable-length stream tuples are flattened with an
    explicit per-phase stream count, packed into exactly one int64, one
    float64 and one unicode array (``np.savez`` without
    ``allow_pickle``).  Three members, not nine: per-member zip overhead
    dominates the load time of small entries, so fewer members is what
    makes a warm start cheap.

    Layout: ``ints`` = [schema, n_phases, n_streams, stream counts per
    phase, 5 counters per phase, 2 counters per stream]; ``floats`` =
    [3 per phase, base_seconds per stream]; ``names`` = [workload name,
    phase names, stream ops].
    """
    phases = trace.phases
    streams = [s for p in phases for s in p.streams]
    m, k = len(phases), len(streams)
    ints = np.empty(3 + m + 5 * m + 2 * k, dtype=np.int64)
    ints[0:3] = (DISK_SCHEMA_VERSION, m, k)
    ints[3 : 3 + m] = [len(p.streams) for p in phases]
    ints[3 + m : 3 + 6 * m] = [
        value
        for p in phases
        for value in (p.bytes_written, p.bytes_read, p.write_ops, p.read_ops, p.meta_ops)
    ]
    ints[3 + 6 * m :] = [
        value for s in streams for value in (s.total_bytes, s.total_ops)
    ]
    floats = np.empty(3 * m + k, dtype=np.float64)
    floats[: 3 * m] = [
        value
        for p in phases
        for value in (p.overhead_seconds, p.base_meta_seconds, p.compute_seconds)
    ]
    floats[3 * m :] = [s.base_seconds for s in streams]
    names = np.array(
        [trace.workload_name, *(p.name for p in phases), *(s.op for s in streams)],
        dtype=np.str_,
    )
    return {"ints": ints, "floats": floats, "names": names}


def trace_from_arrays(data: dict[str, np.ndarray]) -> StackTrace:
    """Inverse of :func:`trace_to_arrays`; exact round-trip."""
    try:
        ints, floats, names = data["ints"], data["floats"], data["names"]
    except KeyError as exc:
        raise ValueError(f"disk-cache entry missing member {exc}") from exc
    if ints.size < 3 or int(ints[0]) != DISK_SCHEMA_VERSION:
        found = int(ints[0]) if ints.size else "?"
        raise ValueError(
            f"disk-cache entry schema {found} != {DISK_SCHEMA_VERSION}"
        )
    # One C-level pass per array beats thousands of numpy-scalar
    # conversions on the hot warm-start path.
    iv: list[int] = ints.tolist()
    fv: list[float] = floats.tolist()
    nv: list[str] = names.tolist()
    m, k = iv[1], iv[2]
    counts = iv[3 : 3 + m]
    phase_ints = iv[3 + m : 3 + 6 * m]
    stream_ints = iv[3 + 6 * m :]
    phase_floats = fv[: 3 * m]
    stream_seconds = fv[3 * m :]
    phases = []
    offset = 0
    for i in range(m):
        lo, hi = offset, offset + counts[i]
        offset = hi
        streams = tuple(
            StreamTrace(
                op=nv[1 + m + j],
                base_seconds=stream_seconds[j],
                total_bytes=stream_ints[2 * j],
                total_ops=stream_ints[2 * j + 1],
            )
            for j in range(lo, hi)
        )
        pi = phase_ints[5 * i : 5 * i + 5]
        pf = phase_floats[3 * i : 3 * i + 3]
        phases.append(
            PhaseTrace(
                name=nv[1 + i],
                bytes_written=pi[0],
                bytes_read=pi[1],
                write_ops=pi[2],
                read_ops=pi[3],
                meta_ops=pi[4],
                overhead_seconds=pf[0],
                base_meta_seconds=pf[1],
                compute_seconds=pf[2],
                streams=streams,
            )
        )
    return StackTrace(workload_name=nv[0], phases=tuple(phases))


# -- content addressing ------------------------------------------------------------


@functools.lru_cache(maxsize=512)
def _context_digest(platform: "Platform", fingerprint: Hashable) -> bytes:
    """Digest of the stable (schema, platform, workload) key prefix.

    The workload fingerprint is a deep phase-structure tuple; ``repr``-ing
    and hashing it dominates the cost of a key, and every evaluation of
    one workload repeats it.  Memoizing the prefix digest (platform and
    fingerprint are both hashable) leaves only the per-call tail --
    config values and run fingerprints -- on the hot path.
    """
    head = (DISK_SCHEMA_VERSION, tuple(dataclasses.astuple(platform)), fingerprint)
    return hashlib.sha256(repr(head).encode("utf-8", "backslashreplace")).digest()


# -- the backend -------------------------------------------------------------------


class DiskCacheBackend:
    """Content-addressed, LRU-bounded trace store in one directory.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries (created on demand).  Safe to
        share between concurrent processes.
    max_entries:
        Soft cap on the number of entries; stores evict the
        least-recently-used files beyond it.
    """

    def __init__(self, cache_dir: str | Path, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.errors = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob(f"*{_SUFFIX}"))

    def stats(self) -> DiskCacheStats:
        return DiskCacheStats(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
            errors=self.errors,
        )

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def entry_key(
        platform: "Platform",
        workload: "WorkloadLike",
        config: "StackConfiguration",
        fault_fingerprint: str | None = None,
        constraint_fingerprint: str | None = None,
    ) -> str:
        """The content address of one trace.

        Keyed by schema version, platform, workload fingerprint,
        configuration (parameter names and values in space order), and
        the fault-plan / constraint-registry fingerprints of the run --
        ``None`` meaning "no plan" / "no registry", which is itself a
        distinct key component so plan-less entries never leak into
        fault-injected runs or vice versa.
        """
        tail = (
            tuple((name, repr(config[name])) for name in config.space.names),
            fault_fingerprint,
            constraint_fingerprint,
        )
        return hashlib.sha256(
            _context_digest(platform, workload_fingerprint(workload))
            + repr(tail).encode("utf-8", "backslashreplace")
        ).hexdigest()

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}{_SUFFIX}"

    # -- lookups ---------------------------------------------------------------

    def load(self, key: str) -> StackTrace | None:
        """The stored trace, or ``None``.  Counts a hit or a miss;
        unreadable entries are treated as misses (and counted as
        errors)."""
        path = self._path(key)
        try:
            with np.load(path) as archive:
                data = {name: archive[name] for name in archive.files}
            trace = trace_from_arrays(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # corrupt/torn/foreign file: degrade to a miss
            self.misses += 1
            self.errors += 1
            return None
        try:
            os.utime(path)  # LRU recency
        except OSError:
            pass
        self.hits += 1
        return trace

    def store(self, key: str, trace: StackTrace) -> None:
        """Persist a trace atomically; failures are swallowed (a broken
        disk cache degrades to cold starts, never to broken runs)."""
        path = self._path(key)
        tmp = self.cache_dir / f".{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        try:
            arrays = trace_to_arrays(trace)
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except Exception:
            self.errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self.stores += 1
        self._evict()

    def _evict(self) -> None:
        """Drop the least-recently-used entries beyond ``max_entries``.
        Races with concurrent workers are benign: already-deleted files
        are skipped."""
        try:
            entries = sorted(
                (
                    (p.stat().st_mtime, p)
                    for p in self.cache_dir.glob(f"*{_SUFFIX}")
                ),
                key=lambda pair: pair[0],
            )
        except OSError:
            return
        excess = len(entries) - self.max_entries
        for _, path in entries[:excess] if excess > 0 else []:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:
                pass

    def clear(self) -> None:
        """Remove every entry (counters are kept)."""
        for path in self.cache_dir.glob(f"*{_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass
