"""Config-keyed memoization of stack evaluations.

Tuning runs re-evaluate the same configuration constantly: the GA
re-draws duplicate genomes, elites are re-examined, sweeps revisit the
default, and every experiment starts from the untuned baseline.  The
stack traversal is deterministic given ``(platform, workload, config)``,
so :class:`EvaluationCache` memoizes the *noise-free trace* (see
:class:`~repro.iostack.simulator.StackTrace`) under an LRU policy and
replays cached traces with fresh noise.

Caching the trace rather than the finished
:class:`~repro.iostack.simulator.EvaluationResult` is what keeps cached
runs bit-identical to uncached ones: a hit still draws its own noise
factors (consuming the noise stream exactly like a cold evaluation) and
still reports its own noisy bandwidths, so tuning histories do not
depend on whether the cache is enabled.  Only the expensive layer-model
traversal is skipped.  The simulated clock is likewise still charged by
the caller on hits -- a cache hit saves *our* wall-clock, not the
simulated testbed's, so RoTI and time accounting are unchanged.

The key is ``(platform, workload fingerprint, configuration)``; the
configuration hashes its parameter space and values, so spaces and
genomes are distinguished.  Workload fingerprints digest the full phase
structure (streams, sizes samples, metadata, tier) and are memoized per
workload object.
"""

from __future__ import annotations

import dataclasses
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from .cluster import Platform
from .config import StackConfiguration
from .simulator import EvaluationResult, IOStackSimulator, StackTrace, WorkloadLike

__all__ = [
    "workload_fingerprint",
    "CacheStats",
    "EvaluationStats",
    "EvaluationCache",
]


# -- workload fingerprinting -------------------------------------------------------


def _freeze(obj: Any) -> Hashable:
    """Recursively convert phases/streams (dataclasses with ndarray
    fields) into a hashable tuple tree."""
    if isinstance(obj, np.ndarray):
        return (obj.dtype.str, obj.shape, obj.tobytes())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(_freeze(getattr(obj, f.name)) for f in dataclasses.fields(obj)),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(o) for o in obj)
    return obj


#: id(workload) -> (weakref to the workload, fingerprint).  The weakref
#: guards against id reuse after garbage collection.
_FINGERPRINTS: dict[int, tuple[weakref.ref, Hashable]] = {}


def workload_fingerprint(workload: WorkloadLike) -> Hashable:
    """A hashable digest of everything the simulator reads from a
    workload: name, job shape and the full phase structure.

    Memoized per live workload object (phases are immutable), so
    repeated evaluations of the same workload pay the structural walk
    once.
    """
    key = id(workload)
    cached = _FINGERPRINTS.get(key)
    if cached is not None and cached[0]() is workload:
        return cached[1]
    fingerprint = (
        workload.name,
        workload.n_procs,
        workload.n_nodes,
        _freeze(tuple(workload.phases())),
    )
    try:
        _FINGERPRINTS[key] = (weakref.ref(workload), fingerprint)
    except TypeError:  # object does not support weakrefs; skip memoization
        pass
    return fingerprint


# -- statistics --------------------------------------------------------------------


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0
    #: Persistent-backend counters (all zero without a backend).
    disk_hits: int = 0
    disk_misses: int = 0
    disk_stores: int = 0
    disk_evictions: int = 0
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class EvaluationStats:
    """Fastpath accounting for one tuning run, surfaced on
    :class:`~repro.tuners.base.TuningResult` and in the CLI report."""

    #: Configuration evaluations performed (baseline included).
    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Full stack traversals performed by the simulator.
    traces_built: int = 0
    #: Reports derived from a stored trace (``repeats`` per evaluation).
    trace_replays: int = 0
    #: Evaluation attempts repeated after a retryable failure.
    retries: int = 0
    #: Evaluations that exceeded the simulated per-evaluation timeout.
    timeouts: int = 0
    #: Configurations that exhausted their retries and were assigned the
    #: worst-case fitness instead of crashing the generation.
    quarantined: int = 0
    #: Thread-pool batches that fell back to serial trace building after
    #: a worker raised.
    fallbacks: int = 0
    #: Faults the plan injected (transient errors + stragglers).
    faults_injected: int = 0
    #: Agent guardrail trips recorded during the run (weight corruption,
    #: training divergence, degenerate policies); details live on
    #: :attr:`~repro.tuners.base.TuningResult.guardrail_trips`.
    guardrail_trips: int = 0
    #: Journal-resume cache warming, accounted separately from the run's
    #: own lookups so :attr:`cache_hit_rate` matches the uninterrupted
    #: run (warming the cache is bookkeeping, not tuning behaviour).
    prewarm_lookups: int = 0
    prewarm_hits: int = 0
    prewarm_builds: int = 0
    #: Persistent disk-cache activity (zero without a ``--cache-dir``
    #: backend).  A disk hit skipped a stack traversal that the
    #: in-memory cache alone would have re-run in a fresh process.
    disk_hits: int = 0
    disk_misses: int = 0
    disk_stores: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate of the run's own lookups; cache pre-warming on
        journal resume is excluded (see the ``prewarm_*`` fields)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def degraded(self) -> bool:
        """True when any resilience machinery engaged during the run."""
        return bool(
            self.retries
            or self.timeouts
            or self.quarantined
            or self.fallbacks
            or self.faults_injected
        )

    @property
    def trace_reuse(self) -> int:
        """Replays that reused an existing trace instead of traversing
        the stack -- the simulations the fastpath avoided."""
        return max(0, self.trace_replays - self.traces_built)

    def describe(self) -> str:
        """One-line human summary for reports."""
        line = (
            f"{self.evaluations} evaluations, "
            f"cache hit rate {100.0 * self.cache_hit_rate:.1f}% "
            f"({self.cache_hits}/{self.cache_hits + self.cache_misses}), "
            f"trace reuse {self.trace_reuse}"
        )
        disk_lookups = self.disk_hits + self.disk_misses
        if disk_lookups or self.disk_stores:
            line += (
                f", disk {self.disk_hits}/{disk_lookups} hits "
                f"({self.disk_stores} stored)"
            )
        return line

    def describe_resilience(self) -> str:
        """One-line summary of the run's failure handling."""
        return (
            f"{self.faults_injected} faults injected, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.quarantined} quarantined, {self.fallbacks} serial fallbacks"
        )

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (trace ``run_end`` events and the
        ``--metrics-out`` snapshot)."""
        return dataclasses.asdict(self)


# -- the cache ---------------------------------------------------------------------


class EvaluationCache:
    """LRU memo of noise-free stack traces.

    Parameters
    ----------
    maxsize:
        Maximum number of cached traces; least-recently-used entries are
        evicted beyond it.  A 12-parameter tuning run touches a few
        hundred distinct configurations, so the default is generous.
    backend:
        Optional persistent store (duck-typed as
        :class:`~repro.iostack.diskcache.DiskCacheBackend`): in-memory
        misses fall through to it in :meth:`lookup_trace` /
        :meth:`get_trace`, and fresh traces are persisted on build.  The
        persistent key additionally scopes entries by the simulator's
        :meth:`~repro.iostack.faults.FaultPlan.fingerprint` and this
        cache's :attr:`constraint_fingerprint`, so an entry written
        under one plan/registry is never served under another.
    """

    def __init__(self, maxsize: int = 4096, backend=None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, StackTrace] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.backend = backend
        #: Fingerprint of the active
        #: :class:`~repro.iostack.parameters.ConstraintRegistry`, set by
        #: the owning tuner/CLI; part of every persistent key (None =
        #: unconstrained run, itself a distinct key component).
        self.constraint_fingerprint: str | None = None
        #: Optional trace recorder (duck-typed; see
        #: :mod:`repro.observability.recorder`).  None by default so the
        #: cache has no observability import and untraced runs pay one
        #: attribute read per lookup.
        self.recorder = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        disk = self.backend.stats() if self.backend is not None else None
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            maxsize=self.maxsize,
            disk_hits=disk.hits if disk else 0,
            disk_misses=disk.misses if disk else 0,
            disk_stores=disk.stores if disk else 0,
            disk_evictions=disk.evictions if disk else 0,
            disk_errors=disk.errors if disk else 0,
        )

    @property
    def hit_rate(self) -> float:
        return self.stats().hit_rate

    # -- lookups ---------------------------------------------------------------

    @staticmethod
    def key_for(
        platform: Platform, workload: WorkloadLike, config: StackConfiguration
    ) -> Hashable:
        """The memo key: platform, workload fingerprint, configuration
        (which hashes its space and values)."""
        return (platform, workload_fingerprint(workload), config)

    def lookup(
        self, platform: Platform, workload: WorkloadLike, config: StackConfiguration
    ) -> StackTrace | None:
        """The cached trace, or None.  Counts a hit or a miss and
        refreshes LRU recency on hits."""
        key = self.key_for(platform, workload, config)
        trace = self._entries.get(key)
        recorder = self.recorder
        if trace is None:
            self.misses += 1
            if recorder is not None and recorder.enabled:
                recorder.emit("cache", op="miss")
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        if recorder is not None and recorder.enabled:
            recorder.emit("cache", op="hit")
        return trace

    def store(
        self,
        platform: Platform,
        workload: WorkloadLike,
        config: StackConfiguration,
        trace: StackTrace,
    ) -> None:
        """Remember a trace, evicting the least recently used entry
        beyond ``maxsize``."""
        key = self.key_for(platform, workload, config)
        self._entries[key] = trace
        self._entries.move_to_end(key)
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.emit("cache", op="store")
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            if recorder is not None and recorder.enabled:
                recorder.emit("cache", op="evict")

    # -- persistent backend ------------------------------------------------------

    def _backend_key(
        self,
        simulator: IOStackSimulator,
        workload: WorkloadLike,
        config: StackConfiguration,
    ) -> str:
        """The persistent content address; scoped by the simulator's
        fault-plan fingerprint and the run's constraint fingerprint."""
        plan = simulator.faults
        return self.backend.entry_key(
            simulator.platform,
            workload,
            config,
            plan.fingerprint() if plan is not None else None,
            self.constraint_fingerprint,
        )

    def lookup_trace(
        self,
        simulator: IOStackSimulator,
        workload: WorkloadLike,
        config: StackConfiguration,
    ) -> StackTrace | None:
        """Memory lookup with persistent fall-through: a disk hit is
        promoted into the in-memory LRU (counted as a store there, a hit
        on the backend).  Returns ``None`` only when both layers miss."""
        trace = self.lookup(simulator.platform, workload, config)
        if trace is not None or self.backend is None:
            return trace
        trace = self.backend.load(self._backend_key(simulator, workload, config))
        if trace is not None:
            self.store(simulator.platform, workload, config, trace)
        return trace

    def store_trace(
        self,
        simulator: IOStackSimulator,
        workload: WorkloadLike,
        config: StackConfiguration,
        trace: StackTrace,
    ) -> None:
        """Remember a freshly built trace in memory and, when a backend
        is attached, persist it."""
        self.store(simulator.platform, workload, config, trace)
        if self.backend is not None:
            self.backend.store(self._backend_key(simulator, workload, config), trace)

    def get_trace(
        self,
        simulator: IOStackSimulator,
        workload: WorkloadLike,
        config: StackConfiguration,
    ) -> StackTrace:
        """The trace for ``(simulator.platform, workload, config)``,
        built on a miss and remembered under LRU (and persisted to the
        backend when attached).

        A disk hit skips the stack traversal exactly like a memory hit:
        replaying the loaded trace is bit-identical to replaying a fresh
        one, fresh noise is still drawn by the caller, and the simulated
        clock is still charged -- the in-memory cache's contract extends
        to disk unchanged.
        """
        trace = self.lookup_trace(simulator, workload, config)
        if trace is None:
            trace = simulator.trace(workload, config)
            self.store_trace(simulator, workload, config, trace)
        return trace

    def evaluate(
        self,
        simulator: IOStackSimulator,
        workload: WorkloadLike,
        config: StackConfiguration,
        repeats: int = 3,
    ) -> EvaluationResult:
        """Drop-in replacement for :meth:`IOStackSimulator.evaluate`.

        Bit-identical to the uncached call for any noise model: hits and
        misses alike draw ``repeats`` fresh factors from the simulator's
        noise stream and replay them over the (cached or fresh) trace.
        """
        trace = self.get_trace(simulator, workload, config)
        return simulator.evaluate_trace(trace, repeats=repeats)
