"""Deterministic fault injection for the simulated I/O stack.

Real tuning campaigns on shared HPC systems do not enjoy the clean
``configuration -> bandwidth`` oracle the rest of the reproduction
assumes: evaluations straggle behind slow OSTs, batch jobs die on launch,
parallel file systems degrade for minutes at a time, and the occasional
configuration reliably wedges the I/O middleware.  :class:`FaultPlan`
makes all of that a first-class, *injectable* and *reproducible*
condition so the tuning pipeline can be exercised (and regression-tested)
under turbulence.

Fault taxonomy
--------------
* **Transient evaluation errors** -- a stack traversal
  (:meth:`~repro.iostack.simulator.IOStackSimulator.trace`) raises
  :class:`TransientFaultError` with probability ``transient_error_rate``.
  The decision is drawn per ``(config, attempt)``, so a retry of the same
  configuration sees an independent draw and the schedule does not depend
  on thread timing.
* **Latency stragglers** -- a replayed run's service times are inflated
  by ``straggler_slowdown`` with probability ``straggler_rate`` (an
  evaluation that lands on a slow OST or a congested router).  Stragglers
  lower the measured bandwidth *and* lengthen the charged runtime, which
  is how they interact with the harness's evaluation timeout.
* **Degraded bandwidth windows** -- :class:`DegradedWindow` intervals of
  the *simulated tuning clock* during which every run's service times are
  multiplied by ``slowdown`` (a file-system-wide degradation, e.g. an OST
  rebuild).  Attach the tuning clock with :meth:`FaultPlan.attach_clock`.
* **Poisoned configurations** -- configurations registered through
  :meth:`poison` always fail with :class:`PoisonedConfigError`, retries
  notwithstanding; the harness quarantines them.

Determinism contract
--------------------
Like :class:`~repro.iostack.noise.NoiseModel`, a plan is seeded and
stream-positional: the transient-error decision for a configuration's
``k``-th attempt depends only on ``(seed, config digest, k)``, and the
straggler decision for the ``k``-th replay depends only on ``(seed,
k)``.  The per-config attempt counters and the replay counter are the
only mutable state; :meth:`get_state`/:meth:`set_state` round-trip them
through JSON for the tuning journal, so a resumed run replays the exact
fault schedule of the interrupted one.  A plan never touches the noise
stream, and an inactive plan (all rates zero, no windows, no poison)
leaves every simulated result bit-identical to running without one.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulator imports us)
    from .clock import SimulatedClock
    from .config import StackConfiguration

__all__ = [
    "AGENT_FAULT_MODES",
    "EvaluationError",
    "TransientFaultError",
    "PoisonedConfigError",
    "EvaluationTimeout",
    "DegradedWindow",
    "FaultPlan",
    "config_digest",
]

#: Agent-level fault modes (``FaultPlan.agent_fault``), one per
#: degradation path of the guardrailed pipeline:
#:
#: * ``nan-weights`` -- both agents' network weights overwritten with
#:   NaN (silent in-memory corruption).
#: * ``explode-weights`` -- weights overwritten with huge finite values
#:   (a training blow-up that never went non-finite).
#: * ``stop-now`` -- degenerate always-stop early-stopper policy.
#: * ``empty-subset`` -- the subset picker emits empty subsets.
#: * ``constant-subset`` -- the subset picker emits the same fixed
#:   subset forever, ignoring its inputs.
#: * ``checkpoint-truncation`` -- the agents checkpoint file is
#:   truncated after saving, so the next load fails validation.
AGENT_FAULT_MODES = (
    "nan-weights",
    "explode-weights",
    "stop-now",
    "empty-subset",
    "constant-subset",
    "checkpoint-truncation",
)


class EvaluationError(Exception):
    """An evaluation failed in a way the harness may retry or quarantine.

    Raised by fault injection (subclasses below), by the objective path
    on non-finite performance values, and by the resilient harness when
    converting timeouts into failures.  Anything *not* derived from this
    class is treated as a genuine bug and propagates.
    """


class TransientFaultError(EvaluationError):
    """An injected transient failure (crashed job step, I/O error)."""


class PoisonedConfigError(EvaluationError):
    """A configuration registered as always-failing was evaluated."""


class EvaluationTimeout(EvaluationError):
    """An evaluation exceeded the harness's simulated timeout."""


def config_digest(config: "StackConfiguration") -> str:
    """A process-stable hex digest of a configuration.

    ``hash(config)`` folds in randomized string hashes, so it cannot key
    fault schedules or quarantine entries that must survive a process
    restart (journal resume).  This digest walks the parameter names and
    values in space order instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for name in config.space.names:
        h.update(name.encode())
        h.update(b"=")
        h.update(repr(config[name]).encode())
        h.update(b";")
    return h.hexdigest()


@dataclass(frozen=True)
class DegradedWindow:
    """A simulated-clock interval of file-system-wide degradation.

    ``start_minutes <= t < end_minutes`` of *tuning clock* time; every
    replay inside the window has its service times multiplied by
    ``slowdown`` (>= 1).
    """

    start_minutes: float
    end_minutes: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.start_minutes < 0 or self.end_minutes <= self.start_minutes:
            raise ValueError("need 0 <= start_minutes < end_minutes")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")

    def covers(self, minutes: float) -> bool:
        return self.start_minutes <= minutes < self.end_minutes

    @classmethod
    def parse(cls, spec: str) -> "DegradedWindow":
        """Parse a ``start:end:slowdown`` CLI spec (minutes)."""
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"degraded window spec must be start:end:slowdown, got {spec!r}"
            )
        return cls(float(parts[0]), float(parts[1]), float(parts[2]))


#: Seed salts decorrelating the plan's decision streams from each other.
_TRACE_SALT = 0x7A5C3
_REPLAY_SALT = 0x51F15


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Parameters
    ----------
    seed:
        Base seed of every fault decision stream.
    transient_error_rate:
        Per-attempt probability that a stack traversal raises
        :class:`TransientFaultError`.
    straggler_rate, straggler_slowdown:
        Per-replay probability and magnitude of a latency straggler.
    degraded_windows:
        Simulated-clock intervals of file-system degradation.
    agent_fault, agent_fault_at:
        Agent-level fault mode (one of :data:`AGENT_FAULT_MODES`, or
        ``None``) and the tuning iteration it engages at.  Consumed by
        the guarded agent wrappers
        (:class:`repro.core.smart_config.GuardedSubsetPicker`,
        :class:`repro.core.early_stopping.GuardedStopper`) and the CLI's
        checkpoint path; deterministic (no random stream involved).
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    degraded_windows: tuple[DegradedWindow, ...] = ()
    agent_fault: str | None = None
    agent_fault_at: int = 0

    #: Cumulative injection counters (observability; not part of the
    #: determinism contract).
    transient_errors_injected: int = field(default=0, repr=False)
    stragglers_injected: int = field(default=0, repr=False)

    _poisoned: dict[str, str] = field(default_factory=dict, repr=False)
    _trace_attempts: dict[str, int] = field(default_factory=dict, repr=False)
    _replay_counter: int = field(default=0, repr=False)
    _clock: "SimulatedClock | None" = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_error_rate < 1.0:
            raise ValueError("transient_error_rate must be in [0, 1)")
        if not 0.0 <= self.straggler_rate < 1.0:
            raise ValueError("straggler_rate must be in [0, 1)")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.agent_fault is not None and self.agent_fault not in AGENT_FAULT_MODES:
            raise ValueError(
                f"unknown agent_fault {self.agent_fault!r}; "
                f"known modes: {', '.join(AGENT_FAULT_MODES)}"
            )
        if self.agent_fault_at < 0:
            raise ValueError("agent_fault_at must be >= 0")
        self.degraded_windows = tuple(self.degraded_windows)

    # -- configuration ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when any fault source can fire."""
        return bool(
            self.transient_error_rate > 0
            or self.straggler_rate > 0
            or self.degraded_windows
            or self._poisoned
            or self.agent_fault is not None
        )

    def agent_fault_active(self, iteration: int) -> str | None:
        """The agent fault mode engaged at ``iteration``, or ``None``."""
        if self.agent_fault is None or iteration < self.agent_fault_at:
            return None
        return self.agent_fault

    def poison(self, config: "StackConfiguration") -> None:
        """Register a configuration that always fails."""
        self._poisoned[config_digest(config)] = repr(config)

    def is_poisoned(self, config: "StackConfiguration") -> bool:
        return config_digest(config) in self._poisoned

    def attach_clock(self, clock: "SimulatedClock | None") -> None:
        """Tie degraded windows to a tuning clock (the harness does this
        at the start of every tune)."""
        self._clock = clock

    # -- decision streams --------------------------------------------------------

    def check_trace(self, config: "StackConfiguration") -> None:
        """Fault decision for one stack-traversal attempt of ``config``.

        Raises :class:`PoisonedConfigError` or
        :class:`TransientFaultError` when the attempt faults; otherwise
        returns (and leaves the traversal untouched).  Thread-safe: the
        per-config attempt counter is advanced under a lock, and the
        decision depends only on ``(seed, config digest, attempt)``.
        """
        digest = config_digest(config)
        poisoned = self._poisoned.get(digest)
        if poisoned is not None:
            raise PoisonedConfigError(f"poisoned configuration {poisoned}")
        if self.transient_error_rate <= 0:
            return
        with self._lock:
            attempt = self._trace_attempts.get(digest, 0)
            self._trace_attempts[digest] = attempt + 1
        rng = np.random.default_rng(
            (self.seed ^ _TRACE_SALT, int(digest, 16), attempt)
        )
        if rng.random() < self.transient_error_rate:
            with self._lock:
                self.transient_errors_injected += 1
            raise TransientFaultError(
                f"injected transient fault (attempt {attempt}) evaluating {config!r}"
            )

    def replay_slowdown(self) -> float:
        """Service-time multiplier for the next replayed run: straggler
        draw times the degradation of the current clock window.  Returns
        exactly 1.0 when nothing fires (so multiplying by it preserves
        bit-identity)."""
        counter = self._replay_counter
        self._replay_counter += 1
        slowdown = 1.0
        if self.straggler_rate > 0:
            rng = np.random.default_rng((self.seed ^ _REPLAY_SALT, counter))
            if rng.random() < self.straggler_rate:
                slowdown *= self.straggler_slowdown
                self.stragglers_injected += 1
        if self.degraded_windows and self._clock is not None:
            minutes = self._clock.elapsed_minutes
            for window in self.degraded_windows:
                if window.covers(minutes):
                    slowdown *= window.slowdown
        return slowdown

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """A process-stable hex digest of the plan's *schedule identity*:
        everything that determines which faults can fire for which
        configuration, excluding the mutable stream positions.

        Two plans with equal fingerprints inject identical fault
        schedules for identical evaluation sequences, so persisted
        evaluation artefacts (the on-disk trace cache) may be shared
        between them; any schedule difference -- rates, windows, poison
        set, agent faults or the seed itself -- changes the digest.
        """
        h = hashlib.blake2b(digest_size=16)
        parts = (
            self.seed,
            self.transient_error_rate,
            self.straggler_rate,
            self.straggler_slowdown,
            tuple(
                (w.start_minutes, w.end_minutes, w.slowdown)
                for w in self.degraded_windows
            ),
            self.agent_fault,
            self.agent_fault_at,
            tuple(sorted(self._poisoned)),
        )
        h.update(repr(parts).encode())
        return h.hexdigest()

    # -- journal state ------------------------------------------------------------

    def get_state(self) -> dict[str, Any]:
        """JSON-serialisable mutable state (stream positions and
        injection counters) for the tuning journal."""
        return {
            "replay_counter": self._replay_counter,
            "trace_attempts": dict(self._trace_attempts),
            "transient_errors_injected": self.transient_errors_injected,
            "stragglers_injected": self.stragglers_injected,
        }

    def set_state(self, state: Mapping[str, Any]) -> None:
        """Restore stream positions captured by :meth:`get_state`."""
        self._replay_counter = int(state["replay_counter"])
        self._trace_attempts = {
            str(k): int(v) for k, v in state["trace_attempts"].items()
        }
        self.transient_errors_injected = int(
            state.get("transient_errors_injected", 0)
        )
        self.stragglers_injected = int(state.get("stragglers_injected", 0))

    def reset(self) -> None:
        """Rewind every decision stream to its start (new campaign)."""
        self._replay_counter = 0
        self._trace_attempts.clear()
        self.transient_errors_injected = 0
        self.stragglers_injected = 0
