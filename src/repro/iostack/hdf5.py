"""HDF5 layer model.

Transforms application-level dataset accesses into the file-level request
stream handed to MPI-IO, applying the seven HDF5 parameters the paper
tunes:

* ``chunk_cache_size`` -- partial-chunk writes/reads to chunked datasets
  trigger read-modify-write traffic when the chunk cache cannot hold the
  working set (write amplification and extra read-back).
* ``sieve_buf_size`` -- data sieving coalesces small reads into larger
  sieve-buffer reads at the cost of some over-read.
* ``alignment`` -- objects at least half the threshold are placed on
  multiples of the boundary; downstream this suppresses stripe-boundary
  crossings when the boundary divides (or is divided by) the stripe size.
* ``meta_block_size`` -- aggregates small metadata allocations into
  blocks, shrinking the number of metadata I/O operations.
* ``mdc_config`` -- metadata cache configuration; changes the cache hit
  rate and therefore how many metadata operations reach the MDS.
* ``coll_metadata_ops`` / ``coll_metadata_write`` -- collapse redundant
  per-process metadata reads/writes into one operation plus a broadcast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .cluster import Platform
from .phase import IOPhase
from .requests import MetadataStream, RequestStream
from .units import KiB

__all__ = ["HDF5Result", "apply_hdf5"]

#: Metadata-cache hit rates per ``mdc_config`` setting.  "small" thrashes,
#: "large" and "adaptive" keep most of the working set resident.
_MDC_HIT_RATE = {
    "default": 0.70,
    "small": 0.45,
    "large": 0.92,
    "adaptive": 0.88,
}

#: Fraction of extra bytes data sieving reads beyond what is consumed.
_SIEVE_OVERREAD = 0.10

#: Baseline metadata allocation granularity (HDF5's 2 KiB default).
_BASE_META_BLOCK = 2 * KiB


@dataclass(frozen=True)
class HDF5Result:
    """Output of the HDF5 layer for one phase."""

    data: tuple[RequestStream, ...]
    #: Metadata operations that continue down the stack (post-cache).
    metadata: MetadataStream | None
    #: CPU/network seconds spent inside the layer (broadcasts, cache walks).
    overhead_seconds: float


def apply_hdf5(
    phase: IOPhase, values: Mapping[str, Any], platform: Platform
) -> HDF5Result:
    """Run one phase's traffic through the HDF5 layer model.

    ``values`` is the hdf5 slice of a :class:`~repro.iostack.config.
    StackConfiguration` (see :meth:`StackConfiguration.layer`).
    """
    streams: list[RequestStream] = []
    overhead = 0.0
    for stream in phase.data:
        transformed, extra = _transform_data(stream, phase, values)
        streams.append(transformed)
        overhead += extra
    metadata, meta_overhead = _transform_metadata(phase.metadata, values, platform)
    return HDF5Result(tuple(streams), metadata, overhead + meta_overhead)


def _transform_data(
    stream: RequestStream, phase: IOPhase, values: Mapping[str, Any]
) -> tuple[RequestStream, float]:
    overhead = 0.0
    out = stream

    if phase.chunked and stream.collective_capable:
        out, extra = _apply_chunk_cache(out, phase, values["chunk_cache_size"])
        overhead += extra

    if out.op == "read":
        out = _apply_sieving(out, values["sieve_buf_size"])

    alignment = int(values["alignment"])
    if alignment > 1 and out.mean_size >= alignment / 2:
        out = out.aligned(alignment)

    return out, overhead


def _apply_chunk_cache(
    stream: RequestStream, phase: IOPhase, cache_size: int
) -> tuple[RequestStream, float]:
    """Partial-chunk access against a cold chunk cache.

    When requests are smaller than a chunk, HDF5 must assemble whole
    chunks.  If the per-process working set fits the chunk cache the
    assembly happens in memory; otherwise evicted chunks are read back
    and rewritten, inflating both bytes and operations.
    """
    chunk = phase.chunk_size
    if chunk <= 0 or stream.mean_size >= chunk:
        return stream, 0.0
    working_set = max(phase.working_set_per_proc, chunk)
    hit = min(1.0, cache_size / working_set)
    miss = 1.0 - hit
    if miss <= 0.0:
        # Fully cached: requests are assembled into whole-chunk I/O.
        merged = stream.coalesce(chunk)
        return merged, 0.0
    # Misses cause read-modify-write: every evicted partial chunk costs a
    # chunk-sized read plus a chunk-sized write instead of the small write.
    amplification = 1.0 + miss * min(2.0, chunk / stream.mean_size - 1.0) * 0.5
    inflated = stream.with_sizes(
        np.minimum(stream.sizes * amplification, float(chunk)),
        stream.total_ops,
        total_bytes=int(round(stream.total_bytes * amplification)),
        contiguity=stream.contiguity * hit,
    )
    return inflated, 0.0


def _apply_sieving(stream: RequestStream, sieve_buf_size: int) -> RequestStream:
    """Data sieving for reads: small (possibly strided) reads are served
    from a sieve buffer filled by one large contiguous read."""
    if stream.mean_size >= sieve_buf_size:
        return stream
    coalesced = stream.coalesce(sieve_buf_size)
    if coalesced.total_ops >= stream.total_ops:
        return stream
    return coalesced.with_sizes(
        coalesced.sizes * (1.0 + _SIEVE_OVERREAD),
        coalesced.total_ops,
        total_bytes=int(round(coalesced.total_bytes * (1.0 + _SIEVE_OVERREAD))),
    )


def _transform_metadata(
    metadata: MetadataStream | None, values: Mapping[str, Any], platform: Platform
) -> tuple[MetadataStream | None, float]:
    if metadata is None or metadata.total_ops == 0:
        return metadata, 0.0

    overhead = 0.0
    n_procs = metadata.n_procs
    read_ops = metadata.total_ops * (1.0 - metadata.write_fraction)
    write_ops = metadata.total_ops * metadata.write_fraction

    # Collective metadata: one rank performs the op, result is broadcast.
    if metadata.per_proc_redundant and n_procs > 1:
        bcast_cost = math.log2(n_procs) * platform.network_latency
        if values["coll_metadata_ops"]:
            overhead += (read_ops / n_procs) * bcast_cost
            read_ops /= n_procs
        if values["coll_metadata_write"]:
            overhead += (write_ops / n_procs) * bcast_cost
            write_ops /= n_procs

    # Metadata cache absorbs repeated reads.
    hit_rate = _MDC_HIT_RATE[values["mdc_config"]]
    read_ops *= 1.0 - hit_rate

    # Block aggregation amortises small metadata allocations: the op count
    # that reaches storage shrinks with the block size (sub-linearly --
    # allocations are batched but object headers still flush individually).
    agg = math.sqrt(max(1.0, values["meta_block_size"] / _BASE_META_BLOCK))
    write_ops /= agg

    total = max(0, int(round(read_ops + write_ops)))
    if total == 0:
        return None, overhead
    surviving = MetadataStream(
        total_ops=total,
        n_procs=n_procs,
        per_proc_redundant=False,  # redundancy resolved at this layer
        write_fraction=min(1.0, write_ops / max(1e-9, read_ops + write_ops)),
    )
    return surviving, overhead
