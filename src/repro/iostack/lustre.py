"""Lustre parallel-file-system model.

Serves the request streams that survive the HDF5 and MPI-IO layers.  The
two tuned parameters are ``striping_factor`` (how many OSTs a file spans)
and ``striping_unit`` (the stripe size).  The model captures the effects
that make these worth tuning:

* **Server parallelism** -- aggregate bandwidth grows with the OSTs the
  job actually uses (stripe count x files), up to the file system total.
* **Per-RPC overhead** -- each stripe a request touches is one bulk RPC;
  small or misaligned requests pay proportionally more latency.
* **Stripe-boundary crossings** -- requests not aligned to stripe
  boundaries straddle an extra OST, costing an extra RPC and extent-lock
  traffic.
* **Shared-file lock contention** -- many writers interleaved on one
  file serialise on per-OST extent locks; contiguous per-process domains
  (what collective buffering produces) avoid this.
* **Client-side ceilings** -- NIC/LNET caps per node.

Metadata operations are served by a single MDS with bounded throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .cluster import Platform
from .requests import MetadataStream, RequestStream

__all__ = ["LustreService", "serve_lustre", "serve_metadata"]


@dataclass(frozen=True)
class LustreService:
    """Timing breakdown for one stream served by Lustre."""

    seconds: float
    #: Aggregate bandwidth actually achieved (bytes/s).
    achieved_bandwidth: float
    #: Number of OSTs the stream's file(s) spread over.
    osts_used: int
    #: Mean bulk RPCs issued per request.
    rpcs_per_request: float
    #: Which ceiling bound the transfer: "server", "client" or "locks".
    bound_by: str


def serve_lustre(
    stream: RequestStream, values: Mapping[str, Any], platform: Platform
) -> LustreService:
    """Service time for one data stream against the Lustre model.

    ``values`` is the lustre slice of a configuration.
    """
    stripe_count = int(values["striping_factor"])
    stripe_size = int(values["striping_unit"])

    n_files = 1 if stream.shared_file else stream.n_procs
    osts_used = min(stripe_count * n_files, platform.n_osts)

    # -- RPC decomposition ----------------------------------------------------
    # A request of size s touches ceil(s / stripe) stripes when aligned;
    # otherwise its start offset is uniform within a stripe and it straddles
    # one extra boundary with probability ~ (s mod stripe)/stripe.
    sizes = stream.sizes
    base_touches = np.ceil(sizes / stripe_size)
    if stream.alignment >= stripe_size and stream.alignment % stripe_size == 0:
        touches = base_touches
    else:
        frac = (sizes % stripe_size) / stripe_size
        touches = base_touches + frac
    rpcs_per_request = float(touches.mean())
    mean_rpc_bytes = float((sizes / touches).mean())

    # -- server-side ceiling ----------------------------------------------------
    # Per-RPC efficiency: the fraction of an OST's service time spent
    # moving bytes rather than in RPC turnaround.  Synchronous POSIX-path
    # writers cannot pipeline their RPCs, so small stripe-fragments pay
    # the full round trip -- this is what makes the stripe size and
    # alignment first-class tuning targets.
    ost_bw = platform.ost_bandwidth * platform.ost_utilization
    size_efficiency = mean_rpc_bytes / (mean_rpc_bytes + ost_bw * platform.rpc_latency)
    server_bw = osts_used * ost_bw * size_efficiency

    # Concurrent readers pay a seek/readahead-thrash penalty per OST.
    lock_bound_applied = False
    if stream.shared_file and stream.n_procs > 1 and stream.op == "read":
        clients_per_ost = stream.n_procs / osts_used
        server_bw /= (
            1.0
            + platform.read_contention_coeff
            * np.sqrt(max(0.0, clients_per_ost - 1.0))
        )

    # Multiple sequential writer streams multiplexed onto one OST object
    # (e.g. collective aggregators over too few stripes) force the OST to
    # seek between their file domains; spreading stripes or matching the
    # aggregator count to the stripe count avoids it.
    if stream.op == "write" and stream.interleave < 0.2 and stream.n_procs > 1:
        streams_per_ost = stream.n_procs / osts_used
        seek_efficiency = 1.0 / (1.0 + 1.2 * max(0.0, streams_per_ost - 1.0))
        server_bw *= seek_efficiency

    # -- client-side ceiling -------------------------------------------------------------
    client_nodes = stream.nodes_spanned(platform.n_nodes, platform.procs_per_node)
    client_bw = (
        platform.client_lustre_bandwidth
        * client_nodes**platform.client_scaling_exponent
    )

    achieved = min(server_bw, client_bw)
    if achieved <= 0:
        raise ArithmeticError("achieved bandwidth must be positive")
    transfer_seconds = stream.total_bytes / achieved

    # Extent-lock conflict resolution: interleaved writers on a shared
    # file trigger lock revocations.  Each revocation costs a round trip
    # plus flushing the dirty extent back to the OST (so big requests pay
    # proportionally), scaled by how many peers may hold the lock --
    # spreading over OSTs absorbs it only as sqrt.  Stripe-aligned
    # requests rarely share an extent (conflicts x0.3), and two-phase
    # collective I/O produces interleave=0 streams and pays nothing --
    # which is why alignment and collective buffering are the coordinated
    # fixes the tuner must discover.
    lock_seconds = 0.0
    if stream.shared_file and stream.op == "write" and stream.n_procs > 1:
        conflict = stream.interleave * (1.0 - stream.contiguity * 0.5)
        if stream.alignment >= stripe_size and stream.alignment % stripe_size == 0:
            conflict *= 0.3
        conflict_ops = stream.total_ops * conflict
        revocation = 3.0 * (platform.rpc_latency + float(sizes.mean()) / ost_bw)
        # Spreading objects over OSTs relieves revocation queues only
        # weakly (quarter power): conflicts follow the byte-range
        # interleaving, which striping does not change.
        lock_seconds = conflict_ops * revocation * (
            stream.n_procs / osts_used
        ) ** 0.25
        if lock_seconds > transfer_seconds:
            lock_bound_applied = True

    # Client CPU cost of issuing the requests (parallel across procs).
    issue_seconds = (
        stream.total_ops * platform.syscall_overhead / max(1, stream.n_procs)
    )

    if lock_bound_applied and server_bw < client_bw:
        bound_by = "locks"
    elif server_bw <= client_bw:
        bound_by = "server"
    else:
        bound_by = "client"

    return LustreService(
        seconds=transfer_seconds + issue_seconds + lock_seconds,
        achieved_bandwidth=achieved,
        osts_used=osts_used,
        rpcs_per_request=rpcs_per_request,
        bound_by=bound_by,
    )


def serve_metadata(metadata: MetadataStream | None, platform: Platform) -> float:
    """Seconds to retire a metadata stream at the MDS.

    Operations issue in parallel across clients but the MDS has a fixed
    aggregate throughput; whichever bound is tighter dominates.
    """
    if metadata is None or metadata.total_ops == 0:
        return 0.0
    throughput_bound = metadata.total_ops / platform.mds_throughput
    latency_bound = metadata.ops_per_proc * platform.mds_latency
    return max(throughput_bound, latency_bound)
