"""MPI-IO (ROMIO) layer model: two-phase collective buffering.

When ``romio_collective`` is enabled and a stream is collective-capable on
a shared file, ROMIO reorganises the I/O in two phases:

1. *Shuffle*: processes exchange data over the network so that each of
   the ``cb_nodes`` aggregators owns a contiguous file domain.
2. *I/O*: aggregators issue large contiguous requests of up to
   ``cb_buffer_size`` bytes each.

The payoff is turning many small interleaved requests into few large
contiguous ones (eliminating lock contention and per-request overhead
downstream); the cost is the network shuffle plus aggregator serialisation
when ``cb_nodes`` is too small -- exactly the trade-off the tuner must
discover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .cluster import Platform
from .requests import RequestStream

__all__ = ["MPIIOResult", "apply_mpiio"]


@dataclass(frozen=True)
class MPIIOResult:
    """Output of the MPI-IO layer for one stream."""

    stream: RequestStream
    #: Seconds of network shuffle + synchronisation added by two-phase I/O.
    overhead_seconds: float
    #: Whether collective buffering was actually applied.
    collectivised: bool


def apply_mpiio(
    stream: RequestStream,
    values: Mapping[str, Any],
    platform: Platform,
    striping_unit: int,
) -> MPIIOResult:
    """Run one request stream through the MPI-IO layer.

    ``values`` is the mpiio slice of a configuration; ``striping_unit`` is
    forwarded from the Lustre layer because ROMIO's Lustre driver aligns
    aggregator file domains to stripe boundaries when the collective
    buffer is stripe-aligned.
    """
    if not (
        values["romio_collective"]
        and stream.collective_capable
        and stream.shared_file
        and stream.n_procs > 1
    ):
        return MPIIOResult(stream, 0.0, False)

    cb_nodes = int(values["cb_nodes"])
    cb_buffer = int(values["cb_buffer_size"])
    n_nodes = max(1, platform.n_nodes)
    # ROMIO caps aggregators at the number of processes; placing more than
    # one aggregator per node buys little because they share the NIC.
    aggregators = max(1, min(cb_nodes, stream.n_procs))
    aggregator_nodes = min(aggregators, n_nodes)

    # -- phase 1: shuffle ---------------------------------------------------
    # All data crosses the network once, limited by the slower side of the
    # exchange (all compute nodes send, aggregator nodes receive).
    exchange_bw = min(n_nodes, aggregator_nodes) * platform.nic_bandwidth
    shuffle_seconds = stream.total_bytes / exchange_bw
    # Each collective round moves cb_buffer bytes per aggregator and costs
    # a synchronisation (alltoallv + barrier).
    rounds = math.ceil(stream.total_bytes / max(1, aggregators * cb_buffer))
    sync_cost = math.log2(max(2, stream.n_procs)) * platform.network_latency
    shuffle_seconds += rounds * sync_cost

    # -- phase 2: rebuilt request stream ------------------------------------
    total_ops = max(aggregators, math.ceil(stream.total_bytes / cb_buffer))
    sample_len = min(total_ops, stream.sizes.size)
    mean_size = stream.total_bytes / total_ops
    sizes = np.full(sample_len, float(min(cb_buffer, mean_size)))
    # Aggregator file domains are contiguous; they are stripe-aligned when
    # the buffer is a multiple of the stripe size.
    alignment = striping_unit if cb_buffer % max(1, striping_unit) == 0 else 1
    rebuilt = stream.with_sizes(
        sizes,
        total_ops,
        total_bytes=stream.total_bytes,
        n_procs=aggregators,
        contiguity=1.0,
        interleave=0.0,
        alignment=max(alignment, stream.alignment) if alignment > 1 else stream.alignment,
        nodes=aggregator_nodes,
    )
    return MPIIOResult(rebuilt, shuffle_seconds, True)
