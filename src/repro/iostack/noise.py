"""Platform volatility model.

Shared production systems like Cori show run-to-run I/O variability from
other jobs' traffic; the paper mitigates it by running each configuration
three times and averaging bandwidths.  :class:`NoiseModel` reproduces
that variability as a multiplicative lognormal factor on I/O time plus
occasional contention spikes, deterministically derived from a seed and a
run counter so experiments are reproducible.

Sequence contract
-----------------
A model is a *stateful stream*: factor ``k`` of the stream depends only
on ``(seed, k)``, and the internal run counter records how many factors
have been consumed so far.  Every sampling API advances the counter by
exactly the number of factors it returns -- :meth:`sample_factors(n)
<sample_factors>` consumes the counter identically to ``n`` calls of
:meth:`sample_factor`, so a vectorized consumer and a loop observe the
same sequence.  Because the counter is mutable shared state, handing one
model instance to two experiments interleaves their streams.  Use
:meth:`clone` to duplicate a model *including* its position (replay from
here), or :meth:`spawn` to derive an independent stream (fresh counter,
decorrelated seed) for a worker or a second experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Deterministic, seeded run-to-run I/O time perturbation.

    Parameters
    ----------
    sigma:
        Standard deviation of the lognormal jitter on I/O time (0.08
        means roughly +-8% typical variation).
    spike_probability:
        Chance that a run lands during heavy external traffic.
    spike_slowdown:
        Multiplier applied to I/O time during a spike.
    seed:
        Base seed; every sampled factor also folds in the run counter, so
        repeated calls form a reproducible sequence.
    """

    sigma: float = 0.12
    spike_probability: float = 0.06
    spike_slowdown: float = 2.0
    seed: int = 0
    _counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 0.0 <= self.spike_probability < 1.0:
            raise ValueError("spike_probability must be in [0, 1)")
        if self.spike_slowdown < 1.0:
            raise ValueError("spike_slowdown must be >= 1")

    @property
    def deterministic(self) -> bool:
        """True when every factor is exactly 1.0 (quiet model)."""
        return self.sigma == 0 and self.spike_probability == 0

    def sample_factor(self) -> float:
        """Next multiplicative factor on I/O time (>= ~0.7, unbounded
        above during spikes)."""
        counter = self._counter
        self._counter += 1
        if self.deterministic:
            return 1.0
        rng = np.random.default_rng((self.seed, counter))
        factor = float(rng.lognormal(mean=0.0, sigma=self.sigma)) if self.sigma > 0 else 1.0
        if self.spike_probability > 0 and rng.random() < self.spike_probability:
            factor *= self.spike_slowdown
        return factor

    def sample_factors(self, n: int) -> np.ndarray:
        """The next ``n`` factors as one array.

        Consumes the run counter identically to ``n`` calls of
        :meth:`sample_factor`: factor ``i`` of the result is derived from
        ``(seed, counter + i)``.  Each factor has its own counter-keyed
        generator, so the draw itself cannot be a single vectorized rng
        call -- but quiet models short-circuit to ``ones(n)`` and noisy
        models pay only the per-counter generator setup.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if self.deterministic:
            self._counter += n
            return np.ones(n)
        out = np.empty(n)
        for i in range(n):
            out[i] = self.sample_factor()
        return out

    # -- stream position --------------------------------------------------------

    @property
    def position(self) -> int:
        """Number of factors consumed so far (the run counter)."""
        return self._counter

    def seek(self, position: int) -> None:
        """Set the stream position.  Factor ``k`` depends only on
        ``(seed, k)``, so seeking fully determines the remaining
        sequence -- this is how a resumed tuning run fast-forwards past
        journaled generations without re-drawing their factors."""
        if position < 0:
            raise ValueError("position must be >= 0")
        self._counter = position

    # -- copy semantics ---------------------------------------------------------

    def clone(self) -> "NoiseModel":
        """An exact copy *including* the run counter: the clone replays
        the remainder of this model's sequence without advancing it."""
        return replace(self)

    def spawn(self, stream: int = 1) -> "NoiseModel":
        """An independent model for a parallel worker or a second
        experiment: same volatility shape, a seed decorrelated by
        ``stream`` and a fresh counter.  ``spawn(0)`` restarts this
        model's own sequence from the beginning."""
        if stream < 0:
            raise ValueError("stream must be >= 0")
        # Deterministic across processes (no str hashing): golden-ratio
        # mixing of the stream index into the base seed.
        seed = self.seed if stream == 0 else (self.seed ^ (0x9E3779B9 * stream)) & 0x7FFFFFFF
        return replace(self, seed=seed, _counter=0)

    @classmethod
    def quiet(cls) -> "NoiseModel":
        """A noiseless model for deterministic unit tests."""
        return cls(sigma=0.0, spike_probability=0.0)
