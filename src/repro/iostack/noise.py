"""Platform volatility model.

Shared production systems like Cori show run-to-run I/O variability from
other jobs' traffic; the paper mitigates it by running each configuration
three times and averaging bandwidths.  :class:`NoiseModel` reproduces
that variability as a multiplicative lognormal factor on I/O time plus
occasional contention spikes, deterministically derived from a seed and a
run counter so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Deterministic, seeded run-to-run I/O time perturbation.

    Parameters
    ----------
    sigma:
        Standard deviation of the lognormal jitter on I/O time (0.08
        means roughly +-8% typical variation).
    spike_probability:
        Chance that a run lands during heavy external traffic.
    spike_slowdown:
        Multiplier applied to I/O time during a spike.
    seed:
        Base seed; every sampled factor also folds in the run counter, so
        repeated calls form a reproducible sequence.
    """

    sigma: float = 0.12
    spike_probability: float = 0.06
    spike_slowdown: float = 2.0
    seed: int = 0
    _counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 0.0 <= self.spike_probability < 1.0:
            raise ValueError("spike_probability must be in [0, 1)")
        if self.spike_slowdown < 1.0:
            raise ValueError("spike_slowdown must be >= 1")

    def sample_factor(self) -> float:
        """Next multiplicative factor on I/O time (>= ~0.7, unbounded
        above during spikes)."""
        rng = np.random.default_rng((self.seed, self._counter))
        self._counter += 1
        factor = float(rng.lognormal(mean=0.0, sigma=self.sigma)) if self.sigma > 0 else 1.0
        if self.spike_probability > 0 and rng.random() < self.spike_probability:
            factor *= self.spike_slowdown
        return factor

    @classmethod
    def quiet(cls) -> "NoiseModel":
        """A noiseless model for deterministic unit tests."""
        return cls(sigma=0.0, spike_probability=0.0)
