"""Parameter definitions for the simulated HPC I/O stack.

Two distinct things live here:

* :data:`TUNED_SPACE` -- the 12 parameters across HDF5, MPI-IO and Lustre
  that the paper tunes (sieve_buf_size, chunk_cache, alignment,
  meta_block_size, colmeta_ops, mdc_conf, coll_metadata_write,
  striping_factor, striping_unit, cb_nodes, cb_buffer_size, plus the
  collective-I/O toggle the paper's HDF5/MPI-IO coordination example
  implies).  With the candidate value sets below the full space has
  ~2.4 billion permutations, matching the paper's "over 2.18 billion".

* :data:`LIBRARY_CATALOG` -- per-library parameter *counts* used only to
  regenerate Figure 1 (search-space growth across stack compositions),
  using the paper's lower bound of two values per discrete parameter and
  five per continuous parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from .units import KiB, MiB, GiB

__all__ = [
    "Parameter",
    "ParameterSpace",
    "LibraryCatalog",
    "TUNED_SPACE",
    "LIBRARY_CATALOG",
    "stack_permutations",
]


@dataclass(frozen=True)
class Parameter:
    """One tunable knob of the I/O stack.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"striping_factor"``.
    layer:
        Which stack layer consumes it: ``"hdf5"``, ``"mpiio"`` or
        ``"lustre"``.
    values:
        The ordered candidate values explored during tuning.  Ordering
        matters: the genome encodes a parameter as its index into this
        tuple, and mutation moves to nearby indices for ordinal
        parameters.
    default:
        The untuned (library default) value; must be a member of
        ``values``.
    kind:
        ``"ordinal"`` (sizes/counts with a natural order), ``"boolean"``
        or ``"categorical"``.
    description:
        Human-readable summary for reports.
    """

    name: str
    layer: str
    values: tuple[Any, ...]
    default: Any
    kind: str = "ordinal"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no candidate values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")
        if self.default not in self.values:
            raise ValueError(
                f"default {self.default!r} of parameter {self.name!r} is not a "
                f"candidate value"
            )
        if self.kind not in ("ordinal", "boolean", "categorical"):
            raise ValueError(f"unknown parameter kind {self.kind!r}")
        if self.layer not in ("hdf5", "mpiio", "lustre"):
            raise ValueError(f"unknown layer {self.layer!r}")

    @property
    def cardinality(self) -> int:
        """Number of candidate values."""
        return len(self.values)

    @property
    def default_index(self) -> int:
        """Index of the default value in :attr:`values`."""
        return self.values.index(self.default)

    def index_of(self, value: Any) -> int:
        """Index of ``value`` in :attr:`values` (raises ``ValueError`` if
        the value is not a candidate)."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not a candidate value of parameter {self.name!r}"
            ) from None

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniformly random candidate value."""
        return self.values[int(rng.integers(self.cardinality))]

    def neighbor_index(self, index: int, rng: np.random.Generator) -> int:
        """Mutate an index: ordinal parameters step to an adjacent value
        (95% of the time) or, rarely, jump uniformly -- the rare long
        jump is what lets a run escape a mid-tuning plateau late, the
        dynamic Figure 10(a) shows; boolean/categorical parameters
        re-draw uniformly among the other values."""
        if not 0 <= index < self.cardinality:
            raise IndexError(f"index {index} out of range for {self.name!r}")
        if self.cardinality == 1:
            return index
        if self.kind == "ordinal" and rng.random() < 0.95:
            step = 1 if rng.random() < 0.5 else -1
            return int(np.clip(index + step, 0, self.cardinality - 1))
        choices = [i for i in range(self.cardinality) if i != index]
        return int(choices[int(rng.integers(len(choices)))])


class ParameterSpace:
    """An ordered, immutable collection of :class:`Parameter` objects.

    Provides genome encoding (value <-> index vectors), permutation
    counting, uniform sampling, and subspace selection -- everything the
    GA and the RL subset picker need.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in space")
        self._params: tuple[Parameter, ...] = tuple(parameters)
        self._by_name: dict[str, Parameter] = {p.name: p for p in self._params}

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, key: str | int) -> Parameter:
        if isinstance(key, int):
            return self._params[key]
        return self._by_name[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterSpace):
            return NotImplemented
        return self._params == other._params

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParameterSpace({[p.name for p in self._params]})"

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names in genome order."""
        return tuple(p.name for p in self._params)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Candidate-value counts in genome order."""
        return tuple(p.cardinality for p in self._params)

    def index_of_name(self, name: str) -> int:
        """Genome position of the parameter called ``name``."""
        for i, p in enumerate(self._params):
            if p.name == name:
                return i
        raise KeyError(name)

    # -- search-space size ---------------------------------------------------

    def permutations(self) -> int:
        """Exact number of distinct configurations in this space."""
        return math.prod(p.cardinality for p in self._params)

    # -- configuration construction -------------------------------------------

    def default_values(self) -> dict[str, Any]:
        """Mapping of every parameter to its library-default value."""
        return {p.name: p.default for p in self._params}

    def random_values(self, rng: np.random.Generator) -> dict[str, Any]:
        """Mapping of every parameter to a uniformly random candidate."""
        return {p.name: p.sample(rng) for p in self._params}

    # -- genome encoding -------------------------------------------------------

    def encode(self, values: Mapping[str, Any]) -> np.ndarray:
        """Encode a name->value mapping as an int index vector in genome
        order.  Missing parameters take their default index."""
        out = np.empty(len(self._params), dtype=np.int64)
        for i, p in enumerate(self._params):
            out[i] = p.index_of(values[p.name]) if p.name in values else p.default_index
        return out

    def decode(self, indices: Sequence[int]) -> dict[str, Any]:
        """Inverse of :meth:`encode`."""
        if len(indices) != len(self._params):
            raise ValueError(
                f"genome length {len(indices)} != space size {len(self._params)}"
            )
        return {p.name: p.values[int(i)] for p, i in zip(self._params, indices)}

    def normalized(self, indices: Sequence[int]) -> np.ndarray:
        """Map an index vector to [0, 1]^n (index / (cardinality-1)); used
        as NN features.  Parameters with a single value map to 0."""
        out = np.empty(len(self._params), dtype=np.float64)
        for j, (p, i) in enumerate(zip(self._params, indices)):
            out[j] = 0.0 if p.cardinality == 1 else int(i) / (p.cardinality - 1)
        return out

    # -- subspaces ---------------------------------------------------------------

    def subset(self, names: Sequence[str]) -> "ParameterSpace":
        """A new space containing only ``names``, preserving this space's
        order (not the order of ``names``)."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        return ParameterSpace([p for p in self._params if p.name in wanted])


def _build_tuned_space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter(
                "sieve_buf_size",
                "hdf5",
                (64 * KiB, 256 * KiB, 512 * KiB, MiB, 4 * MiB, 16 * MiB, 32 * MiB, 64 * MiB),
                default=64 * KiB,
                description="HDF5 data-sieving buffer size (H5Pset_sieve_buf_size)",
            ),
            Parameter(
                "chunk_cache_size",
                "hdf5",
                (MiB, 4 * MiB, 16 * MiB, 64 * MiB, 128 * MiB, 256 * MiB, 512 * MiB, GiB),
                default=MiB,
                description="HDF5 raw-data chunk cache size (H5Pset_cache)",
            ),
            Parameter(
                "alignment",
                "hdf5",
                (1, 64 * KiB, 256 * KiB, 512 * KiB, MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB),
                default=1,
                description="HDF5 object alignment threshold (H5Pset_alignment)",
            ),
            Parameter(
                "meta_block_size",
                "hdf5",
                (2 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, MiB, 2 * MiB, 4 * MiB, 16 * MiB),
                default=2 * KiB,
                description="HDF5 metadata block aggregation size (H5Pset_meta_block_size)",
            ),
            Parameter(
                "coll_metadata_ops",
                "hdf5",
                (False, True),
                default=False,
                kind="boolean",
                description="Collective HDF5 metadata reads (H5Pset_all_coll_metadata_ops)",
            ),
            Parameter(
                "mdc_config",
                "hdf5",
                ("default", "small", "large", "adaptive"),
                default="default",
                kind="categorical",
                description="HDF5 metadata cache configuration (H5Pset_mdc_config)",
            ),
            Parameter(
                "coll_metadata_write",
                "hdf5",
                (False, True),
                default=False,
                kind="boolean",
                description="Collective HDF5 metadata writes (H5Pset_coll_metadata_write)",
            ),
            Parameter(
                "striping_factor",
                "lustre",
                (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 248),
                default=1,
                description="Lustre stripe count (number of OSTs a file spans)",
            ),
            Parameter(
                "striping_unit",
                "lustre",
                (128 * KiB, 256 * KiB, 512 * KiB, MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB),
                default=MiB,
                description="Lustre stripe size",
            ),
            Parameter(
                "cb_nodes",
                "mpiio",
                (1, 2, 4, 8, 16, 32, 64, 128, 256, 384, 512, 640, 768, 896, 1024, 1600),
                default=4,
                description="ROMIO two-phase collective-buffering aggregator count",
            ),
            Parameter(
                "cb_buffer_size",
                "mpiio",
                (MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB, 128 * MiB),
                default=16 * MiB,
                description="ROMIO collective buffer size per aggregator",
            ),
            Parameter(
                "romio_collective",
                "mpiio",
                (False, True),
                default=False,
                kind="boolean",
                description="Enable two-phase collective I/O (romio_cb_write/read)",
            ),
        ]
    )


#: The 12-parameter space tuned throughout the paper's evaluation.
TUNED_SPACE: ParameterSpace = _build_tuned_space()


@dataclass(frozen=True)
class LibraryCatalog:
    """Parameter *counts* of a real I/O library, used for Figure 1.

    The counts are lower bounds drawn from each library's public
    configuration surface; Figure 1 only needs relative magnitudes.
    """

    name: str
    discrete: int
    continuous: int

    def permutations(
        self, per_discrete: int = 2, per_continuous: int = 5
    ) -> int:
        """Lower-bound permutation count with the paper's rule of two
        values per discrete parameter and five per continuous one."""
        if per_discrete < 1 or per_continuous < 1:
            raise ValueError("value counts must be >= 1")
        return per_discrete**self.discrete * per_continuous**self.continuous

    @property
    def total_parameters(self) -> int:
        return self.discrete + self.continuous


#: Figure 1's library population.  Counts are conservative lower bounds on
#: each library's user-visible tunables.
LIBRARY_CATALOG: dict[str, LibraryCatalog] = {
    c.name: c
    for c in (
        LibraryCatalog("HDF5", discrete=27, continuous=6),
        LibraryCatalog("PNetCDF", discrete=12, continuous=4),
        LibraryCatalog("MPI", discrete=22, continuous=3),
        LibraryCatalog("ADIOS", discrete=18, continuous=5),
        LibraryCatalog("OpenSHMEMX", discrete=10, continuous=2),
        LibraryCatalog("Hermes", discrete=14, continuous=6),
    )
}


def stack_permutations(
    libraries: Sequence[str], per_discrete: int = 2, per_continuous: int = 5
) -> int:
    """Permutation count of a stack composed of ``libraries`` (Figure 1's
    worst case where every layer's parameters multiply)."""
    total = 1
    for name in libraries:
        try:
            catalog = LIBRARY_CATALOG[name]
        except KeyError:
            raise KeyError(
                f"unknown library {name!r}; known: {sorted(LIBRARY_CATALOG)}"
            ) from None
        total *= catalog.permutations(per_discrete, per_continuous)
    return total
