"""Parameter definitions for the simulated HPC I/O stack.

Two distinct things live here:

* :data:`TUNED_SPACE` -- the 12 parameters across HDF5, MPI-IO and Lustre
  that the paper tunes (sieve_buf_size, chunk_cache, alignment,
  meta_block_size, colmeta_ops, mdc_conf, coll_metadata_write,
  striping_factor, striping_unit, cb_nodes, cb_buffer_size, plus the
  collective-I/O toggle the paper's HDF5/MPI-IO coordination example
  implies).  With the candidate value sets below the full space has
  ~2.4 billion permutations, matching the paper's "over 2.18 billion".

* :data:`LIBRARY_CATALOG` -- per-library parameter *counts* used only to
  regenerate Figure 1 (search-space growth across stack compositions),
  using the paper's lower bound of two values per discrete parameter and
  five per continuous parameter.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from .units import KiB, MiB, GiB

__all__ = [
    "Parameter",
    "ParameterSpace",
    "LibraryCatalog",
    "TUNED_SPACE",
    "LIBRARY_CATALOG",
    "stack_permutations",
    "ConstraintContext",
    "ConstraintViolation",
    "ConstraintViolationError",
    "UpperBoundConstraint",
    "DivisibilityConstraint",
    "ConstraintRegistry",
    "default_constraints",
]


@dataclass(frozen=True)
class Parameter:
    """One tunable knob of the I/O stack.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"striping_factor"``.
    layer:
        Which stack layer consumes it: ``"hdf5"``, ``"mpiio"`` or
        ``"lustre"``.
    values:
        The ordered candidate values explored during tuning.  Ordering
        matters: the genome encodes a parameter as its index into this
        tuple, and mutation moves to nearby indices for ordinal
        parameters.
    default:
        The untuned (library default) value; must be a member of
        ``values``.
    kind:
        ``"ordinal"`` (sizes/counts with a natural order), ``"boolean"``
        or ``"categorical"``.
    description:
        Human-readable summary for reports.
    """

    name: str
    layer: str
    values: tuple[Any, ...]
    default: Any
    kind: str = "ordinal"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no candidate values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")
        if self.default not in self.values:
            raise ValueError(
                f"default {self.default!r} of parameter {self.name!r} is not a "
                f"candidate value"
            )
        if self.kind not in ("ordinal", "boolean", "categorical"):
            raise ValueError(f"unknown parameter kind {self.kind!r}")
        if self.layer not in ("hdf5", "mpiio", "lustre"):
            raise ValueError(f"unknown layer {self.layer!r}")

    @property
    def cardinality(self) -> int:
        """Number of candidate values."""
        return len(self.values)

    @property
    def default_index(self) -> int:
        """Index of the default value in :attr:`values`."""
        return self.values.index(self.default)

    def index_of(self, value: Any) -> int:
        """Index of ``value`` in :attr:`values` (raises ``ValueError`` if
        the value is not a candidate)."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not a candidate value of parameter {self.name!r}"
            ) from None

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniformly random candidate value."""
        return self.values[int(rng.integers(self.cardinality))]

    def neighbor_index(self, index: int, rng: np.random.Generator) -> int:
        """Mutate an index: ordinal parameters step to an adjacent value
        (95% of the time) or, rarely, jump uniformly -- the rare long
        jump is what lets a run escape a mid-tuning plateau late, the
        dynamic Figure 10(a) shows; boolean/categorical parameters
        re-draw uniformly among the other values."""
        if not 0 <= index < self.cardinality:
            raise IndexError(f"index {index} out of range for {self.name!r}")
        if self.cardinality == 1:
            return index
        if self.kind == "ordinal" and rng.random() < 0.95:
            step = 1 if rng.random() < 0.5 else -1
            return int(np.clip(index + step, 0, self.cardinality - 1))
        choices = [i for i in range(self.cardinality) if i != index]
        return int(choices[int(rng.integers(len(choices)))])


class ParameterSpace:
    """An ordered, immutable collection of :class:`Parameter` objects.

    Provides genome encoding (value <-> index vectors), permutation
    counting, uniform sampling, and subspace selection -- everything the
    GA and the RL subset picker need.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in space")
        self._params: tuple[Parameter, ...] = tuple(parameters)
        self._by_name: dict[str, Parameter] = {p.name: p for p in self._params}

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, key: str | int) -> Parameter:
        if isinstance(key, int):
            return self._params[key]
        return self._by_name[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterSpace):
            return NotImplemented
        return self._params == other._params

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParameterSpace({[p.name for p in self._params]})"

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names in genome order."""
        return tuple(p.name for p in self._params)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Candidate-value counts in genome order."""
        return tuple(p.cardinality for p in self._params)

    def index_of_name(self, name: str) -> int:
        """Genome position of the parameter called ``name``."""
        for i, p in enumerate(self._params):
            if p.name == name:
                return i
        raise KeyError(name)

    # -- search-space size ---------------------------------------------------

    def permutations(self) -> int:
        """Exact number of distinct configurations in this space."""
        return math.prod(p.cardinality for p in self._params)

    # -- configuration construction -------------------------------------------

    def default_values(self) -> dict[str, Any]:
        """Mapping of every parameter to its library-default value."""
        return {p.name: p.default for p in self._params}

    def random_values(self, rng: np.random.Generator) -> dict[str, Any]:
        """Mapping of every parameter to a uniformly random candidate."""
        return {p.name: p.sample(rng) for p in self._params}

    # -- genome encoding -------------------------------------------------------

    def encode(self, values: Mapping[str, Any]) -> np.ndarray:
        """Encode a name->value mapping as an int index vector in genome
        order.  Missing parameters take their default index."""
        out = np.empty(len(self._params), dtype=np.int64)
        for i, p in enumerate(self._params):
            out[i] = p.index_of(values[p.name]) if p.name in values else p.default_index
        return out

    def decode(self, indices: Sequence[int]) -> dict[str, Any]:
        """Inverse of :meth:`encode`."""
        if len(indices) != len(self._params):
            raise ValueError(
                f"genome length {len(indices)} != space size {len(self._params)}"
            )
        return {p.name: p.values[int(i)] for p, i in zip(self._params, indices)}

    def normalized(self, indices: Sequence[int]) -> np.ndarray:
        """Map an index vector to [0, 1]^n (index / (cardinality-1)); used
        as NN features.  Parameters with a single value map to 0."""
        out = np.empty(len(self._params), dtype=np.float64)
        for j, (p, i) in enumerate(zip(self._params, indices)):
            out[j] = 0.0 if p.cardinality == 1 else int(i) / (p.cardinality - 1)
        return out

    # -- subspaces ---------------------------------------------------------------

    def subset(self, names: Sequence[str]) -> "ParameterSpace":
        """A new space containing only ``names``, preserving this space's
        order (not the order of ``names``)."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        return ParameterSpace([p for p in self._params if p.name in wanted])


# -- cross-parameter constraints ----------------------------------------------------
#
# A candidate-value set bounds each parameter individually, but nothing in
# the genome encoding stops the GA from assembling *combinations* that no
# real stack would accept: a stripe count above the file system's OST
# count, more collective-buffering aggregators than MPI ranks, an HDF5
# alignment coarser than the Lustre stripe it is meant to align with.
# Exploring those wastes generations (Lustre/ROMIO silently clamp them,
# so whole regions of the genome space alias to the same behaviour) and
# makes reported "best" configurations unreproducible on the testbed.
#
# The registry below makes the rules declarative: each constraint can
# *check* an assignment and *repair* it deterministically (always by
# lowering the offending parameter to the largest candidate that
# satisfies the rule, so repair is idempotent and order-stable).


@dataclass(frozen=True)
class ConstraintContext:
    """Run-scale facts constraints are evaluated against.

    ``None`` for a field means "unknown": constraints needing it are
    skipped, so an unbound registry never rejects anything the candidate
    sets allow.
    """

    #: Object storage targets of the file system (bounds stripe count).
    n_osts: int | None = None
    #: Total MPI ranks of the tuned job (bounds aggregator count).
    n_procs: int | None = None

    def __post_init__(self) -> None:
        if self.n_osts is not None and self.n_osts < 1:
            raise ValueError("n_osts must be >= 1 (or None)")
        if self.n_procs is not None and self.n_procs < 1:
            raise ValueError("n_procs must be >= 1 (or None)")

    @classmethod
    def for_run(cls, platform: Any, workload: Any = None) -> "ConstraintContext":
        """Context for tuning ``workload`` on ``platform`` (objects with
        ``n_osts`` / ``n_procs`` attributes; either may be None)."""
        n_osts = getattr(platform, "n_osts", None) if platform is not None else None
        if workload is not None:
            n_procs = getattr(workload, "n_procs", None)
        else:
            n_procs = getattr(platform, "total_procs", None) if platform is not None else None
        return cls(n_osts=n_osts, n_procs=n_procs)


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated rule, with an actionable suggestion."""

    constraint: str
    parameter: str
    message: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.message}"


class ConstraintViolationError(ValueError):
    """A configuration failed strict validation.

    Carries the individual :class:`ConstraintViolation` entries so
    callers (the CLI) can render each with its suggested fix.
    """

    def __init__(self, violations: Sequence[ConstraintViolation]):
        self.violations = tuple(violations)
        lines = "; ".join(str(v) for v in self.violations)
        super().__init__(f"configuration violates {len(self.violations)} constraint(s): {lines}")


def _largest_candidate_leq(param: Parameter, bound: int) -> Any | None:
    """The largest numeric candidate <= bound (None when all exceed it)."""
    ok = [v for v in param.values if isinstance(v, (int, float)) and v <= bound]
    return max(ok) if ok else None


class UpperBoundConstraint:
    """``param <= bound(context)`` for a numeric parameter.

    ``bound`` maps a :class:`ConstraintContext` to the inclusive limit,
    or to ``None`` when the context does not pin one (constraint
    skipped).  Repair clamps to the largest candidate within the bound
    (or the smallest candidate overall if every candidate exceeds it --
    validate still reports that residue).
    """

    def __init__(self, param: str, bound: Callable[[ConstraintContext], int | None],
                 name: str, description: str):
        self.param = param
        self.bound = bound
        self.name = name
        self.description = description

    def parameters(self) -> tuple[str, ...]:
        return (self.param,)

    def check(self, values: Mapping[str, Any], space: ParameterSpace,
              context: ConstraintContext) -> ConstraintViolation | None:
        if self.param not in space:
            return None
        limit = self.bound(context)
        if limit is None:
            return None
        value = values[self.param]
        if value <= limit:
            return None
        suggestion = _largest_candidate_leq(space[self.param], limit)
        hint = (
            f"; repair would set {self.param}={suggestion}"
            if suggestion is not None
            else f"; no candidate value of {self.param} fits (smallest is "
                 f"{min(space[self.param].values)})"
        )
        return ConstraintViolation(
            constraint=self.name,
            parameter=self.param,
            message=f"{self.param}={value} exceeds {self.description} ({limit}){hint}",
        )

    def repair(self, values: dict[str, Any], space: ParameterSpace,
               context: ConstraintContext) -> bool:
        if self.param not in space:
            return False
        limit = self.bound(context)
        if limit is None or values[self.param] <= limit:
            return False
        candidate = _largest_candidate_leq(space[self.param], limit)
        if candidate is None:
            candidate = min(space[self.param].values)
        if values[self.param] == candidate:
            return False
        values[self.param] = candidate
        return True


class DivisibilityConstraint:
    """``dividend % divisor == 0`` between two size parameters.

    The finer parameter (``divisor``) must evenly divide the coarser one
    (``dividend``); repair lowers the divisor to the largest candidate
    that divides the current dividend value.  Non-positive values (e.g.
    the alignment-off sentinel ``1``) always satisfy the rule as long as
    they divide.
    """

    def __init__(self, divisor: str, dividend: str, name: str, description: str):
        self.divisor = divisor
        self.dividend = dividend
        self.name = name
        self.description = description

    def parameters(self) -> tuple[str, ...]:
        return (self.divisor, self.dividend)

    def _divides(self, divisor: Any, dividend: Any) -> bool:
        if not isinstance(divisor, int) or not isinstance(dividend, int):
            return True
        if divisor <= 0 or dividend <= 0:
            return True
        return dividend % divisor == 0

    def check(self, values: Mapping[str, Any], space: ParameterSpace,
              context: ConstraintContext) -> ConstraintViolation | None:
        if self.divisor not in space or self.dividend not in space:
            return None
        a, b = values[self.divisor], values[self.dividend]
        if self._divides(a, b):
            return None
        fix = self._best_divisor(space[self.divisor], b)
        hint = f"; repair would set {self.divisor}={fix}" if fix is not None else ""
        return ConstraintViolation(
            constraint=self.name,
            parameter=self.divisor,
            message=f"{self.divisor}={a} does not divide {self.dividend}={b} "
                    f"({self.description}){hint}",
        )

    def _best_divisor(self, param: Parameter, dividend: Any) -> Any | None:
        ok = [
            v for v in param.values
            if isinstance(v, int) and self._divides(v, dividend)
        ]
        return max(ok) if ok else None

    def repair(self, values: dict[str, Any], space: ParameterSpace,
               context: ConstraintContext) -> bool:
        if self.divisor not in space or self.dividend not in space:
            return False
        a, b = values[self.divisor], values[self.dividend]
        if self._divides(a, b):
            return False
        candidate = self._best_divisor(space[self.divisor], b)
        if candidate is None:
            candidate = min(v for v in space[self.divisor].values if isinstance(v, int))
        if values[self.divisor] == candidate:
            return False
        values[self.divisor] = candidate
        return True


#: Repair passes before declaring non-convergence (each pass only lowers
#: values, so the fixed point is reached in at most one pass per
#: constraint; the margin is defensive).
_MAX_REPAIR_PASSES = 8


class ConstraintRegistry:
    """An ordered set of cross-parameter constraints over one space.

    ``validate`` is the strict gate for user-supplied configurations
    (raises :class:`ConstraintViolationError` with one actionable line
    per violation); ``repair`` is the deterministic, idempotent projection
    the GA applies to every bred genome so variation can never emit an
    invalid individual.  Because every repair step only *lowers* the
    offending parameter to the largest satisfying candidate, repair
    converges to the same fixed point whatever order the constraints are
    applied in (chaotic iteration of deflationary monotone operators).
    """

    def __init__(
        self,
        space: ParameterSpace,
        constraints: Sequence[Any],
        context: ConstraintContext | None = None,
    ):
        self.space = space
        self.constraints = tuple(constraints)
        self.context = context if context is not None else ConstraintContext()

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.constraints)

    def with_context(self, context: ConstraintContext) -> "ConstraintRegistry":
        """The same rules bound to a different run context."""
        return ConstraintRegistry(self.space, self.constraints, context)

    def fingerprint(self) -> str:
        """A process-stable hex digest of the registry's behaviour:
        the parameter space, each rule's identity (type, name, governed
        parameters, description) and the bound run context.

        Two registries with equal fingerprints validate and repair
        identically, so persisted evaluation artefacts keyed by this
        digest can be shared; changing a rule, the rule order, or the
        context (``n_osts``/``n_procs``) changes the digest.
        """
        h = hashlib.blake2b(digest_size=16)
        parts = (
            tuple(self.space.names),
            tuple(
                (
                    type(c).__name__,
                    getattr(c, "name", ""),
                    tuple(c.parameters()) if hasattr(c, "parameters") else (),
                    getattr(c, "description", ""),
                )
                for c in self.constraints
            ),
            (self.context.n_osts, self.context.n_procs),
        )
        h.update(repr(parts).encode())
        return h.hexdigest()

    def violations(
        self, values: Mapping[str, Any], context: ConstraintContext | None = None
    ) -> list[ConstraintViolation]:
        """Every violated constraint for a full name->value assignment."""
        ctx = context if context is not None else self.context
        out = []
        for constraint in self.constraints:
            violation = constraint.check(values, self.space, ctx)
            if violation is not None:
                out.append(violation)
        return out

    def validate(
        self, values: Mapping[str, Any], context: ConstraintContext | None = None
    ) -> None:
        """Strict gate: raise :class:`ConstraintViolationError` listing
        every violation (with its suggested repair) if any rule fails."""
        found = self.violations(values, context)
        if found:
            raise ConstraintViolationError(found)

    def repair(
        self, values: Mapping[str, Any], context: ConstraintContext | None = None
    ) -> dict[str, Any]:
        """A constraint-clean copy of ``values``.

        Deterministic and idempotent: repairing an already-clean
        assignment returns an equal dict, and repairing a repaired one
        changes nothing.  Runs the constraint list to a fixed point so
        one repair cannot un-satisfy an earlier rule.
        """
        ctx = context if context is not None else self.context
        out = dict(values)
        for _ in range(_MAX_REPAIR_PASSES):
            changed = False
            for constraint in self.constraints:
                changed |= constraint.repair(out, self.space, ctx)
            if not changed:
                return out
        raise RuntimeError(
            f"constraint repair did not converge in {_MAX_REPAIR_PASSES} passes "
            f"(registry {self.constraints!r} is not deflationary)"
        )  # pragma: no cover - guarded by construction

    def repair_genome(
        self,
        indices: Sequence[int] | np.ndarray,
        context: ConstraintContext | None = None,
    ) -> np.ndarray:
        """Genome-level repair: decode, repair, re-encode.  Returns the
        input array unchanged (same object) when already clean, so GA
        callers can cheaply detect no-ops."""
        values = self.space.decode(indices)
        repaired = self.repair(values, context)
        if repaired == values:
            return np.asarray(indices, dtype=np.int64)
        return self.space.encode(repaired)


def default_constraints(
    space: ParameterSpace | None = None,
    context: ConstraintContext | None = None,
) -> ConstraintRegistry:
    """The stock rules for the paper's HDF5/MPI-IO/Lustre space.

    ===================  =======================================================
    constraint           rule
    ===================  =======================================================
    stripe-vs-osts       ``striping_factor <= platform OST count``
    aggregators-vs-ranks ``cb_nodes <= job MPI ranks``
    alignment-divides    ``striping_unit % alignment == 0`` (HDF5 objects land
                         on stripe boundaries)
    stripe-divides-cb    ``cb_buffer_size % striping_unit == 0`` (each ROMIO
                         flush covers whole stripes)
    ===================  =======================================================

    Constraints referring to parameters absent from ``space`` are kept
    but skip silently, so subset spaces work unchanged.
    """
    if space is None:
        space = TUNED_SPACE
    return ConstraintRegistry(
        space,
        (
            UpperBoundConstraint(
                "striping_factor",
                lambda ctx: ctx.n_osts,
                name="stripe-vs-osts",
                description="the file system's OST count",
            ),
            UpperBoundConstraint(
                "cb_nodes",
                lambda ctx: ctx.n_procs,
                name="aggregators-vs-ranks",
                description="the job's MPI rank count",
            ),
            DivisibilityConstraint(
                "alignment",
                "striping_unit",
                name="alignment-divides-stripe",
                description="HDF5 alignment must place objects on Lustre "
                            "stripe boundaries",
            ),
            DivisibilityConstraint(
                "striping_unit",
                "cb_buffer_size",
                name="stripe-divides-cb",
                description="collective buffer flushes must cover whole stripes",
            ),
        ),
        context=context,
    )


def _build_tuned_space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter(
                "sieve_buf_size",
                "hdf5",
                (64 * KiB, 256 * KiB, 512 * KiB, MiB, 4 * MiB, 16 * MiB, 32 * MiB, 64 * MiB),
                default=64 * KiB,
                description="HDF5 data-sieving buffer size (H5Pset_sieve_buf_size)",
            ),
            Parameter(
                "chunk_cache_size",
                "hdf5",
                (MiB, 4 * MiB, 16 * MiB, 64 * MiB, 128 * MiB, 256 * MiB, 512 * MiB, GiB),
                default=MiB,
                description="HDF5 raw-data chunk cache size (H5Pset_cache)",
            ),
            Parameter(
                "alignment",
                "hdf5",
                (1, 64 * KiB, 256 * KiB, 512 * KiB, MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB),
                default=1,
                description="HDF5 object alignment threshold (H5Pset_alignment)",
            ),
            Parameter(
                "meta_block_size",
                "hdf5",
                (2 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, MiB, 2 * MiB, 4 * MiB, 16 * MiB),
                default=2 * KiB,
                description="HDF5 metadata block aggregation size (H5Pset_meta_block_size)",
            ),
            Parameter(
                "coll_metadata_ops",
                "hdf5",
                (False, True),
                default=False,
                kind="boolean",
                description="Collective HDF5 metadata reads (H5Pset_all_coll_metadata_ops)",
            ),
            Parameter(
                "mdc_config",
                "hdf5",
                ("default", "small", "large", "adaptive"),
                default="default",
                kind="categorical",
                description="HDF5 metadata cache configuration (H5Pset_mdc_config)",
            ),
            Parameter(
                "coll_metadata_write",
                "hdf5",
                (False, True),
                default=False,
                kind="boolean",
                description="Collective HDF5 metadata writes (H5Pset_coll_metadata_write)",
            ),
            Parameter(
                "striping_factor",
                "lustre",
                (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 248),
                default=1,
                description="Lustre stripe count (number of OSTs a file spans)",
            ),
            Parameter(
                "striping_unit",
                "lustre",
                (128 * KiB, 256 * KiB, 512 * KiB, MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB),
                default=MiB,
                description="Lustre stripe size",
            ),
            Parameter(
                "cb_nodes",
                "mpiio",
                (1, 2, 4, 8, 16, 32, 64, 128, 256, 384, 512, 640, 768, 896, 1024, 1600),
                default=4,
                description="ROMIO two-phase collective-buffering aggregator count",
            ),
            Parameter(
                "cb_buffer_size",
                "mpiio",
                (MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB, 128 * MiB),
                default=16 * MiB,
                description="ROMIO collective buffer size per aggregator",
            ),
            Parameter(
                "romio_collective",
                "mpiio",
                (False, True),
                default=False,
                kind="boolean",
                description="Enable two-phase collective I/O (romio_cb_write/read)",
            ),
        ]
    )


#: The 12-parameter space tuned throughout the paper's evaluation.
TUNED_SPACE: ParameterSpace = _build_tuned_space()


@dataclass(frozen=True)
class LibraryCatalog:
    """Parameter *counts* of a real I/O library, used for Figure 1.

    The counts are lower bounds drawn from each library's public
    configuration surface; Figure 1 only needs relative magnitudes.
    """

    name: str
    discrete: int
    continuous: int

    def permutations(
        self, per_discrete: int = 2, per_continuous: int = 5
    ) -> int:
        """Lower-bound permutation count with the paper's rule of two
        values per discrete parameter and five per continuous one."""
        if per_discrete < 1 or per_continuous < 1:
            raise ValueError("value counts must be >= 1")
        return per_discrete**self.discrete * per_continuous**self.continuous

    @property
    def total_parameters(self) -> int:
        return self.discrete + self.continuous


#: Figure 1's library population.  Counts are conservative lower bounds on
#: each library's user-visible tunables.
LIBRARY_CATALOG: dict[str, LibraryCatalog] = {
    c.name: c
    for c in (
        LibraryCatalog("HDF5", discrete=27, continuous=6),
        LibraryCatalog("PNetCDF", discrete=12, continuous=4),
        LibraryCatalog("MPI", discrete=22, continuous=3),
        LibraryCatalog("ADIOS", discrete=18, continuous=5),
        LibraryCatalog("OpenSHMEMX", discrete=10, continuous=2),
        LibraryCatalog("Hermes", discrete=14, continuous=6),
    )
}


def stack_permutations(
    libraries: Sequence[str], per_discrete: int = 2, per_continuous: int = 5
) -> int:
    """Permutation count of a stack composed of ``libraries`` (Figure 1's
    worst case where every layer's parameters multiply)."""
    total = 1
    for name in libraries:
        try:
            catalog = LIBRARY_CATALOG[name]
        except KeyError:
            raise KeyError(
                f"unknown library {name!r}; known: {sorted(LIBRARY_CATALOG)}"
            ) from None
        total *= catalog.permutations(per_discrete, per_continuous)
    return total
