"""Application I/O phases.

A workload is a sequence of :class:`IOPhase` objects.  Each phase bundles
the compute time that precedes its I/O, the data request streams it
issues, the metadata traffic, and the HDF5 dataset layout information the
HDF5 layer model needs (chunking).  Phases are already aggregated over
loop iterations: a checkpoint loop of 100 steps appears as one phase whose
streams carry 100 steps' worth of operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .requests import MetadataStream, RequestStream

__all__ = ["IOPhase"]


@dataclass(frozen=True)
class IOPhase:
    """One compute-then-I/O phase of an application run.

    Attributes
    ----------
    name:
        Label for reports ("checkpoint", "analysis_read", "logging"...).
    compute_seconds:
        Wall-clock compute time in this phase (not overlapped with I/O).
    data:
        The data request streams the phase issues.
    metadata:
        Metadata traffic, or ``None`` for pure data phases.
    chunked:
        Whether the HDF5 datasets written/read here use chunked layout.
    chunk_size:
        Chunk size in bytes (only meaningful when ``chunked``).
    working_set_per_proc:
        Bytes of distinct chunks a process touches before revisiting one;
        drives chunk-cache hit modelling.
    tier:
        Storage tier the phase targets: ``"lustre"`` (default) or
        ``"memory"`` after I/O path switching.
    """

    name: str
    compute_seconds: float
    data: tuple[RequestStream, ...]
    metadata: MetadataStream | None = None
    chunked: bool = False
    chunk_size: int = 0
    working_set_per_proc: int = 0
    tier: str = "lustre"

    def __post_init__(self) -> None:
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be >= 0")
        if self.chunked and self.chunk_size <= 0:
            raise ValueError("chunked phases need a positive chunk_size")
        if self.tier not in ("lustre", "memory"):
            raise ValueError(f"unknown tier {self.tier!r}")
        object.__setattr__(self, "data", tuple(self.data))

    # -- derived totals ---------------------------------------------------------

    @property
    def bytes_written(self) -> int:
        return sum(s.total_bytes for s in self.data if s.op == "write")

    @property
    def bytes_read(self) -> int:
        return sum(s.total_bytes for s in self.data if s.op == "read")

    @property
    def write_ops(self) -> int:
        return sum(s.total_ops for s in self.data if s.op == "write")

    @property
    def read_ops(self) -> int:
        return sum(s.total_ops for s in self.data if s.op == "read")

    # -- transforms --------------------------------------------------------------

    def scaled(self, io_factor: float, compute_factor: float | None = None) -> "IOPhase":
        """Scale I/O volume (and optionally compute) by a factor; used by
        loop reduction."""
        if compute_factor is None:
            compute_factor = io_factor
        return replace(
            self,
            compute_seconds=self.compute_seconds * compute_factor,
            data=tuple(s.scaled_ops(io_factor) for s in self.data),
            metadata=None if self.metadata is None else self.metadata.scaled_ops(io_factor),
        )

    def switched_to_memory(self) -> "IOPhase":
        """Retarget the phase at the node-local memory tier (I/O path
        switching: paths prefixed with /dev/shm)."""
        return replace(self, tier="memory")
