"""POSIX / node-local memory tier model.

Two roles:

* Serving streams that I/O path switching redirected to ``/dev/shm``:
  node-local memory bandwidth, no RPCs, no lock contention -- fast but
  blind to Lustre parameters (which is exactly the accuracy trade-off the
  paper describes for path switching).
* Accounting the per-operation syscall cost that every stream pays
  regardless of tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import Platform
from .requests import MetadataStream, RequestStream

__all__ = ["MemoryService", "serve_memory", "serve_memory_metadata"]


@dataclass(frozen=True)
class MemoryService:
    """Timing for one stream served from node-local memory."""

    seconds: float
    achieved_bandwidth: float


def serve_memory(stream: RequestStream, platform: Platform) -> MemoryService:
    """Service time for a stream against tmpfs (/dev/shm).

    Bandwidth scales with the nodes the issuing processes occupy; each
    operation still pays the syscall + page-cache overhead.
    """
    nodes = stream.nodes_spanned(platform.n_nodes, platform.procs_per_node)
    bandwidth = nodes * platform.memory_bandwidth
    transfer = stream.total_bytes / bandwidth
    issue = stream.total_ops * platform.syscall_overhead / max(1, stream.n_procs)
    seconds = transfer + issue
    return MemoryService(seconds=seconds, achieved_bandwidth=stream.total_bytes / seconds)


def serve_memory_metadata(metadata: MetadataStream | None, platform: Platform) -> float:
    """Metadata against tmpfs: in-memory dentry operations, no MDS."""
    if metadata is None or metadata.total_ops == 0:
        return 0.0
    return metadata.ops_per_proc * platform.syscall_overhead * 2.0
