"""Statistical request-stream representation.

The simulator does not replay every I/O operation of a petascale run;
instead each application phase is described by a :class:`RequestStream`: a
capped, representative *sample* of request sizes plus exact totals.  Layer
models transform streams (coalescing, aggregation, alignment) by operating
on the sample vector with numpy, and scale results by ``total_ops /
len(sample)``.  This keeps a full GA tuning run (hundreds of evaluations)
in the milliseconds range while preserving the size-distribution effects
the stack parameters act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

import numpy as np

__all__ = ["RequestStream", "MetadataStream", "MAX_SAMPLE"]

#: Upper bound on the per-stream sample length.
MAX_SAMPLE = 2048

OpKind = Literal["write", "read"]


@dataclass(frozen=True)
class RequestStream:
    """A sampled stream of data requests issued by one phase.

    Attributes
    ----------
    op:
        ``"write"`` or ``"read"``.
    sizes:
        1-D array of sampled request sizes in bytes.  ``len(sizes) <=
        MAX_SAMPLE``; the sample is assumed representative of the whole
        stream.
    total_ops:
        True number of requests across the phase (all processes).
    total_bytes:
        True number of bytes moved across the phase.
    n_procs:
        Processes issuing requests concurrently.
    shared_file:
        True for single-shared-file access, False for file-per-process.
    contiguity:
        Fraction in [0, 1] of requests that are sequential with respect to
        the previous request of the same process (1.0 = perfectly
        contiguous per process).
    interleave:
        In [0, 1]: 0 means each process owns a large contiguous region of
        the file; 1 means fine-grained round-robin interleaving across
        processes (the worst case for lock contention on a shared file).
    collective_capable:
        Whether the requests were issued through an interface that the
        MPI-IO layer may collectivise (e.g. H5Dwrite with a transfer
        property list).  Raw POSIX logging writes are not.
    alignment:
        The byte boundary all request offsets are aligned to (1 = none).
        Set by the HDF5 layer when ``H5Pset_alignment`` is active.
    nodes:
        Number of nodes the issuing processes span; 0 (default) means
        "infer by densely packing n_procs onto nodes".  The MPI-IO layer
        sets this explicitly because aggregators are placed one per node.
    """

    op: OpKind
    sizes: np.ndarray
    total_ops: int
    total_bytes: int
    n_procs: int
    shared_file: bool = True
    contiguity: float = 1.0
    interleave: float = 0.0
    collective_capable: bool = True
    alignment: int = 1
    nodes: int = 0

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ValueError("sizes must be a non-empty 1-D array")
        if np.any(sizes <= 0):
            raise ValueError("request sizes must be positive")
        if sizes.size > MAX_SAMPLE:
            raise ValueError(f"sample longer than MAX_SAMPLE={MAX_SAMPLE}")
        if self.total_ops <= 0 or self.total_bytes <= 0:
            raise ValueError("totals must be positive")
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        for name in ("contiguity", "interleave"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.op not in ("write", "read"):
            raise ValueError(f"op must be 'write' or 'read', got {self.op!r}")
        if self.alignment < 1:
            raise ValueError("alignment must be >= 1")
        if self.nodes < 0:
            raise ValueError("nodes must be >= 0")
        object.__setattr__(self, "sizes", sizes)

    def nodes_spanned(self, n_nodes: int, procs_per_node: int) -> int:
        """Nodes the issuing processes occupy on a given machine shape."""
        if self.nodes > 0:
            return max(1, min(self.nodes, n_nodes))
        packed = -(-self.n_procs // procs_per_node)  # ceil div
        return max(1, min(packed, n_nodes))

    # -- derived quantities ---------------------------------------------------

    @property
    def mean_size(self) -> float:
        """Mean request size of the sample, in bytes."""
        return float(self.sizes.mean())

    @property
    def scale(self) -> float:
        """Multiplier from sample counts to true counts."""
        return self.total_ops / self.sizes.size

    @property
    def ops_per_proc(self) -> float:
        return self.total_ops / self.n_procs

    # -- constructors --------------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        op: OpKind,
        request_size: int,
        total_ops: int,
        n_procs: int,
        **kwargs: object,
    ) -> "RequestStream":
        """A stream where every request has the same size."""
        sample_len = min(total_ops, MAX_SAMPLE)
        sizes = np.full(sample_len, float(request_size))
        return cls(
            op=op,
            sizes=sizes,
            total_ops=total_ops,
            total_bytes=request_size * total_ops,
            n_procs=n_procs,
            **kwargs,  # type: ignore[arg-type]
        )

    @classmethod
    def lognormal(
        cls,
        op: OpKind,
        median_size: float,
        sigma: float,
        total_ops: int,
        n_procs: int,
        rng: np.random.Generator,
        **kwargs: object,
    ) -> "RequestStream":
        """A stream with lognormally distributed request sizes (the shape
        Darshan logs commonly show for mixed metadata/data workloads)."""
        sample_len = min(total_ops, MAX_SAMPLE)
        sizes = np.maximum(
            1.0, rng.lognormal(mean=np.log(median_size), sigma=sigma, size=sample_len)
        )
        mean = float(sizes.mean())
        return cls(
            op=op,
            sizes=sizes,
            total_ops=total_ops,
            total_bytes=int(round(mean * total_ops)),
            n_procs=n_procs,
            **kwargs,  # type: ignore[arg-type]
        )

    # -- transforms (used by layer models) ----------------------------------------

    def scaled_ops(self, factor: float) -> "RequestStream":
        """Multiply the operation count (and bytes) by ``factor`` keeping
        the size distribution -- used by loop reduction to extrapolate a
        reduced kernel back to full-application volume."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            total_ops=max(1, int(round(self.total_ops * factor))),
            total_bytes=max(1, int(round(self.total_bytes * factor))),
        )

    def with_sizes(
        self,
        sizes: np.ndarray,
        total_ops: int,
        total_bytes: int | None = None,
        **overrides: object,
    ) -> "RequestStream":
        """A new stream with a transformed size sample and totals."""
        if total_bytes is None:
            total_bytes = self.total_bytes  # transforms usually conserve bytes
        return replace(
            self,
            sizes=np.asarray(sizes, dtype=np.float64),
            total_ops=total_ops,
            total_bytes=total_bytes,
            **overrides,  # type: ignore[arg-type]
        )

    def aligned(self, boundary: int) -> "RequestStream":
        """Mark the stream's offsets aligned to ``boundary``.  Models
        ``H5Pset_alignment``: objects past the threshold start on
        multiples of the boundary.  The padding becomes holes in the
        file, not transferred bytes, so sizes and totals are unchanged --
        what changes is how requests map onto stripes downstream."""
        if boundary <= 1:
            return self
        return self.with_sizes(
            self.sizes,
            self.total_ops,
            total_bytes=self.total_bytes,
            alignment=boundary,
        )

    def coalesce(self, buffer_size: int) -> "RequestStream":
        """Greedily merge consecutive sequential requests into buffers of
        at most ``buffer_size`` bytes.

        Only the contiguous fraction of the stream can merge; the result's
        op count shrinks accordingly.  Models both HDF5 data sieving and
        write-behind style buffering.
        """
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        mean = self.mean_size
        if mean >= buffer_size or self.contiguity <= 0.0:
            return self
        # How many consecutive requests fit in one buffer, on average.
        per_buffer = max(1.0, buffer_size / mean)
        # A run of sequential requests has expected length 1/(1-c); merging
        # is limited by both the run length and the buffer capacity.
        expected_run = 1.0 / max(1e-9, 1.0 - self.contiguity) if self.contiguity < 1.0 else per_buffer
        merge = min(per_buffer, max(1.0, expected_run))
        new_total = max(self.n_procs, int(round(self.total_ops / merge)))
        new_sizes = np.minimum(self.sizes * merge, float(buffer_size))
        return self.with_sizes(new_sizes, new_total)


@dataclass(frozen=True)
class MetadataStream:
    """Metadata operations issued by one phase (creates, opens, attribute
    writes, dataset extensions...).

    Attributes
    ----------
    total_ops:
        True number of metadata operations across all processes.
    n_procs:
        Processes issuing them.
    per_proc_redundant:
        True when every process performs the *same* metadata operation
        (e.g. all ranks open the same file and read the same object
        headers).  This is the case collective metadata I/O collapses:
        one rank performs the operation and broadcasts the result.
    write_fraction:
        Fraction of the operations that modify metadata (in [0, 1]).
    """

    total_ops: int
    n_procs: int
    per_proc_redundant: bool = True
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.total_ops < 0:
            raise ValueError("total_ops must be >= 0")
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")

    @property
    def ops_per_proc(self) -> float:
        return self.total_ops / self.n_procs

    def scaled_ops(self, factor: float) -> "MetadataStream":
        """Multiply the operation count by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, total_ops=max(0, int(round(self.total_ops * factor))))
