"""Size and time units used throughout the I/O stack simulator.

All byte quantities in the simulator are plain integers (bytes); all
durations are floats in seconds unless a function name says otherwise
(e.g. :func:`seconds_to_minutes`).  Bandwidths are bytes/second except at
reporting boundaries, where :func:`bytes_per_sec_to_mb_per_sec` converts to
the MB/s the paper quotes.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def bytes_per_sec_to_mb_per_sec(value: float) -> float:
    """Convert a bandwidth in bytes/second to MB/s (decimal megabytes)."""
    return value / MB


def mb_per_sec_to_bytes_per_sec(value: float) -> float:
    """Convert a bandwidth in MB/s (decimal megabytes) to bytes/second."""
    return value * MB


def seconds_to_minutes(value: float) -> float:
    """Convert a duration in seconds to minutes."""
    return value / MINUTE


def minutes_to_seconds(value: float) -> float:
    """Convert a duration in minutes to seconds."""
    return value * MINUTE


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(2048)
    == '2.0 KiB'``.  Useful in reports and ``__repr__`` methods."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth in human units (MB/s or GB/s, decimal)."""
    mbps = bytes_per_sec_to_mb_per_sec(bytes_per_sec)
    if mbps >= 1000.0:
        return f"{mbps / 1000.0:.2f} GB/s"
    return f"{mbps:.2f} MB/s"
