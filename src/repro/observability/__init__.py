"""Observability: structured run tracing, metrics, and profiling.

The substrate the paper's evaluation figures are drawn from: a
:class:`TraceRecorder` appending schema-versioned JSONL events as a run
unfolds (``NullRecorder`` keeps untraced runs bit-identical and
overhead-free), a :class:`MetricsRegistry` absorbing the scattered
fastpath/resilience/guardrail counters into one queryable snapshot, and
:func:`maybe_span` profiling hooks around the pipeline's hot paths.
``tunio-report`` (:mod:`repro.observability.report`, imported lazily to
keep this package dependency-light) reconstructs curves and summaries
from a trace file alone.
"""

from .events import ENVELOPE_KEYS, EVENT_TYPES, SCHEMA_VERSION, validate_event
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    fastpath_line,
    guardrails_line,
    resilience_line,
    snapshot_degraded,
)
from .profiling import (
    Profiler,
    SpanStats,
    activate,
    active_profiler,
    deactivate,
    maybe_span,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
    iter_trace,
    read_trace,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "ENVELOPE_KEYS",
    "validate_event",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "iter_trace",
    "read_trace",
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "fastpath_line",
    "resilience_line",
    "guardrails_line",
    "snapshot_degraded",
    "Profiler",
    "SpanStats",
    "activate",
    "deactivate",
    "active_profiler",
    "maybe_span",
]
