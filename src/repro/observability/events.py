"""The run-trace event schema.

Every record a :class:`~repro.observability.recorder.TraceRecorder`
emits is one JSON object per line (JSONL) with a fixed envelope:

``schema``
    Integer schema version (:data:`SCHEMA_VERSION`); readers reject
    traces from a newer schema instead of misparsing them.
``event``
    The event type, one of :data:`EVENT_TYPES`.
``seq``
    1-based emission sequence number, strictly increasing within one
    trace file (detects torn/reordered traces).
``wall_s``
    Wall-clock seconds since the recorder was opened (profiling and
    overhead analysis; no tuning decision ever reads it).
``sim_minutes``
    Simulated tuning-clock minutes at emission time (present once the
    recorder is bound to a run's :class:`~repro.iostack.clock.SimulatedClock`).

Event types and their payload fields (the table mirrored in the README
and DESIGN "Observability architecture" sections):

=================  ==============================================================
event              payload fields
=================  ==============================================================
``run_args``       CLI invocation: ``workload``, ``tuner``, ``seed``,
                   ``iterations``, ``resumed``
``run_start``      ``tuner``, ``workload``, ``max_iterations``,
                   ``population_size``, ``repeats``, ``resumed``
``baseline``       ``perf`` (MB/s), ``replayed``
``evaluation``     ``iteration`` (``None`` for the baseline), ``genome``,
                   ``perf``, ``replayed``
``generation``     ``iteration``, ``iteration_perf``, ``best_perf``,
                   ``elapsed_minutes``, ``evaluations``, ``subset``,
                   ``replayed``
``agent_decision`` ``agent`` (``subset-picker`` | ``stopper``),
                   ``iteration``, and per-agent fields (``subset``,
                   ``degraded``, ``stop``)
``guardrail_trip`` ``guardrail``, ``kind``, ``detail``, ``iteration``
``cache``          ``op`` (``hit`` | ``miss`` | ``store`` | ``evict``)
``cache_prewarm``  journal-resume cache warming summary: ``lookups``,
                   ``hits``, ``builds``
``retry``          ``kind`` (``retry`` | ``timeout`` | ``quarantine`` |
                   ``fallback``), ``config``, optional ``attempt``/``detail``
``run_end``        ``stop_reason``, ``stopped_at``, ``best_perf``,
                   ``baseline_perf``, ``total_minutes``,
                   ``total_evaluations``, ``best_genome``, ``eval_stats``
                   (the :class:`~repro.iostack.evalcache.EvaluationStats`
                   dict), ``guardrail_trips``
=================  ==============================================================

The recorder is append-only and write-only from the pipeline's point of
view: nothing in a tuning run ever reads the trace back, consumes RNG to
produce it, or advances the simulated clock for it, which is why a
traced run is bit-identical to an untraced one.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["SCHEMA_VERSION", "EVENT_TYPES", "validate_event"]

SCHEMA_VERSION = 1

EVENT_TYPES = frozenset(
    {
        "run_args",
        "run_start",
        "baseline",
        "evaluation",
        "generation",
        "agent_decision",
        "guardrail_trip",
        "cache",
        "cache_prewarm",
        "retry",
        "run_end",
    }
)

#: Envelope keys every event carries (``sim_minutes`` joins once the
#: recorder is bound to a simulated clock).
ENVELOPE_KEYS = ("schema", "event", "seq", "wall_s")


def validate_event(record: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` when ``record`` is not a valid trace
    event of a schema this reader understands."""
    if not isinstance(record, Mapping):
        raise ValueError(f"trace record must be an object, got {type(record).__name__}")
    schema = record.get("schema")
    if not isinstance(schema, int):
        raise ValueError("trace record has no integer 'schema' field")
    if schema > SCHEMA_VERSION:
        raise ValueError(
            f"trace schema {schema} is newer than this reader "
            f"(supports <= {SCHEMA_VERSION})"
        )
    event = record.get("event")
    if event not in EVENT_TYPES:
        raise ValueError(f"unknown trace event type {event!r}")
    if not isinstance(record.get("seq"), int):
        raise ValueError("trace record has no integer 'seq' field")
