"""The metrics registry: one queryable surface for run counters.

Before this module, run accounting was scattered across
:class:`~repro.iostack.evalcache.EvaluationStats` (fastpath counters on
the result), :class:`~repro.iostack.evalcache.CacheStats` (live cache
counters), :class:`~repro.tuners.resilience.ResilienceStats` and the
guardrail trip list -- each with its own ad-hoc ``describe`` string.
:class:`MetricsRegistry` absorbs them into named counters, gauges and
timers with a single :meth:`~MetricsRegistry.snapshot`; the CLI summary
lines (``fastpath:`` / ``resilience:`` / ``guardrails:``) are rendered
*from the snapshot* by :func:`fastpath_line` and friends, so
``tunio-tune`` and ``tunio-report`` can never drift apart.

Everything here is passive arithmetic on already-collected numbers:
building a registry cannot perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "fastpath_line",
    "resilience_line",
    "guardrails_line",
    "snapshot_degraded",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.iostack.evalcache import CacheStats, EvaluationStats
    from repro.tuners.base import TuningResult

    from .profiling import Profiler


@dataclass
class Counter:
    """A monotonically increasing integer."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge for deltas")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time float value."""

    value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Timer:
    """Aggregated duration observations (seconds)."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = field(default=float("inf"))
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("durations must be >= 0")
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class MetricsRegistry:
    """Named counters, gauges and timers with create-on-first-use
    accessors and a JSON-ready :meth:`snapshot`."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    # -- accessors ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges or name in self._timers

    def names(self) -> tuple[str, ...]:
        return tuple(
            sorted({*self._counters, *self._gauges, *self._timers})
        )

    # -- snapshot ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All metrics as plain JSON-serialisable values."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "timers": {k: t.as_dict() for k, t in sorted(self._timers.items())},
        }

    # -- absorption of the existing stats surfaces -------------------------------

    def ingest_eval_stats(self, stats: "EvaluationStats") -> None:
        """Absorb a run's fastpath/resilience/guardrail counters."""
        c = self.counter
        c("evaluations").inc(stats.evaluations)
        c("cache.hits").inc(stats.cache_hits)
        c("cache.misses").inc(stats.cache_misses)
        c("cache.evictions").inc(stats.cache_evictions)
        c("cache.prewarm_lookups").inc(stats.prewarm_lookups)
        c("cache.prewarm_hits").inc(stats.prewarm_hits)
        c("cache.prewarm_builds").inc(stats.prewarm_builds)
        c("cache.disk_hits").inc(stats.disk_hits)
        c("cache.disk_misses").inc(stats.disk_misses)
        c("cache.disk_stores").inc(stats.disk_stores)
        c("trace.built").inc(stats.traces_built)
        c("trace.replays").inc(stats.trace_replays)
        c("trace.reuse").inc(stats.trace_reuse)
        c("resilience.retries").inc(stats.retries)
        c("resilience.timeouts").inc(stats.timeouts)
        c("resilience.quarantined").inc(stats.quarantined)
        c("resilience.fallbacks").inc(stats.fallbacks)
        c("faults.injected").inc(stats.faults_injected)
        c("guardrail.trips").inc(stats.guardrail_trips)
        self.gauge("cache.hit_rate").set(stats.cache_hit_rate)

    def ingest_cache_stats(self, stats: "CacheStats") -> None:
        """Absorb a live cache's occupancy."""
        self.gauge("cache.size").set(stats.size)
        self.gauge("cache.maxsize").set(stats.maxsize)
        if stats.disk_hits or stats.disk_misses or stats.disk_stores:
            self.gauge("cache.disk_evictions").set(stats.disk_evictions)
            self.gauge("cache.disk_errors").set(stats.disk_errors)

    def ingest_result(self, result: "TuningResult") -> None:
        """Absorb a finished run: outcome gauges plus its
        :class:`EvaluationStats` when tracked."""
        self.gauge("run.baseline_perf_mbps").set(result.baseline_perf)
        self.gauge("run.best_perf_mbps").set(result.best_perf)
        self.gauge("run.gain_mbps").set(result.gain)
        self.gauge("run.total_minutes").set(result.total_minutes)
        self.counter("run.iterations").inc(len(result.history))
        self.counter("run.total_evaluations").inc(result.total_evaluations)
        if result.eval_stats is not None:
            self.ingest_eval_stats(result.eval_stats)
        elif result.guardrail_trips:
            self.counter("guardrail.trips").inc(len(result.guardrail_trips))

    def ingest_profile(self, profiler: "Profiler") -> None:
        """Absorb a profiler's span timings as timers."""
        for name, stats in profiler.snapshot().items():
            timer = self.timer(f"profile.{name}")
            timer.count += int(stats["count"])
            timer.total_seconds += float(stats["total_seconds"])
            timer.min_seconds = min(timer.min_seconds, float(stats["min_seconds"]))
            timer.max_seconds = max(timer.max_seconds, float(stats["max_seconds"]))

    @classmethod
    def from_run(
        cls,
        result: "TuningResult",
        cache_stats: "CacheStats | None" = None,
        profiler: "Profiler | None" = None,
    ) -> "MetricsRegistry":
        """The registry the CLI builds after a run."""
        registry = cls()
        registry.ingest_result(result)
        if cache_stats is not None:
            registry.ingest_cache_stats(cache_stats)
        if profiler is not None:
            registry.ingest_profile(profiler)
        return registry


# -- summary lines (shared by tunio-tune and tunio-report) -------------------------


def _counters(snapshot: Mapping[str, Any]) -> Mapping[str, int]:
    return snapshot.get("counters", {})


def fastpath_line(snapshot: Mapping[str, Any]) -> str:
    """The ``fastpath:`` summary body, rendered from a registry
    snapshot (same text :meth:`EvaluationStats.describe` produced)."""
    c = _counters(snapshot)
    hits = int(c.get("cache.hits", 0))
    misses = int(c.get("cache.misses", 0))
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    line = (
        f"{int(c.get('evaluations', 0))} evaluations, "
        f"cache hit rate {100.0 * rate:.1f}% "
        f"({hits}/{lookups}), "
        f"trace reuse {int(c.get('trace.reuse', 0))}"
    )
    disk_hits = int(c.get("cache.disk_hits", 0))
    disk_lookups = disk_hits + int(c.get("cache.disk_misses", 0))
    disk_stores = int(c.get("cache.disk_stores", 0))
    if disk_lookups or disk_stores:
        line += f", disk {disk_hits}/{disk_lookups} hits ({disk_stores} stored)"
    return line


def resilience_line(snapshot: Mapping[str, Any]) -> str:
    """The ``resilience:`` summary body."""
    c = _counters(snapshot)
    return (
        f"{int(c.get('faults.injected', 0))} faults injected, "
        f"{int(c.get('resilience.retries', 0))} retries, "
        f"{int(c.get('resilience.timeouts', 0))} timeouts, "
        f"{int(c.get('resilience.quarantined', 0))} quarantined, "
        f"{int(c.get('resilience.fallbacks', 0))} serial fallbacks"
    )


def guardrails_line(trips: Iterable[str]) -> str:
    """The ``guardrails:`` summary body (trip count before dedup, trip
    details deduplicated with first-occurrence order preserved -- the
    exact text ``tunio-tune`` has always printed)."""
    trips = list(trips)
    shown = list(dict.fromkeys(trips))
    return (
        f"{len(trips)} trip(s), degraded to plain-GA behaviour: "
        + "; ".join(shown)
    )


def snapshot_degraded(snapshot: Mapping[str, Any]) -> bool:
    """True when any resilience machinery engaged (mirrors
    :attr:`EvaluationStats.degraded`)."""
    c = _counters(snapshot)
    return bool(
        c.get("resilience.retries", 0)
        or c.get("resilience.timeouts", 0)
        or c.get("resilience.quarantined", 0)
        or c.get("resilience.fallbacks", 0)
        or c.get("faults.injected", 0)
    )
