"""Profiling hooks: where does a tuning run's wall-clock go?

Hot sites in the pipeline wrap themselves in
``with maybe_span("simulator.trace"): ...``.  When no profiler is
active, :func:`maybe_span` returns one shared ``nullcontext`` -- no
allocation, no clock read, nothing measurable -- so the hooks can stay
in the hot paths permanently.  ``tunio-tune --profile`` activates a
:class:`Profiler` around the run and prints its :meth:`~Profiler.report`.

Span timings are *wall-clock only*: they never touch the simulated
clock or the RNG streams, so profiled runs produce bit-identical tuning
histories.

Instrumented span names:

==================  ========================================================
span                around
==================  ========================================================
``simulator.trace`` one noise-free traversal of the Lustre/MPI-IO/HDF5 stack
``nn.forward``      one MLP forward pass (agent inference and training)
``nn.backward``     one MLP backward pass + optimizer step
``journal.fsync``   one journal record write+flush+fsync
==================  ========================================================
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator

__all__ = [
    "SpanStats",
    "Profiler",
    "activate",
    "deactivate",
    "active_profiler",
    "maybe_span",
]


@dataclass
class SpanStats:
    """Accumulated timings of one span name."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = field(default=float("inf"))
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class Profiler:
    """Accumulates :class:`SpanStats` per span name."""

    def __init__(self) -> None:
        self._spans: dict[str, SpanStats] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = SpanStats()
            stats.add(time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        stats = self._spans.get(name)
        if stats is None:
            stats = self._spans[name] = SpanStats()
        stats.add(seconds)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-span timing dicts, sorted by total time descending."""
        ordered = sorted(
            self._spans.items(), key=lambda item: item[1].total_seconds, reverse=True
        )
        return {name: stats.as_dict() for name, stats in ordered}

    def report(self) -> str:
        """A fixed-width table of span timings for the CLI."""
        if not self._spans:
            return "profile: no spans recorded"
        header = (
            f"{'span':<18} {'count':>8} {'total_ms':>10} "
            f"{'mean_us':>10} {'max_us':>10}"
        )
        lines = ["profile:", header]
        for name, stats in self.snapshot().items():
            lines.append(
                f"{name:<18} {stats['count']:>8.0f} "
                f"{1e3 * stats['total_seconds']:>10.2f} "
                f"{1e6 * stats['mean_seconds']:>10.2f} "
                f"{1e6 * stats['max_seconds']:>10.2f}"
            )
        return "\n".join(lines)


#: The active profiler, or None.  Module-level (not thread-local) on
#: purpose: the thread-pool trace builders should be charged to the same
#: profile as the main loop.
_ACTIVE: Profiler | None = None

#: One shared inert context manager handed out for every span while no
#: profiler is active.
_NULL_SPAN: ContextManager[Any] = nullcontext()


def activate(profiler: Profiler | None = None) -> Profiler:
    """Install ``profiler`` (or a fresh one) as the active profiler."""
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else Profiler()
    return _ACTIVE


def deactivate() -> Profiler | None:
    """Remove and return the active profiler."""
    global _ACTIVE
    profiler, _ACTIVE = _ACTIVE, None
    return profiler


def active_profiler() -> Profiler | None:
    return _ACTIVE


def maybe_span(name: str) -> ContextManager[Any]:
    """A timing span when a profiler is active, else a shared no-op."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_SPAN
    return profiler.span(name)
