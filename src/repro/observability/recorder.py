"""Structured run tracing: the Darshan-style event recorder.

:class:`TraceRecorder` appends schema-versioned JSONL events (see
:mod:`.events`) to a file or file-like sink; :class:`NullRecorder` is
the no-op default every pipeline component carries, so healthy untraced
runs pay one attribute check per potential event and stay bit-identical
to pre-observability builds.

Recorders are *pure observers*: they never draw randomness, never touch
the simulated clock, and are never read back during a run.  The only
state they carry is the output handle and a sequence counter.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, IO, Iterator, Protocol, runtime_checkable

import numpy as np

from .events import SCHEMA_VERSION, validate_event

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "read_trace",
    "iter_trace",
]


@runtime_checkable
class Recorder(Protocol):
    """What the pipeline needs from a recorder."""

    enabled: bool

    def emit(self, event: str, **fields: Any) -> None: ...

    def bind_clock(self, clock: Any) -> None: ...


class NullRecorder:
    """The default recorder: does nothing, costs nothing.

    ``enabled`` is False so hot paths can skip building event payloads
    entirely (``if recorder.enabled: recorder.emit(...)``).
    """

    enabled = False

    def emit(self, event: str, **fields: Any) -> None:
        """Drop the event."""

    def bind_clock(self, clock: Any) -> None:
        """Nothing to bind."""

    def flush(self) -> None:
        """Nothing buffered."""

    def close(self) -> None:
        """Nothing open."""


#: Shared no-op instance (stateless, safe to share across tuners).
NULL_RECORDER = NullRecorder()


def _jsonable(obj: Any) -> Any:
    """JSON fallback for numpy scalars/arrays and other sequence types
    that show up in event payloads."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (set, frozenset, tuple)):
        return list(obj)
    raise TypeError(f"cannot serialise {type(obj).__name__} into a trace event")


class TraceRecorder:
    """Appends one JSON object per event to a JSONL sink.

    Parameters
    ----------
    sink:
        A path (opened for writing, parent directories created) or an
        open text file-like object (not closed by :meth:`close`).
    clock:
        Optional simulated clock; every event then carries
        ``sim_minutes``.  Tuners bind their own clock via
        :meth:`bind_clock` when a run starts.
    """

    enabled = True

    def __init__(self, sink: str | os.PathLike | IO[str], clock: Any = None):
        if isinstance(sink, (str, os.PathLike)):
            path = os.fspath(sink)
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._fh: IO[str] = open(path, "w", encoding="utf-8")
            self._owns_fh = True
            self.path: str | None = path
        else:
            self._fh = sink
            self._owns_fh = False
            self.path = getattr(sink, "name", None)
        self.clock = clock
        self._seq = 0
        self._t0 = time.perf_counter()
        self._closed = False

    def bind_clock(self, clock: Any) -> None:
        """Stamp subsequent events with ``clock.elapsed_minutes``."""
        self.clock = clock

    @property
    def n_events(self) -> int:
        """Events emitted so far."""
        return self._seq

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event.  Emitting after :meth:`close` is a no-op so
        late stragglers (a cache still carrying this recorder) cannot
        crash a finished run."""
        if self._closed:
            return
        self._seq += 1
        record: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "event": event,
            "seq": self._seq,
            "wall_s": round(time.perf_counter() - self._t0, 6),
        }
        clock = self.clock
        if clock is not None:
            record["sim_minutes"] = clock.elapsed_minutes
        record.update(fields)
        self._fh.write(
            json.dumps(record, separators=(",", ":"), default=_jsonable) + "\n"
        )

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and (when the recorder opened the sink) close it."""
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_trace(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
    """Yield validated events from a trace file, in order.

    Tolerates a torn trailing line (a run killed mid-write) by stopping
    there; anything else undecodable raises :class:`ValueError` with the
    offending line number.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if line.endswith("\n"):
                    raise ValueError(
                        f"{os.fspath(path)}:{lineno}: undecodable trace line"
                    ) from None
                return  # torn final line: the run was killed mid-write
            validate_event(record)
            yield record


def read_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """All events of a trace file as a list (see :func:`iter_trace`)."""
    return list(iter_trace(path))
