"""``tunio-report``: reconstruct a tuning run from its trace file.

A trace written by ``tunio-tune --trace-out run.jsonl`` carries enough
to rebuild the run's :class:`~repro.tuners.base.TuningResult` -- the
per-generation best-perf series, the RoTI curve, and the final summary
lines -- without the journal, the simulator, or the original process::

    tunio-report run.jsonl
    tunio-report run.jsonl --json        # machine-readable reconstruction

Resumed runs re-emit their replayed generations, so a trace written by
``tunio-tune resume`` is complete on its own; duplicate ``generation``
events for the same iteration are resolved to the last one emitted.

This module is also the single source of truth for the run-summary line
formats: ``tunio-tune`` imports :func:`baseline_line`,
:func:`iteration_line` and :func:`final_line` from here, so the live CLI
and the offline report cannot drift apart.

Exit codes: 0 success, 1 incomplete trace (no ``run_end``), 2 missing or
invalid trace file.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Iterable, Mapping

from repro.iostack.evalcache import EvaluationStats
from repro.tuners.base import IterationRecord, TuningResult

from .metrics import (
    MetricsRegistry,
    fastpath_line,
    guardrails_line,
    resilience_line,
    snapshot_degraded,
)
from .recorder import read_trace

__all__ = [
    "baseline_line",
    "iteration_line",
    "final_line",
    "reconstruct_result",
    "render_report",
    "main",
]


# -- run-summary lines (shared with tunio-tune) ------------------------------------


def baseline_line(result: TuningResult) -> str:
    return f"baseline: {result.baseline_perf:10.1f} MB/s"


def iteration_line(record: IterationRecord, stopped_at: int | None) -> str:
    marker = "  <- stopped" if stopped_at == record.iteration else ""
    return (
        f"iter {record.iteration:3d}  best {record.best_perf:10.1f} MB/s  "
        f"t={record.elapsed_minutes:8.1f} min  "
        f"subset={len(record.tuned_parameters):2d}{marker}"
    )


def final_line(result: TuningResult) -> str:
    return (
        f"final: {result.best_perf:.1f} MB/s "
        f"({result.best_perf / max(result.baseline_perf, 1e-9):.2f}x) "
        f"in {result.total_minutes:.1f} simulated minutes "
        f"({result.total_evaluations} evaluations, {result.stop_reason})"
    )


# -- reconstruction ----------------------------------------------------------------


def _eval_stats_from(payload: Mapping[str, Any] | None) -> EvaluationStats | None:
    """Rebuild :class:`EvaluationStats` from a ``run_end`` payload,
    ignoring fields this build does not know (forward compatibility)."""
    if payload is None:
        return None
    known = {f.name for f in dataclasses.fields(EvaluationStats)}
    return EvaluationStats(**{k: v for k, v in payload.items() if k in known})


def reconstruct_result(events: Iterable[Mapping[str, Any]]) -> TuningResult:
    """The :class:`TuningResult` a trace's events describe.

    ``generation`` duplicates (journal-resume re-emission) resolve to
    the last event per iteration; an incomplete trace (no ``run_end``)
    reconstructs what was recorded with ``stop_reason="incomplete"``.
    """
    tuner_name = "?"
    workload_name = "?"
    baseline_perf = float("nan")
    generations: dict[int, Mapping[str, Any]] = {}
    cli_trips: list[str] = []
    run_end: Mapping[str, Any] | None = None
    for event in events:
        kind = event["event"]
        if kind == "run_start":
            tuner_name = event.get("tuner", tuner_name)
            workload_name = event.get("workload", workload_name)
        elif kind == "baseline":
            baseline_perf = float(event["perf"])
        elif kind == "generation":
            generations[int(event["iteration"])] = event
        elif kind == "guardrail_trip" and event.get("source") == "cli":
            cli_trips.append(str(event["trip"]))
        elif kind == "run_end":
            run_end = event

    history = [
        IterationRecord(
            iteration=int(event["iteration"]),
            iteration_perf=float(event["iteration_perf"]),
            best_perf=float(event["best_perf"]),
            elapsed_minutes=float(event["elapsed_minutes"]),
            evaluations=int(event["evaluations"]),
            tuned_parameters=tuple(event.get("subset") or ()),
        )
        for _, event in sorted(generations.items())
    ]
    result = TuningResult(
        tuner_name=tuner_name,
        workload_name=workload_name,
        history=history,
        baseline_perf=baseline_perf,
        stop_reason="incomplete",
    )
    if run_end is not None:
        result.stop_reason = str(run_end.get("stop_reason", "completed"))
        stopped_at = run_end.get("stopped_at")
        result.stopped_at = int(stopped_at) if stopped_at is not None else None
        if "baseline_perf" in run_end:
            result.baseline_perf = float(run_end["baseline_perf"])
        result.eval_stats = _eval_stats_from(run_end.get("eval_stats"))
        result.guardrail_trips = tuple(cli_trips) + tuple(
            run_end.get("guardrail_trips") or ()
        )
    else:
        result.guardrail_trips = tuple(cli_trips)
    return result


# -- rendering ---------------------------------------------------------------------


def _roti_section(result: TuningResult) -> list[str]:
    from repro.core.roti import roti_curve

    try:
        curve = roti_curve(result)
    except ValueError as exc:
        return [f"roti: unavailable ({exc})"]
    lines = [
        f"roti: peak {curve.peak:.2f} MB/s per minute at "
        f"t={curve.peak_minutes:.1f} min, final {curve.final:.2f}"
    ]
    for minutes, value in zip(curve.minutes, curve.values):
        lines.append(f"  t={float(minutes):8.1f} min  roti {float(value):10.2f}")
    return lines


def render_report(events: list[Mapping[str, Any]], source: str) -> str:
    """The human-readable report of one trace."""
    result = reconstruct_result(events)
    lines = [
        f"trace: {source} ({len(events)} events)",
        f"run: {result.workload_name} with {result.tuner_name} "
        f"({len(result.history)} iterations, {result.stop_reason})",
        "",
        baseline_line(result),
    ]
    lines.extend(
        iteration_line(record, result.stopped_at) for record in result.history
    )
    lines.append("")
    lines.append(final_line(result))
    if result.eval_stats is not None:
        registry = MetricsRegistry.from_run(result)
        snapshot = registry.snapshot()
        lines.append(f"fastpath: {fastpath_line(snapshot)}")
        if snapshot_degraded(snapshot):
            lines.append(f"resilience: {resilience_line(snapshot)}")
    if result.guardrail_trips:
        lines.append(f"guardrails: {guardrails_line(result.guardrail_trips)}")
    lines.append("")
    lines.extend(_roti_section(result))
    return "\n".join(lines)


def _json_payload(events: list[Mapping[str, Any]]) -> dict[str, Any]:
    result = reconstruct_result(events)
    registry = MetricsRegistry.from_run(result)
    return {
        "workload": result.workload_name,
        "tuner": result.tuner_name,
        "stop_reason": result.stop_reason,
        "stopped_at": result.stopped_at,
        "baseline_perf": result.baseline_perf,
        "best_perf": result.best_perf,
        "total_minutes": result.total_minutes,
        "total_evaluations": result.total_evaluations,
        "guardrail_trips": list(result.guardrail_trips),
        "history": [dataclasses.asdict(record) for record in result.history],
        "metrics": registry.snapshot(),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tunio-report",
        description="Reconstruct a tuning run's curves and summary from a "
                    "--trace-out JSONL file.",
    )
    parser.add_argument("trace", help="trace file written by tunio-tune --trace-out")
    parser.add_argument(
        "--json", action="store_true",
        help="print the reconstruction as JSON instead of the report",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if not os.path.exists(args.trace):
        print(f"tunio-report: file not found: {args.trace}", file=sys.stderr)
        return 2
    try:
        events = read_trace(args.trace)
    except ValueError as exc:
        print(f"tunio-report: invalid trace: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"tunio-report: {args.trace} holds no events", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(_json_payload(events), indent=2, sort_keys=True))
    else:
        print(render_report(events, args.trace))
    complete = any(event["event"] == "run_end" for event in events)
    if not complete:
        print(
            f"tunio-report: warning: {args.trace} has no run_end event "
            f"(interrupted run?)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
