"""Reinforcement-learning substrate: numpy neural networks, a Gym-style
environment API, contextual bandits, NN Q-learning, delayed-reward
replay, log-curve generation and PCA impact analysis.

This package replaces the paper's Keras + OpenAI Gym dependencies with
self-contained implementations of exactly the pieces TunIO's two agents
use.
"""

from .bandit import NeuralContextualBandit
from .curves import LogCurve, LogCurveGenerator
from .env import Box, Discrete, Env
from .guardrails import (
    CheckpointError,
    GuardrailMonitor,
    GuardrailTrip,
    LossDivergenceMonitor,
    bandit_weight_issue,
    corrupt_network,
    network_weight_issue,
    qagent_weight_issue,
    validate_agent_checkpoint,
)
from .nn import ACTIVATIONS, Adam, Dense, MLP
from .pca import (
    PCAResult,
    correlation_impact,
    parameter_impact,
    principal_components,
)
from .qlearning import QLearningAgent, QLearningConfig
from .replay import DelayedRewardBuffer, ReplayBuffer, Transition

__all__ = [
    "NeuralContextualBandit",
    "CheckpointError",
    "GuardrailMonitor",
    "GuardrailTrip",
    "LossDivergenceMonitor",
    "bandit_weight_issue",
    "corrupt_network",
    "network_weight_issue",
    "qagent_weight_issue",
    "validate_agent_checkpoint",
    "LogCurve",
    "LogCurveGenerator",
    "Box",
    "Discrete",
    "Env",
    "ACTIVATIONS",
    "Adam",
    "Dense",
    "MLP",
    "PCAResult",
    "correlation_impact",
    "parameter_impact",
    "principal_components",
    "QLearningAgent",
    "QLearningConfig",
    "DelayedRewardBuffer",
    "ReplayBuffer",
    "Transition",
]
