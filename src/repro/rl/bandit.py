"""NN-based contextual bandit: the paper's "State Observer".

The Smart Configuration Generation agent feeds its raw inputs (the
parameter subset used and the best ``perf`` achieved with it) through a
neural contextual bandit whose job is to model how performance varies
with inputs in the tuning environment; its learned hidden representation
is the *state observation* handed to the Q-learning subset picker.

:class:`NeuralContextualBandit` is that component: a regression MLP
trained online (context -> observed normalised reward) whose penultimate
activations are exposed via :meth:`observe_state`.  It can also be used
as a plain bandit (pick the arm with the best predicted reward, with
epsilon exploration), which the offline trainer uses during sweeps.
"""

from __future__ import annotations

import numpy as np

from .nn import MLP

__all__ = ["NeuralContextualBandit"]


class NeuralContextualBandit:
    """Contextual bandit with an MLP reward model.

    Parameters
    ----------
    context_dim:
        Dimension of the raw context vector.
    state_dim:
        Dimension of the exposed state observation (the last hidden
        layer's width).
    rng:
        Seeded generator.
    """

    def __init__(
        self,
        context_dim: int,
        state_dim: int = 16,
        hidden: tuple[int, ...] = (32,),
        learning_rate: float = 1e-3,
        epsilon: float = 0.1,
        rng: np.random.Generator | None = None,
    ):
        if context_dim < 1 or state_dim < 1:
            raise ValueError("dimensions must be positive")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.rng = rng if rng is not None else np.random.default_rng()
        self.context_dim = context_dim
        self.state_dim = state_dim
        self.epsilon = epsilon
        self.model = MLP(
            [context_dim, *hidden, state_dim, 1],
            self.rng,
            hidden_activation="relu",
            learning_rate=learning_rate,
        )
        self._updates = 0

    # -- reward modelling ------------------------------------------------------

    def predict_reward(self, contexts: np.ndarray) -> np.ndarray:
        """Predicted reward for each context row."""
        contexts = np.atleast_2d(np.asarray(contexts, dtype=float))
        self._check_dim(contexts)
        return np.asarray(self.model(contexts))[:, 0]

    def update(self, context: np.ndarray, reward: float) -> float:
        """One online regression step on an observed (context, reward)."""
        context = np.asarray(context, dtype=float)
        self._check_dim(np.atleast_2d(context))
        loss = self.model.train_batch(context[None, :], np.array([[reward]]))
        self._updates += 1
        return loss

    def update_batch(self, contexts: np.ndarray, rewards: np.ndarray) -> float:
        """One regression step on a whole batch of (context, reward)
        observations -- a single :meth:`MLP.train_batch` call instead of
        one per observation."""
        contexts = np.atleast_2d(np.asarray(contexts, dtype=float))
        self._check_dim(contexts)
        rewards = np.asarray(rewards, dtype=float).reshape(-1, 1)
        if rewards.shape[0] != contexts.shape[0]:
            raise ValueError("need one reward per context row")
        loss = self.model.train_batch(contexts, rewards)
        self._updates += contexts.shape[0]
        return loss

    # -- arm selection -------------------------------------------------------------

    def select(self, candidate_contexts: np.ndarray) -> int:
        """Epsilon-greedy arm choice among candidate context rows."""
        candidate_contexts = np.atleast_2d(np.asarray(candidate_contexts, dtype=float))
        if self.rng.random() < self.epsilon:
            return int(self.rng.integers(candidate_contexts.shape[0]))
        return int(np.argmax(self.predict_reward(candidate_contexts)))

    # -- the state observation --------------------------------------------------------

    def observe_state(self, context: np.ndarray) -> np.ndarray:
        """The learned state observation for a raw context: the
        activations of the last hidden layer (width ``state_dim``)."""
        x = np.atleast_2d(np.asarray(context, dtype=float))
        self._check_dim(x)
        for layer in self.model.layers[:-1]:
            x = layer.forward(x)
        return x[0]

    def observe_state_batch(self, contexts: np.ndarray) -> np.ndarray:
        """State observations for a batch of contexts, one row each."""
        x = np.atleast_2d(np.asarray(contexts, dtype=float))
        self._check_dim(x)
        for layer in self.model.layers[:-1]:
            x = layer.forward(x)
        return x

    @property
    def updates_seen(self) -> int:
        return self._updates

    def _check_dim(self, contexts: np.ndarray) -> None:
        if contexts.shape[1] != self.context_dim:
            raise ValueError(
                f"context dim {contexts.shape[1]} != expected {self.context_dim}"
            )
