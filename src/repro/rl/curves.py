"""Synthetic tuning-performance curves for offline early-stopper training.

The paper trains the Early Stopping agent by emulating tuning runs with
"generated log curves, as tuning performance follows a log curve ...
The log curves generated for training include noise in the form of
randomized shifts down the curve to account for tuning cases where the
wrong parameter is chosen briefly before adjusting.  Each simulated
application has a log curve with different characteristics such as
initial value, growth rate, etc."

:class:`LogCurveGenerator` produces exactly these: monotone-in-trend
logarithmic best-so-far curves with randomised initial value, gain,
growth rate, plateau onset and transient downward excursions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogCurve", "LogCurveBatch", "LogCurveGenerator"]


@dataclass(frozen=True)
class LogCurve:
    """One emulated tuning run.

    ``values[i]`` is the best ``perf`` observed up to iteration ``i``
    (normalised units); ``ideal_stop`` is the iteration after which less
    than ``tail_tolerance`` of the total gain remains.
    """

    values: np.ndarray
    initial: float
    final: float
    ideal_stop: int

    def __post_init__(self) -> None:
        if self.values.ndim != 1 or self.values.size < 2:
            raise ValueError("a curve needs at least two points")
        if not 0 <= self.ideal_stop < self.values.size:
            raise ValueError("ideal_stop out of range")


@dataclass(frozen=True)
class LogCurveBatch:
    """A batch of emulated tuning runs as one matrix.

    ``values[i, t]`` is curve ``i``'s best perf up to iteration ``t``;
    ``ideal_stops[i]`` is its tail-tolerance stop point.  The matrix
    layout feeds the vectorized pretraining fastpath
    (:meth:`EarlyStoppingAgent.states_matrix` and friends) without
    materialising per-curve objects.
    """

    values: np.ndarray
    ideal_stops: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 2 or self.values.shape[1] < 2:
            raise ValueError("a curve batch needs shape (count, n >= 2)")
        if self.ideal_stops.shape != (self.values.shape[0],):
            raise ValueError("need one ideal_stop per curve")

    def __len__(self) -> int:
        return self.values.shape[0]

    def curve(self, i: int) -> LogCurve:
        """Curve ``i`` as a standalone :class:`LogCurve`."""
        v = self.values[i]
        return LogCurve(
            values=v,
            initial=float(v[0]),
            final=float(v[-1]),
            ideal_stop=int(self.ideal_stops[i]),
        )


@dataclass(frozen=True)
class LogCurveGenerator:
    """Samples randomised log-shaped tuning curves.

    Attributes control the sampling ranges; all are in normalised
    performance units (1.0 ~ a typical tuned single-node bandwidth).
    """

    n_iterations: int = 50
    initial_range: tuple[float, float] = (0.05, 0.3)
    gain_range: tuple[float, float] = (0.3, 1.2)
    #: Growth-rate factor: higher means the knee arrives earlier.
    rate_range: tuple[float, float] = (0.5, 10.0)
    #: Fraction of curves drawn as exponential saturation (hard plateau
    #: after the knee) rather than a pure log shape; real GA runs show
    #: both.
    saturating_fraction: float = 0.35
    #: Fraction of curves with a *staged* shape: an early plateau broken
    #: by a later surge (a GA escaping a local optimum).  These teach the
    #: early stopper not to mistake a low-performance plateau for
    #: convergence -- the trap the heuristic stopper falls into.
    staged_fraction: float = 0.2
    #: Iteration range where the second stage of a staged curve begins.
    surge_onset_range: tuple[int, int] = (6, 28)
    #: Time constant range (iterations) for saturating curves.
    tau_range: tuple[float, float] = (2.0, 12.0)
    #: Measurement noise on each iteration's best-so-far value.
    noise_sigma: float = 0.01
    #: Probability per iteration of a transient downward shift (wrong
    #: parameter subset chosen briefly).
    dip_probability: float = 0.08
    dip_depth_range: tuple[float, float] = (0.05, 0.3)
    dip_length_range: tuple[int, int] = (1, 3)
    #: Fraction of total gain considered negligible for the ideal stop.
    tail_tolerance: float = 0.02

    def __post_init__(self) -> None:
        if self.n_iterations < 5:
            raise ValueError("n_iterations must be >= 5")
        if not 0.0 <= self.dip_probability <= 1.0:
            raise ValueError("dip_probability must be in [0, 1]")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")

    def sample(self, rng: np.random.Generator) -> LogCurve:
        """Draw one curve."""
        n = self.n_iterations
        initial = rng.uniform(*self.initial_range)
        gain = rng.uniform(*self.gain_range)
        rate = rng.uniform(*self.rate_range)

        t = np.arange(n, dtype=float)
        kind = rng.random()
        if kind < self.staged_fraction:
            tau1 = rng.uniform(2.0, 6.0)
            tau2 = rng.uniform(*self.tau_range)
            split = rng.uniform(0.25, 0.65)
            onset = int(rng.integers(self.surge_onset_range[0], self.surge_onset_range[1] + 1))
            stage1 = split * gain * (1.0 - np.exp(-t / tau1))
            stage2 = np.where(
                t >= onset,
                (1.0 - split) * gain * (1.0 - np.exp(-(t - onset) / tau2)),
                0.0,
            )
            trend = initial + stage1 + stage2
        elif kind < self.staged_fraction + self.saturating_fraction:
            tau = rng.uniform(*self.tau_range)
            trend = initial + gain * (1.0 - np.exp(-t / tau))
        else:
            trend = initial + gain * np.log1p(rate * t) / np.log1p(rate * (n - 1))

        # Transient dips: the tuner briefly follows a bad subset.
        values = trend.copy()
        i = 1
        while i < n:
            if rng.random() < self.dip_probability:
                depth = rng.uniform(*self.dip_depth_range) * gain
                length = int(rng.integers(self.dip_length_range[0], self.dip_length_range[1] + 1))
                values[i : i + length] -= depth
                i += length
            i += 1

        if self.noise_sigma > 0:
            values += rng.normal(0.0, self.noise_sigma * gain, size=n)

        # Best-so-far is monotone except for the reporting convention
        # choice; the paper plots best perf per iteration, so enforce
        # monotonicity after dips (elitism keeps the best configuration).
        values = np.maximum.accumulate(np.maximum(values, 1e-6))

        final = float(values[-1])
        threshold = final - self.tail_tolerance * (final - float(values[0]))
        reached = np.flatnonzero(values >= threshold)
        ideal_stop = int(reached[0]) if reached.size else n - 1
        return LogCurve(values=values, initial=float(values[0]), final=final, ideal_stop=ideal_stop)

    def sample_batch(self, count: int, rng: np.random.Generator) -> list[LogCurve]:
        if count < 1:
            raise ValueError("count must be positive")
        return [self.sample(rng) for _ in range(count)]

    def sample_matrix(self, count: int, rng: np.random.Generator) -> LogCurveBatch:
        """Draw ``count`` curves in one vectorized pass.

        Samples the same curve family as :meth:`sample` -- staged,
        saturating and log shapes, transient dips, measurement noise,
        monotone best-so-far -- but with all randomness drawn as arrays,
        so generating hundreds of curves costs a handful of numpy calls
        instead of a python loop per curve.  The RNG consumption differs
        from ``count`` serial :meth:`sample` calls (the distribution is
        the same; individual curves are not), which is why the batched
        trainers that use it are validated at the checkpoint level
        rather than bit-for-bit.
        """
        if count < 1:
            raise ValueError("count must be positive")
        m, n = count, self.n_iterations
        t = np.arange(n, dtype=float)

        initial = rng.uniform(*self.initial_range, size=m)
        gain = rng.uniform(*self.gain_range, size=m)
        rate = rng.uniform(*self.rate_range, size=m)
        kind = rng.random(m)
        staged = kind < self.staged_fraction
        saturating = ~staged & (kind < self.staged_fraction + self.saturating_fraction)

        tau1 = rng.uniform(2.0, 6.0, size=m)[:, None]
        tau2 = rng.uniform(*self.tau_range, size=m)[:, None]
        split = rng.uniform(0.25, 0.65, size=m)[:, None]
        onset = rng.integers(
            self.surge_onset_range[0], self.surge_onset_range[1] + 1, size=m
        )[:, None]
        tau = rng.uniform(*self.tau_range, size=m)[:, None]

        g = gain[:, None]
        stage1 = split * g * (1.0 - np.exp(-t[None, :] / tau1))
        stage2 = np.where(
            t[None, :] >= onset,
            (1.0 - split) * g * (1.0 - np.exp(-(t[None, :] - onset) / tau2)),
            0.0,
        )
        trend_staged = stage1 + stage2
        trend_sat = g * (1.0 - np.exp(-t[None, :] / tau))
        trend_log = g * np.log1p(rate[:, None] * t[None, :]) / np.log1p(
            rate[:, None] * (n - 1)
        )
        trend = initial[:, None] + np.where(
            staged[:, None],
            trend_staged,
            np.where(saturating[:, None], trend_sat, trend_log),
        )

        # Transient dips, drawn per (curve, iteration) instead of the
        # serial skip-ahead walk; overlapping dips merge, which only
        # thickens the tail of the dip-depth distribution.
        values = trend.copy()
        dip_start = rng.random((m, n)) < self.dip_probability
        dip_start[:, 0] = False
        depth = rng.uniform(*self.dip_depth_range, size=(m, n)) * g
        length = rng.integers(
            self.dip_length_range[0], self.dip_length_range[1] + 1, size=(m, n)
        )
        for offset in range(self.dip_length_range[1]):
            hit = dip_start & (length > offset)
            if offset:
                shifted = np.zeros_like(values)
                shifted[:, offset:] = np.where(hit, depth, 0.0)[:, :-offset]
                values -= shifted
            else:
                values -= np.where(hit, depth, 0.0)

        if self.noise_sigma > 0:
            values += rng.normal(0.0, 1.0, size=(m, n)) * (self.noise_sigma * g)

        values = np.maximum.accumulate(np.maximum(values, 1e-6), axis=1)
        final = values[:, -1]
        threshold = final - self.tail_tolerance * (final - values[:, 0])
        ideal = np.argmax(values >= threshold[:, None], axis=1)
        return LogCurveBatch(values=values, ideal_stops=ideal.astype(int))
