"""Gym-style environment interface (the reproduction's OpenAI Gym).

The paper wires its Keras agents to OpenAI Gym environments; this module
provides the same ``reset``/``step`` contract plus the two space types
the agents need (discrete action sets and box observations), so agent
code reads exactly like Gym-based code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Discrete", "Box", "Env"]


@dataclass(frozen=True)
class Discrete:
    """``n`` actions labelled ``0 .. n-1``."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("a Discrete space needs n >= 1")

    def contains(self, action: int) -> bool:
        return isinstance(action, (int, np.integer)) and 0 <= int(action) < self.n

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))


@dataclass(frozen=True)
class Box:
    """Real-valued vectors with elementwise bounds."""

    low: float
    high: float
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("low must be <= high")
        if any(d < 1 for d in self.shape):
            raise ValueError("shape dims must be positive")

    def contains(self, obs: np.ndarray) -> bool:
        obs = np.asarray(obs)
        return obs.shape == self.shape and bool(
            np.all(obs >= self.low) and np.all(obs <= self.high)
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.shape)


class Env(abc.ABC):
    """Minimal Gym environment contract.

    Subclasses set :attr:`observation_space` and :attr:`action_space`
    and implement :meth:`reset` / :meth:`step`.
    """

    observation_space: Box
    action_space: Discrete

    @abc.abstractmethod
    def reset(self, rng: np.random.Generator) -> np.ndarray:
        """Start a new episode; returns the initial observation."""

    @abc.abstractmethod
    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Apply an action; returns (observation, reward, done, info)."""
