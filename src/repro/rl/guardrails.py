"""Guardrails for the RL agents: detect broken learning, never act on it.

TunIO's promise is that its agents only ever *help*: Impact-First
subsetting and RL early stopping should make tuning cheaper, never make
the tuned result worse than plain HSTuner.  A NaN-poisoned network, an
exploded Q-function, a truncated checkpoint or a policy that collapsed
into "always stop" breaks that promise silently -- inference still
returns *something*, and the GA dutifully obeys it for a whole campaign.

This module supplies the detection layer:

* **Weight checks** -- :func:`network_weight_issue` (and the
  :class:`~repro.rl.qlearning.QLearningAgent` /
  :class:`~repro.rl.bandit.NeuralContextualBandit` conveniences) scan an
  :class:`~repro.rl.nn.MLP`'s parameters for non-finite or exploded
  values.  Scans are pure reads: no forward pass, no RNG, no state
  change -- calling them on a healthy agent leaves a tuning run
  bit-identical.
* **Training monitors** -- :class:`LossDivergenceMonitor` watches the
  loss/gradient-norm telemetry the networks publish
  (:attr:`MLP.last_loss` / :attr:`MLP.last_grad_norm`) for divergence
  and gradient explosion.
* **Trip bookkeeping** -- :class:`GuardrailMonitor` records every
  :class:`GuardrailTrip` and deduplicates the user-facing warnings (one
  line per distinct guardrail/kind, however many evaluations re-trip it).
* **Checkpoint validation** -- :func:`validate_agent_checkpoint` checks
  an agent checkpoint's schema, version and value sanity before any
  weight is installed; :class:`CheckpointError` is the single failure
  type the pipeline (and the CLI's exit-code mapping) handles.

What to *do* about a trip lives with the components that can degrade
gracefully: :class:`repro.core.smart_config.GuardedSubsetPicker`,
:class:`repro.core.early_stopping.GuardedStopper` and
:class:`repro.tuners.stoppers.FallbackStopper`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from .nn import MLP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bandit import NeuralContextualBandit
    from .qlearning import QLearningAgent

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "GuardrailTrip",
    "GuardrailMonitor",
    "LossDivergenceMonitor",
    "network_weight_issue",
    "qagent_weight_issue",
    "bandit_weight_issue",
    "corrupt_network",
    "validate_agent_checkpoint",
]

#: Magnitude beyond which a weight is considered exploded even though it
#: is still finite (Adam with MSE on normalised features keeps healthy
#: weights many orders of magnitude below this).
WEIGHT_LIMIT = 1e12

# -- trips ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardrailTrip:
    """One guardrail activation.

    ``guardrail`` names the guarded component (``subset-picker``,
    ``early-stopper``, ``checkpoint``); ``kind`` the failure class
    (``non-finite-weights``, ``exploded-weights``, ``loss-divergence``,
    ``gradient-explosion``, ``degenerate-policy``, ``invalid-output``,
    ``schema``); ``detail`` is the human-readable specifics.
    """

    guardrail: str
    kind: str
    detail: str
    iteration: int | None = None

    def __str__(self) -> str:
        where = f" at iteration {self.iteration}" if self.iteration is not None else ""
        return f"{self.guardrail}:{self.kind}{where} ({self.detail})"


class GuardrailMonitor:
    """Collects guardrail trips and deduplicates their warnings.

    A guardrail that keeps re-tripping (a NaN network is scanned before
    *every* decision) records every trip but surfaces **one** warning
    line per distinct ``(guardrail, kind)`` pair, so long campaigns do
    not flood stdout or the journal.  :meth:`drain_warnings` hands the
    not-yet-emitted lines to the caller (the pipeline drains once per
    generation).
    """

    def __init__(self) -> None:
        self._trips: list[GuardrailTrip] = []
        self._seen: set[tuple[str, str]] = set()
        self._pending: list[str] = []
        #: Optional trace recorder (duck-typed; see
        #: :mod:`repro.observability.recorder`).  None by default so the
        #: monitor needs no observability import.
        self.recorder = None

    def trip(
        self,
        guardrail: str,
        kind: str,
        detail: str,
        iteration: int | None = None,
    ) -> GuardrailTrip:
        """Record a trip; queue its warning unless an identical
        ``(guardrail, kind)`` already produced one."""
        trip = GuardrailTrip(guardrail, kind, detail, iteration)
        self._trips.append(trip)
        key = (guardrail, kind)
        if key not in self._seen:
            self._seen.add(key)
            self._pending.append(f"guardrail tripped: {trip}")
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.emit(
                "guardrail_trip",
                guardrail=guardrail,
                kind=kind,
                detail=detail,
                iteration=iteration,
            )
        return trip

    @property
    def trips(self) -> tuple[GuardrailTrip, ...]:
        return tuple(self._trips)

    def tripped(self, guardrail: str | None = None) -> bool:
        """Whether anything (or a specific guardrail) has tripped."""
        if guardrail is None:
            return bool(self._trips)
        return any(t.guardrail == guardrail for t in self._trips)

    def drain_warnings(self) -> list[str]:
        """Deduplicated warning lines queued since the last drain."""
        out, self._pending = self._pending, []
        return out

    def describe(self) -> str:
        """One-line summary for the CLI's ``guardrails:`` report."""
        if not self._trips:
            return "clean"
        kinds: dict[tuple[str, str], int] = {}
        for t in self._trips:
            kinds[(t.guardrail, t.kind)] = kinds.get((t.guardrail, t.kind), 0) + 1
        parts = [
            f"{g}:{k}" + (f" x{n}" if n > 1 else "") for (g, k), n in kinds.items()
        ]
        return f"{len(self._trips)} trip(s) [{', '.join(parts)}]"

    def reset(self) -> None:
        self._trips.clear()
        self._seen.clear()
        self._pending.clear()


# -- weight checks -------------------------------------------------------------------


def network_weight_issue(mlp: MLP, limit: float = WEIGHT_LIMIT) -> str | None:
    """Why an MLP's parameters are unusable, or ``None`` if healthy.

    Pure read: no forward pass, no RNG draw, no mutation.
    """
    for i, layer in enumerate(mlp.layers):
        for label, arr in (("weights", layer.weight), ("biases", layer.bias)):
            if not np.all(np.isfinite(arr)):
                return f"non-finite {label} in layer {i}"
            peak = float(np.abs(arr).max()) if arr.size else 0.0
            if peak > limit:
                return f"exploded {label} in layer {i} (|w| up to {peak:.3g})"
    return None


def qagent_weight_issue(agent: "QLearningAgent", limit: float = WEIGHT_LIMIT) -> str | None:
    """Weight issue in a Q-learning agent's online or target network."""
    issue = network_weight_issue(agent.q_network, limit)
    if issue is not None:
        return f"q-network: {issue}"
    issue = network_weight_issue(agent.target_network, limit)
    if issue is not None:
        return f"target-network: {issue}"
    return None


def bandit_weight_issue(
    bandit: "NeuralContextualBandit", limit: float = WEIGHT_LIMIT
) -> str | None:
    """Weight issue in a contextual bandit's reward model."""
    issue = network_weight_issue(bandit.model, limit)
    if issue is not None:
        return f"reward-model: {issue}"
    return None


def corrupt_network(mlp: MLP, mode: str) -> None:
    """Deterministically corrupt a network in place (fault injection).

    ``nan-weights`` poisons every parameter with NaN; ``explode-weights``
    sets them to a huge finite magnitude.  Used by the agent-level fault
    modes so the detection path is exercised end-to-end on the *real*
    corrupted networks, not on mocks.
    """
    if mode == "nan-weights":
        value = float("nan")
    elif mode == "explode-weights":
        value = 1e30
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    for layer in mlp.layers:
        layer.weight.fill(value)
        layer.bias.fill(value)


# -- training monitors ----------------------------------------------------------------


class LossDivergenceMonitor:
    """Watches a training-loss stream for divergence and exploding
    gradients.

    Feed it the per-step telemetry the networks publish
    (:attr:`MLP.last_loss` / :attr:`MLP.last_grad_norm`);
    :meth:`observe` returns a trip reason when the stream goes bad, and
    ``None`` while it is healthy.  Divergence means the loss exceeds
    ``divergence_factor`` times the running baseline established over
    the first ``warmup`` healthy observations -- a slowly rising loss is
    normal online-RL noise, a 100x jump is a broken optimiser.
    """

    def __init__(
        self,
        divergence_factor: float = 100.0,
        grad_limit: float = 1e6,
        warmup: int = 5,
    ):
        if divergence_factor <= 1.0:
            raise ValueError("divergence_factor must be > 1")
        if grad_limit <= 0:
            raise ValueError("grad_limit must be positive")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.divergence_factor = divergence_factor
        self.grad_limit = grad_limit
        self.warmup = warmup
        self._seen = 0
        self._baseline = 0.0

    def observe(self, loss: float | None, grad_norm: float | None = None) -> str | None:
        """Record one training step; return a trip reason or ``None``."""
        if loss is None:
            return None
        if not np.isfinite(loss):
            return f"non-finite training loss ({loss})"
        if grad_norm is not None:
            if not np.isfinite(grad_norm):
                return f"non-finite gradient norm ({grad_norm})"
            if grad_norm > self.grad_limit:
                return (
                    f"gradient explosion (|grad| {grad_norm:.3g} "
                    f"> limit {self.grad_limit:.3g})"
                )
        if self._seen >= self.warmup:
            threshold = self.divergence_factor * max(self._baseline, 1e-12)
            if loss > threshold:
                return (
                    f"loss divergence ({loss:.3g} > {self.divergence_factor:g}x "
                    f"baseline {self._baseline:.3g})"
                )
        # Running mean of healthy losses only (a diverged step must not
        # drag the baseline up after itself).
        self._baseline = (self._baseline * self._seen + float(loss)) / (self._seen + 1)
        self._seen += 1
        return None

    def reset(self) -> None:
        self._seen = 0
        self._baseline = 0.0


# -- checkpoint validation -------------------------------------------------------------

#: Version written into agent checkpoints by ``save_agents``.
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """An agent checkpoint failed schema/version/shape/value validation.

    Raised before any weight is installed, so a bad checkpoint can never
    half-load an agent; the message names the offending key and the fix.
    """


def validate_agent_checkpoint(
    data: Mapping[str, Any],
    path: str = "<checkpoint>",
) -> None:
    """Validate a :func:`~repro.core.offline_training.save_agents`-style
    payload (name -> array) before installing any weights.

    Checks performed, in order:

    * a ``checkpoint_version`` no newer than this build understands
      (missing = legacy, accepted);
    * the schema: ``impact_scores`` plus at least one ``smart_`` and one
      ``stop_`` weight array each;
    * every array finite (a NaN-poisoned checkpoint is rejected here, so
      corruption is caught at load time rather than mid-campaign);
    * ``impact_scores`` non-negative with positive sum.
    """
    keys = list(data.keys())
    version_arr = data.get("checkpoint_version")
    if version_arr is not None:
        version = int(np.asarray(version_arr))
        if version > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: checkpoint version {version} is newer than this "
                f"build understands (max {CHECKPOINT_VERSION}); re-train the "
                f"agents or upgrade"
            )
    if "impact_scores" not in keys:
        raise CheckpointError(
            f"{path}: missing 'impact_scores' (not an agents checkpoint, or "
            f"truncated during write); re-train with --agents-cache to rebuild"
        )
    for prefix, component in (("smart_", "smart-config agent"), ("stop_", "early stopper")):
        if not any(k.startswith(prefix) for k in keys):
            raise CheckpointError(
                f"{path}: no '{prefix}*' arrays -- the {component} weights are "
                f"missing (truncated or partial checkpoint); re-train to rebuild"
            )
    for key in keys:
        arr = np.asarray(data[key])
        if arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
            raise CheckpointError(
                f"{path}: array {key!r} contains non-finite values (corrupted "
                f"checkpoint); re-train to rebuild"
            )
    impact = np.asarray(data["impact_scores"], dtype=float)
    if impact.ndim != 1 or impact.size < 1 or np.any(impact < 0) or impact.sum() <= 0:
        raise CheckpointError(
            f"{path}: 'impact_scores' must be a non-negative 1-D array with a "
            f"positive sum, got shape {impact.shape}"
        )
