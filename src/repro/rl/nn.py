"""A small, dependency-free neural-network library (the reproduction's
Keras).

Implements exactly what the paper's agents need: dense feed-forward
networks with ReLU/tanh hidden layers, mean-squared-error loss, and the
Adam optimizer, all in numpy with explicit seeding.  Networks are built
with :class:`MLP` and trained with :meth:`MLP.train_batch`; weights can
be exported/imported as plain dicts of arrays for checkpointing the
offline-trained agents.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.observability.profiling import maybe_span

__all__ = ["Dense", "MLP", "Adam", "ACTIVATIONS"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


def _linear(x: np.ndarray) -> np.ndarray:
    return x


def _linear_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(x: np.ndarray) -> np.ndarray:
    s = _sigmoid(x)
    return s * (1.0 - s)


#: name -> (activation, derivative w.r.t. pre-activation)
ACTIVATIONS: dict[str, tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]] = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "linear": (_linear, _linear_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
}


class Dense:
    """One fully connected layer with He/Xavier initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str,
        rng: np.random.Generator,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be positive")
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; known: {sorted(ACTIVATIONS)}"
            )
        scale = np.sqrt(2.0 / in_features) if activation == "relu" else np.sqrt(
            1.0 / in_features
        )
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.activation = activation
        self._act, self._act_grad = ACTIVATIONS[activation]
        # forward cache
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._z = x @ self.weight + self.bias
        return self._act(self._z)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Given dL/d(output), return (dL/d(input), dL/dW, dL/db)."""
        if self._x is None or self._z is None:
            raise RuntimeError("backward called before forward")
        dz = grad_out * self._act_grad(self._z)
        dw = self._x.T @ dz
        db = dz.sum(axis=0)
        dx = dz @ self.weight.T
        return dx, dw, db

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]


class Adam:
    """Adam optimizer over a flat list of parameter arrays."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m = [np.zeros_like(p) for p in self.parameters]
        self._v = [np.zeros_like(p) for p in self.parameters]
        self._t = 0

    def step(self, gradients: Sequence[np.ndarray]) -> None:
        if len(gradients) != len(self.parameters):
            raise ValueError("gradient count does not match parameter count")
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.parameters, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.learning_rate * (m / b1t) / (np.sqrt(v / b2t) + self.epsilon)


class MLP:
    """Feed-forward network trained with MSE + Adam.

    Parameters
    ----------
    layer_sizes:
        ``[in, hidden..., out]`` -- at least two entries.
    hidden_activation:
        Activation for all hidden layers.
    output_activation:
        Activation for the final layer ("linear" for Q-values and
        regression).
    rng:
        Seeded generator for weight initialisation.
    learning_rate:
        Adam step size.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        rng: np.random.Generator,
        hidden_activation: str = "relu",
        output_activation: str = "linear",
        learning_rate: float = 1e-3,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.layers: list[Dense] = []
        for i, (a, b) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            act = output_activation if i == len(layer_sizes) - 2 else hidden_activation
            self.layers.append(Dense(a, b, act, rng))
        params = [p for layer in self.layers for p in layer.parameters]
        self.optimizer = Adam(params, learning_rate=learning_rate)
        #: Telemetry from the most recent :meth:`train_batch` call, read
        #: by the guardrail monitors (pure observers -- recording them
        #: changes nothing about training).
        self.last_loss: float | None = None
        self.last_grad_norm: float | None = None

    # -- inference -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batch forward pass; accepts (n, in) or (in,) and preserves the
        input's batch shape on output."""
        with maybe_span("nn.forward"):
            x = np.asarray(x, dtype=np.float64)
            single = x.ndim == 1
            if single:
                x = x[None, :]
            for layer in self.layers:
                x = layer.forward(x)
            return x[0] if single else x

    __call__ = forward

    # -- training --------------------------------------------------------------

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One MSE gradient step on a batch; returns the batch loss.

        ``y`` may contain NaN entries to mask outputs (used for Q-learning
        where only the taken action's value has a target).
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        with maybe_span("nn.forward"):
            pred = x
            for layer in self.layers:
                pred = layer.forward(pred)
        if pred.shape != y.shape:
            raise ValueError(f"target shape {y.shape} != prediction shape {pred.shape}")
        mask = ~np.isnan(y)
        n = max(1, int(mask.sum()))
        diff = np.where(mask, pred - y, 0.0)
        loss = float((diff**2).sum() / n)
        grad = 2.0 * diff / n
        with maybe_span("nn.backward"):
            grads: list[np.ndarray] = []
            for layer in reversed(self.layers):
                grad, dw, db = layer.backward(grad)
                grads.append(db)
                grads.append(dw)
            grads.reverse()
            self.optimizer.step(grads)
        self.last_loss = loss
        self.last_grad_norm = float(
            np.sqrt(sum(float((g * g).sum()) for g in grads))
        )
        return loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
    ) -> list[float]:
        """Minibatch training; returns per-epoch mean loss."""
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        n = x.shape[0]
        losses: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_losses.append(self.train_batch(x[idx], y[idx]))
            losses.append(float(np.mean(epoch_losses)))
        return losses

    # -- checkpointing ------------------------------------------------------------

    def get_weights(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            out[f"w{i}"] = layer.weight.copy()
            out[f"b{i}"] = layer.bias.copy()
        return out

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            w, b = weights[f"w{i}"], weights[f"b{i}"]
            if w.shape != layer.weight.shape or b.shape != layer.bias.shape:
                raise ValueError(f"weight shape mismatch at layer {i}")
            layer.weight[...] = w
            layer.bias[...] = b

    def copy_from(self, other: "MLP") -> None:
        """In-place weight copy (target-network sync)."""
        self.set_weights(other.get_weights())
