"""PCA-based parameter-impact analysis.

The paper's offline training "performs a Principal Component Analysis
(PCA) on the parameters with respect to perf to train the model to
isolate the most impactful parameters".  :func:`parameter_impact`
implements that: PCA over the design matrix augmented with the observed
``perf`` column; a parameter's impact is how strongly it co-loads with
``perf`` across components, weighted by explained variance.  A plain
|correlation| ranking is provided for comparison and as a fallback for
tiny samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PCAResult", "principal_components", "parameter_impact", "correlation_impact"]


@dataclass(frozen=True)
class PCAResult:
    """Eigen-decomposition of a standardised data matrix's covariance."""

    components: np.ndarray  # (n_features, n_components), columns = PCs
    explained_variance: np.ndarray  # eigenvalues, descending
    mean: np.ndarray
    scale: np.ndarray

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        total = self.explained_variance.sum()
        if total <= 0:
            return np.zeros_like(self.explained_variance)
        return self.explained_variance / total


def _standardise(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = x.mean(axis=0)
    scale = x.std(axis=0)
    scale = np.where(scale < 1e-12, 1.0, scale)
    return (x - mean) / scale, mean, scale


def principal_components(data: np.ndarray) -> PCAResult:
    """PCA of ``data`` (rows = observations) after standardisation."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or data.shape[0] < 2:
        raise ValueError("need a 2-D matrix with at least two rows")
    z, mean, scale = _standardise(data)
    cov = np.cov(z, rowvar=False)
    cov = np.atleast_2d(cov)
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    return PCAResult(
        components=eigvecs[:, order],
        explained_variance=np.maximum(eigvals[order], 0.0),
        mean=mean,
        scale=scale,
    )


def parameter_impact(configs: np.ndarray, perfs: np.ndarray) -> np.ndarray:
    """Impact score per parameter from sweep observations.

    ``configs`` is (n_runs, n_params) of normalised parameter values;
    ``perfs`` is (n_runs,) of observed ``perf``.  The score of parameter
    *j* is ``sum_k  lambda_k * |loading_j,k * loading_perf,k|`` over the
    principal components of the joint matrix ``[configs | perf]`` --
    parameters that move along the same high-variance directions as
    ``perf`` score high.  Scores are normalised to sum to 1.
    """
    configs = np.asarray(configs, dtype=float)
    perfs = np.asarray(perfs, dtype=float)
    if configs.ndim != 2:
        raise ValueError("configs must be 2-D")
    if perfs.shape != (configs.shape[0],):
        raise ValueError("perfs length must match configs rows")
    if configs.shape[0] < 3:
        raise ValueError("need at least three observations")

    joint = np.column_stack([configs, perfs])
    pca = principal_components(joint)
    perf_loadings = pca.components[-1, :]  # perf is the last feature
    param_loadings = pca.components[:-1, :]
    raw = np.abs(param_loadings * perf_loadings[None, :]) @ pca.explained_variance
    total = raw.sum()
    if total <= 1e-15:
        # Degenerate sweep (e.g. constant perf): uniform impact.
        return np.full(configs.shape[1], 1.0 / configs.shape[1])
    return raw / total


def correlation_impact(configs: np.ndarray, perfs: np.ndarray) -> np.ndarray:
    """|Pearson correlation| of each parameter with perf, normalised to
    sum to 1 (baseline ranking for comparison with PCA)."""
    configs = np.asarray(configs, dtype=float)
    perfs = np.asarray(perfs, dtype=float)
    if perfs.shape != (configs.shape[0],):
        raise ValueError("perfs length must match configs rows")
    z, _, _ = _standardise(configs)
    p, _, _ = _standardise(perfs[:, None])
    corr = np.abs((z * p).mean(axis=0))
    total = corr.sum()
    if total <= 1e-15:
        return np.full(configs.shape[1], 1.0 / configs.shape[1])
    return corr / total
