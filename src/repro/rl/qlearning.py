"""NN-based Q-learning (the paper's "Subset Picker" and "Action Decider"
substrate).

A compact DQN: an MLP maps observations to per-action Q-values;
epsilon-greedy exploration; uniform replay; a periodically synced target
network for bootstrapping stability.  Training targets mask every output
but the taken action (NaN-masked MSE in :meth:`MLP.train_batch`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .nn import MLP
from .replay import ReplayBuffer, Transition

__all__ = ["QLearningConfig", "QLearningAgent"]


@dataclass(frozen=True)
class QLearningConfig:
    """Hyper-parameters for :class:`QLearningAgent`."""

    state_dim: int
    n_actions: int
    hidden: tuple[int, ...] = (32, 32)
    learning_rate: float = 1e-3
    discount: float = 0.95
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay: float = 0.97
    batch_size: int = 32
    replay_capacity: int = 4096
    target_sync_every: int = 25

    def __post_init__(self) -> None:
        if self.state_dim < 1 or self.n_actions < 1:
            raise ValueError("state_dim and n_actions must be positive")
        if not 0.0 <= self.discount <= 1.0:
            raise ValueError("discount must be in [0, 1]")
        if not 0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0:
            raise ValueError("need 0 <= epsilon_end <= epsilon_start <= 1")
        if not 0.0 < self.epsilon_decay <= 1.0:
            raise ValueError("epsilon_decay must be in (0, 1]")


class QLearningAgent:
    """DQN over a discrete action space."""

    def __init__(self, config: QLearningConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        sizes = [config.state_dim, *config.hidden, config.n_actions]
        self.q_network = MLP(sizes, rng, learning_rate=config.learning_rate)
        self.target_network = MLP(sizes, rng, learning_rate=config.learning_rate)
        self.target_network.copy_from(self.q_network)
        self.replay = ReplayBuffer(config.replay_capacity)
        self.epsilon = config.epsilon_start
        self._train_steps = 0

    # -- acting ---------------------------------------------------------------

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-value per action for one state."""
        return np.asarray(self.q_network(np.asarray(state, dtype=float)))

    def act(self, state: np.ndarray, greedy: bool = False) -> int:
        """Epsilon-greedy action (or purely greedy when asked)."""
        if not greedy and self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.config.n_actions))
        return int(np.argmax(self.q_values(state)))

    def act_batch(self, states: np.ndarray, greedy: bool = False) -> np.ndarray:
        """Epsilon-greedy actions for a batch of states in one forward
        pass.  Draws one uniform and one integer array per call (instead
        of :meth:`act`'s per-state draws), so it is distributionally --
        not bit-for-bit -- equivalent to a loop of serial calls; greedy
        decisions are identical either way.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        actions = np.argmax(np.asarray(self.q_network(states)), axis=1)
        if not greedy:
            explore = self.rng.random(states.shape[0]) < self.epsilon
            random_actions = self.rng.integers(
                self.config.n_actions, size=states.shape[0]
            )
            actions = np.where(explore, random_actions, actions)
        return actions.astype(int)

    def decay_epsilon(self) -> None:
        self.epsilon = max(self.config.epsilon_end, self.epsilon * self.config.epsilon_decay)

    # -- learning --------------------------------------------------------------

    def observe(self, transition: Transition) -> None:
        if transition.state.shape != (self.config.state_dim,):
            raise ValueError(
                f"state shape {transition.state.shape} != ({self.config.state_dim},)"
            )
        self.replay.push(transition)

    def observe_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Push a batch of transitions given as parallel arrays."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        next_states = np.atleast_2d(np.asarray(next_states, dtype=float))
        if states.shape[1] != self.config.state_dim:
            raise ValueError(
                f"state dim {states.shape[1]} != ({self.config.state_dim},)"
            )
        actions = np.broadcast_to(actions, (states.shape[0],))
        rewards = np.broadcast_to(rewards, (states.shape[0],))
        dones = np.broadcast_to(dones, (states.shape[0],))
        for i in range(states.shape[0]):
            self.replay.push(
                Transition(
                    state=states[i],
                    action=int(actions[i]),
                    reward=float(rewards[i]),
                    next_state=next_states[i],
                    done=bool(dones[i]),
                )
            )

    def train_step(self, batch_size: int | None = None) -> float | None:
        """One minibatch update; returns the loss, or ``None`` when the
        replay buffer is still empty.  ``batch_size`` overrides the
        configured minibatch size (used by the batched trainers to feed
        bigger batches through the same update)."""
        if len(self.replay) == 0:
            return None
        size = batch_size if batch_size is not None else self.config.batch_size
        states, actions, rewards, next_states, dones = self.replay.sample_arrays(
            size, self.rng
        )

        next_q = np.asarray(self.target_network(next_states))
        bootstrap = np.where(dones, 0.0, self.config.discount * next_q.max(axis=1))
        targets = np.full((states.shape[0], self.config.n_actions), np.nan)
        targets[np.arange(states.shape[0]), actions] = rewards + bootstrap

        loss = self.q_network.train_batch(states, targets)
        self._train_steps += 1
        if self._train_steps % self.config.target_sync_every == 0:
            self.target_network.copy_from(self.q_network)
        return loss

    # -- checkpointing ------------------------------------------------------------

    def get_weights(self) -> dict[str, np.ndarray]:
        return self.q_network.get_weights()

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        self.q_network.set_weights(weights)
        self.target_network.set_weights(weights)
