"""Experience replay and the paper's delayed-reward mechanism.

Both TunIO agents "utilize a 5-iteration delay on the reward function to
avoid bias introduced by short-term gains": the reward credited to the
decision made at iteration *t* is computed from what is known at
iteration *t + 5*.  :class:`DelayedRewardBuffer` holds pending
transitions until their reward matures, then releases them into a
standard :class:`ReplayBuffer` for minibatch training.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

__all__ = ["Transition", "ReplayBuffer", "DelayedRewardBuffer"]


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) tuple."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayBuffer:
    """Bounded FIFO store with uniform minibatch sampling."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._buf: deque[Transition] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._buf)

    def push(self, transition: Transition) -> None:
        self._buf.append(transition)

    def extend(self, transitions: Iterable[Transition]) -> None:
        for t in transitions:
            self.push(t)

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not self._buf:
            raise ValueError("cannot sample from an empty buffer")
        idx = rng.integers(len(self._buf), size=min(batch_size, len(self._buf)))
        return [self._buf[int(i)] for i in idx]

    def sample_arrays(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniform minibatch as stacked arrays: ``(states, actions,
        rewards, next_states, dones)``.

        Consumes the RNG exactly like :meth:`sample` (one ``integers``
        draw of the same size), so swapping one for the other leaves
        every downstream random stream untouched.
        """
        batch = self.sample(batch_size, rng)
        return (
            np.stack([t.state for t in batch]),
            np.array([t.action for t in batch]),
            np.array([t.reward for t in batch]),
            np.stack([t.next_state for t in batch]),
            np.array([t.done for t in batch]),
        )

    def clear(self) -> None:
        self._buf.clear()


@dataclass
class _Pending:
    state: np.ndarray
    action: int
    #: Iteration at which the decision was made.
    born_at: int


class DelayedRewardBuffer:
    """Matures rewards ``delay`` iterations after the decision.

    Usage: call :meth:`remember` when the agent acts, then call
    :meth:`mature` every iteration with the current iteration index and a
    reward function; transitions whose delay has elapsed are emitted with
    a reward computed *now* (from the performance trajectory since the
    decision), which is exactly the paper's bias-avoidance scheme.
    """

    def __init__(self, delay: int = 5):
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay
        self._pending: deque[_Pending] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def remember(self, state: np.ndarray, action: int, iteration: int) -> None:
        self._pending.append(_Pending(np.asarray(state, dtype=float), action, iteration))

    def mature(
        self,
        iteration: int,
        reward_fn: Callable[[int, int], float],
        next_state: np.ndarray,
        done: bool = False,
    ) -> list[Transition]:
        """Release transitions whose reward has matured.

        ``reward_fn(born_at, iteration)`` computes the delayed reward for
        a decision made at ``born_at`` as seen from ``iteration``.  On
        ``done``, everything pending matures immediately (episode over).
        """
        out: list[Transition] = []
        next_state = np.asarray(next_state, dtype=float)
        while self._pending and (
            done or iteration - self._pending[0].born_at >= self.delay
        ):
            p = self._pending.popleft()
            out.append(
                Transition(
                    state=p.state,
                    action=p.action,
                    reward=float(reward_fn(p.born_at, iteration)),
                    next_state=next_state,
                    done=done,
                )
            )
        return out

    def clear(self) -> None:
        self._pending.clear()
