"""Tuning pipelines: the Tuner protocol, iteration records, stopping
strategies, the HSTuner GA baseline and application-lifecycle analysis.

TunIO itself (HSTuner + the three AI components) lives in
:mod:`repro.core`.
"""

from .base import IterationRecord, Tuner, TuningResult
from .hstuner import HSTuner
from .journal import (
    Journal,
    JournalError,
    JournalWriter,
    ReplayCursor,
    load_journal,
)
from .lifecycle import (
    LifecycleModel,
    crossover_point,
    lifecycle_model,
    untuned_model,
    viability_point,
)
from .resilience import (
    HarnessError,
    ResilienceStats,
    ResilientEvaluator,
    RetryPolicy,
)
from .stoppers import (
    AnyStopper,
    HeuristicStopper,
    MaxPerfOracleStopper,
    NoStop,
    Stopper,
    TimeBudgetStopper,
)

__all__ = [
    "IterationRecord",
    "Tuner",
    "TuningResult",
    "HSTuner",
    "Journal",
    "JournalError",
    "JournalWriter",
    "ReplayCursor",
    "load_journal",
    "HarnessError",
    "ResilienceStats",
    "ResilientEvaluator",
    "RetryPolicy",
    "LifecycleModel",
    "crossover_point",
    "lifecycle_model",
    "untuned_model",
    "viability_point",
    "AnyStopper",
    "HeuristicStopper",
    "MaxPerfOracleStopper",
    "NoStop",
    "Stopper",
    "TimeBudgetStopper",
]
