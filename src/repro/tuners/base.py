"""Tuner foundations: iteration records, results and the Tuner protocol.

A *tuning iteration* is one GA generation (the paper uses the terms
interchangeably).  Every tuner produces a :class:`TuningResult` whose
history carries, per iteration, the best objective so far and the
simulated minutes spent -- the two series every figure in the paper's
evaluation is drawn from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationStats

__all__ = ["IterationRecord", "TuningResult", "Tuner"]


@dataclass(frozen=True)
class IterationRecord:
    """Summary of one tuning iteration (GA generation)."""

    iteration: int
    #: Best perf found in this iteration's population (MB/s).
    iteration_perf: float
    #: Best perf found so far across all iterations (MB/s).
    best_perf: float
    #: Simulated tuning overhead accumulated so far, in minutes.
    elapsed_minutes: float
    #: Objective evaluations performed this iteration.
    evaluations: int
    #: Parameters tuned this iteration (subset tuning), genome order.
    tuned_parameters: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        if self.elapsed_minutes < 0:
            raise ValueError("elapsed_minutes must be >= 0")


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    tuner_name: str
    workload_name: str
    history: list[IterationRecord] = field(default_factory=list)
    best_config: StackConfiguration | None = None
    #: Perf of the default (untuned) configuration, MB/s.
    baseline_perf: float = 0.0
    #: Why the run ended: "stopper", "budget", or "completed".
    stop_reason: str = "completed"
    #: Iteration index at which the stopper fired (None if it didn't).
    stopped_at: int | None = None
    #: Evaluation-fastpath accounting (cache hit rate, trace reuse...);
    #: populated by tuners that track it, None otherwise.
    eval_stats: EvaluationStats | None = None
    #: Human-readable agent guardrail trips ("guardrail:kind at
    #: iteration N (detail)"); empty when the agents stayed healthy (or
    #: the tuner has no guarded agents).
    guardrail_trips: tuple[str, ...] = ()

    @property
    def best_perf(self) -> float:
        """Best objective reached (MB/s); baseline if nothing ran."""
        if not self.history:
            return self.baseline_perf
        return self.history[-1].best_perf

    @property
    def total_minutes(self) -> float:
        """Total simulated tuning overhead in minutes."""
        if not self.history:
            return 0.0
        return self.history[-1].elapsed_minutes

    @property
    def total_evaluations(self) -> int:
        return sum(r.evaluations for r in self.history)

    @property
    def cache_hit_rate(self) -> float:
        """Evaluation-cache hit rate of the run (0.0 when untracked)."""
        return self.eval_stats.cache_hit_rate if self.eval_stats else 0.0

    @property
    def trace_reuse_count(self) -> int:
        """Simulated runs served by replaying a stored trace instead of
        traversing the stack (0 when untracked)."""
        return self.eval_stats.trace_reuse if self.eval_stats else 0

    @property
    def gain(self) -> float:
        """Absolute improvement over the untuned configuration (MB/s)."""
        return max(0.0, self.best_perf - self.baseline_perf)

    def perf_series(self) -> np.ndarray:
        """Best-so-far perf per iteration (MB/s)."""
        return np.array([r.best_perf for r in self.history])

    def minutes_series(self) -> np.ndarray:
        """Elapsed minutes per iteration."""
        return np.array([r.elapsed_minutes for r in self.history])

    def iterations_to_reach(self, perf_mbps: float) -> int | None:
        """First iteration whose best-so-far meets a target, or None."""
        for record in self.history:
            if record.best_perf >= perf_mbps:
                return record.iteration
        return None

    def minutes_to_reach(self, perf_mbps: float) -> float | None:
        """Elapsed minutes when a target perf was first met, or None."""
        for record in self.history:
            if record.best_perf >= perf_mbps:
                return record.elapsed_minutes
        return None


class Tuner(abc.ABC):
    """A tuning pipeline: takes a workload, produces a TuningResult."""

    name: str = "tuner"

    @abc.abstractmethod
    def tune(self, workload, max_iterations: int) -> TuningResult:
        """Run the tuning pipeline for at most ``max_iterations``
        iterations (the stopper may end it earlier)."""
