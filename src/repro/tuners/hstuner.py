"""HSTuner: the genetic-algorithm I/O tuner TunIO builds on.

HSTuner drives a GA (tournament selection + elitism, as in the paper's
DEAP pipeline) over the 12-parameter HDF5/MPI-IO/Lustre space.  Each
fitness evaluation runs the workload (or its I/O kernel) on the stack
simulator three times, averages bandwidths into the ``perf`` objective,
and charges one run's duration plus setup overhead to the simulated
tuning clock.

The class exposes one extension point, :meth:`_select_subset`, returning
the parameter names the next generation may vary (None = all).  TunIO's
Smart Configuration Generation plugs in there; the base class always
returns None, which *is* HSTuner.

Evaluation fastpath
-------------------
Evaluations ride the simulator's trace/replay fastpath and, when a
:class:`~repro.iostack.evalcache.EvaluationCache` is attached, re-visited
configurations (elites re-drawn by crossover, duplicate genomes, the
default baseline) skip the stack traversal entirely.  Each generation is
additionally dispatched as one batch: noise factors are pre-drawn in
population order, traces are deduplicated per distinct genome (and
optionally built by a thread pool), then every individual replays its
own factor slice.  All of this is bit-identical to the naive
per-individual, per-repeat loop -- same fitnesses, same noise-stream
consumption, same clock charges -- the fastpath only removes redundant
deterministic work.  :attr:`TuningResult.eval_stats` records what was
saved.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.ga import (
    EvolutionEngine,
    Individual,
    Toolbox,
    tournament_pair,
    uniform_crossover,
    uniform_reset_mutation,
)
from repro.iostack.clock import SimulatedClock
from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationCache, EvaluationStats
from repro.iostack.parameters import TUNED_SPACE, ParameterSpace
from repro.iostack.simulator import IOStackSimulator, StackTrace, WorkloadLike

from .base import IterationRecord, Tuner, TuningResult
from .stoppers import NoStop, Stopper

__all__ = ["HSTuner"]

#: Attempts at perturbing the seed genome before accepting a duplicate
#: (only a degenerate space -- all cardinalities 1 -- exhausts this).
_MAX_PERTURBATION_ATTEMPTS = 16


class HSTuner(Tuner):
    """GA-based I/O stack tuner (the paper's baseline pipeline).

    Parameters
    ----------
    simulator:
        The stack simulator standing in for the testbed.
    space:
        Parameter space to tune (defaults to the paper's 12 parameters).
    population_size, n_elites:
        GA shape; the paper's pipeline uses elitism (1 elite) with
        3-way-tournament parent selection.
    stopper:
        Stopping strategy consulted after every generation.
    repeats:
        Runs averaged per evaluation (3 in the paper's methodology).
    mutation_probability:
        Per-gene mutation rate of offspring.
    rng:
        Seeded generator for reproducibility.
    cache:
        Optional evaluation cache; repeat configurations reuse their
        stored trace (results stay bit-identical, the simulated clock is
        still charged on hits).
    batch_evaluation:
        Dispatch each generation through the toolbox's ``evaluate_batch``
        entry (deduplicates traces within the generation); results are
        bit-identical to per-individual evaluation.
    batch_workers:
        Size of the thread pool building missing traces inside a batch;
        None (default) builds them serially.  Determinism is unaffected
        (noise factors are pre-drawn in population order).
    dedupe_duplicates:
        Forwarded to :class:`~repro.ga.engine.EvolutionEngine`: share one
        fitness among identical genomes of a generation.  Off by default
        because it changes noise and clock accounting for stochastic
        evaluations (the trace-level dedupe above already removes the
        redundant work without that side effect).
    """

    name = "hstuner"

    def __init__(
        self,
        simulator: IOStackSimulator,
        space: ParameterSpace = TUNED_SPACE,
        population_size: int = 6,
        n_elites: int = 1,
        stopper: Stopper | None = None,
        repeats: int = 3,
        mutation_probability: float = 0.12,
        rng: np.random.Generator | None = None,
        cache: EvaluationCache | None = None,
        batch_evaluation: bool = True,
        batch_workers: int | None = None,
        dedupe_duplicates: bool = False,
    ):
        if batch_workers is not None and batch_workers < 1:
            raise ValueError("batch_workers must be >= 1 (or None for serial)")
        self.simulator = simulator
        self.space = space
        self.population_size = population_size
        self.n_elites = n_elites
        self.stopper = stopper if stopper is not None else NoStop()
        self.repeats = repeats
        self.mutation_probability = mutation_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.cache = cache
        self.batch_evaluation = batch_evaluation
        self.batch_workers = batch_workers
        self.dedupe_duplicates = dedupe_duplicates
        self.clock = SimulatedClock()
        self._active_subset_size: int | None = None
        self._n_evaluations = 0
        self._stats_base: tuple[int, int, int, int, int] = (0, 0, 0, 0, 0)

    # -- extension point -----------------------------------------------------

    def _select_subset(
        self, iteration: int, history: Sequence[IterationRecord]
    ) -> tuple[str, ...] | None:
        """Parameter names the next generation may vary; None = all.
        Overridden by TunIO's Smart Configuration Generation."""
        return None

    def _observe_iteration(self, record: IterationRecord) -> None:
        """Hook called after each iteration (TunIO feeds its agents)."""

    # -- pipeline --------------------------------------------------------------

    def tune(self, workload: WorkloadLike, max_iterations: int = 50) -> TuningResult:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.clock.reset()
        self.stopper.reset()
        self._begin_stats_window()

        result = TuningResult(tuner_name=self.name, workload_name=workload.name)
        result.baseline_perf = self._evaluate_config(
            workload, StackConfiguration.default(self.space), charge=False
        )

        generation_evals: list[float] = []

        def evaluate(ind: Individual) -> float:
            config = StackConfiguration.from_genome(self.space, ind.genome)
            perf = self._evaluate_config(workload, config, charge=True)
            generation_evals.append(perf)
            return perf

        def evaluate_batch(individuals: Sequence[Individual]) -> list[float]:
            perfs = self._evaluate_generation(workload, individuals)
            generation_evals.extend(perfs)
            return perfs

        def generate(n: int, rng: np.random.Generator) -> list[Individual]:
            # HSTuner explores outward from the library defaults: the
            # initial population is the default configuration plus
            # neighbour perturbations of it.  (Uniform-random seeding
            # would start the search deep inside the space and skip the
            # climb the paper's tuning curves show.)
            default = Individual(self.space.encode(self.space.default_values()))
            population = [default]
            while len(population) < n:
                population.append(self._perturbed(default, rng))
            return population

        def mutate(ind: Individual, rng: np.random.Generator) -> Individual:
            # Classic DEAP-style uniform reset (mutUniformInt): a mutated
            # gene re-draws uniformly among its candidate values.  Subset
            # tuning concentrates the whole mutation budget into the
            # active subset: the expected number of mutated genes per
            # child stays constant however narrow the mask is -- which is
            # exactly why a small high-impact subset converges faster.
            active = self._active_subset_size or len(self.space)
            rate = min(0.6, self.mutation_probability * len(self.space) / active)
            return uniform_reset_mutation(
                ind,
                rng,
                cardinalities=self.space.cardinalities,
                per_gene_probability=rate,
            )

        toolbox = Toolbox()
        toolbox.register("generate", generate)
        toolbox.register("evaluate", evaluate)
        toolbox.register("select", tournament_pair)
        toolbox.register("mate", uniform_crossover)
        toolbox.register("mutate", mutate)
        if self.batch_evaluation:
            toolbox.register("evaluate_batch", evaluate_batch)

        engine = EvolutionEngine(
            toolbox,
            population_size=self.population_size,
            n_elites=self.n_elites,
            rng=self.rng,
            dedupe_duplicates=self.dedupe_duplicates,
        )

        # Preserved so a session can resume later (interactive refinement).
        self._engine = engine
        self._result = result
        self._generation_evals = generation_evals
        self._run_iterations(max_iterations)
        return result

    def resume(self, extra_iterations: int) -> TuningResult:
        """Continue a finished :meth:`tune` run for more iterations,
        keeping the GA population, clock and stopper state."""
        if getattr(self, "_engine", None) is None:
            raise RuntimeError("nothing to resume; call tune() first")
        if extra_iterations < 1:
            raise ValueError("extra_iterations must be >= 1")
        self._run_iterations(extra_iterations)
        return self._result

    def _perturbed(self, seed: Individual, rng: np.random.Generator) -> Individual:
        """A perturbation of the seed genome that actually differs from
        it.  A ~15% per-gene reset leaves every gene untouched for ~14%
        of draws; re-drawing those avoids silently spending a full
        evaluation on a duplicate of the seed."""
        candidate = seed
        for _ in range(_MAX_PERTURBATION_ATTEMPTS):
            candidate = uniform_reset_mutation(
                seed,
                rng,
                cardinalities=self.space.cardinalities,
                per_gene_probability=0.15,
            )
            if not candidate.same_genome(seed):
                return candidate
        return candidate  # degenerate space: nothing can differ

    def _run_iterations(self, n_iterations: int) -> None:
        engine, result = self._engine, self._result
        generation_evals = self._generation_evals
        start = len(result.history)
        for iteration in range(start, start + n_iterations):
            subset = self._select_subset(iteration, result.history)
            tuned_names: tuple[str, ...]
            if subset is None:
                engine.set_mask(None)
                tuned_names = self.space.names
                self._active_subset_size = None
            else:
                mask = np.array([n in subset for n in self.space.names])
                engine.set_mask(mask)
                tuned_names = tuple(n for n in self.space.names if n in subset)
                self._active_subset_size = len(tuned_names)

            generation_evals.clear()
            stats = engine.step()
            record = IterationRecord(
                iteration=iteration,
                iteration_perf=max(generation_evals) if generation_evals else stats.best_fitness,
                best_perf=stats.best_fitness,
                elapsed_minutes=self.clock.elapsed_minutes,
                evaluations=stats.evaluations,
                tuned_parameters=tuned_names,
            )
            result.history.append(record)
            self._observe_iteration(record)

            if self.stopper.should_stop(result.history):
                result.stop_reason = "stopper"
                result.stopped_at = iteration
                break
        else:
            result.stop_reason = "budget"

        result.best_config = StackConfiguration.from_genome(
            self.space, engine.best.genome
        )
        result.eval_stats = self._collect_stats()

    # -- evaluation ---------------------------------------------------------------

    def _evaluate_config(
        self, workload: WorkloadLike, config: StackConfiguration, charge: bool
    ) -> float:
        if self.cache is not None:
            evaluation = self.cache.evaluate(
                self.simulator, workload, config, repeats=self.repeats
            )
        else:
            evaluation = self.simulator.evaluate(workload, config, repeats=self.repeats)
        self._n_evaluations += 1
        if charge:
            # Charged on cache hits too: a hit saves simulation work on
            # our side, not testbed time on the simulated cluster.
            self.clock.charge_evaluation(evaluation.charged_seconds)
        return evaluation.perf_mbps

    def _evaluate_generation(
        self, workload: WorkloadLike, individuals: Sequence[Individual]
    ) -> list[float]:
        """Evaluate one generation as a batch, bit-identically to a
        per-individual loop.

        Noise factors are pre-drawn in population order (so the noise
        stream advances exactly as the sequential path would), traces
        are built once per distinct genome, and each individual replays
        its own factor slice and charges the clock.
        """
        configs = [
            StackConfiguration.from_genome(self.space, ind.genome)
            for ind in individuals
        ]
        factors = self.simulator.noise.sample_factors(self.repeats * len(configs))
        traces = self._traces_for(workload, configs)
        perfs: list[float] = []
        for i, trace in enumerate(traces):
            window = factors[i * self.repeats : (i + 1) * self.repeats]
            evaluation = self.simulator.evaluate_trace_with_factors(trace, window)
            self._n_evaluations += 1
            self.clock.charge_evaluation(evaluation.charged_seconds)
            perfs.append(evaluation.perf_mbps)
        return perfs

    def _traces_for(
        self, workload: WorkloadLike, configs: Sequence[StackConfiguration]
    ) -> list[StackTrace]:
        """One trace per config, built once per distinct configuration
        (through the cache when attached, a thread pool when asked)."""
        order: list[StackConfiguration] = []
        index: dict[StackConfiguration, int] = {}
        for config in configs:
            if config not in index:
                index[config] = len(order)
                order.append(config)

        traces: list[StackTrace | None] = [None] * len(order)
        missing: list[int] = []
        for j, config in enumerate(order):
            cached = (
                self.cache.lookup(self.simulator.platform, workload, config)
                if self.cache is not None
                else None
            )
            if cached is None:
                missing.append(j)
            else:
                traces[j] = cached

        if missing:
            if self.batch_workers is not None and len(missing) > 1:
                with ThreadPoolExecutor(max_workers=self.batch_workers) as pool:
                    built = list(
                        pool.map(
                            lambda j: self.simulator.trace(workload, order[j]), missing
                        )
                    )
            else:
                built = [self.simulator.trace(workload, order[j]) for j in missing]
            for j, trace in zip(missing, built):
                traces[j] = trace
                if self.cache is not None:
                    self.cache.store(self.simulator.platform, workload, order[j], trace)

        return [traces[index[config]] for config in configs]  # type: ignore[misc]

    # -- fastpath accounting ----------------------------------------------------

    def _begin_stats_window(self) -> None:
        self._n_evaluations = 0
        cache = self.cache
        self._stats_base = (
            self.simulator.traces_built,
            self.simulator.trace_replays,
            cache.hits if cache else 0,
            cache.misses if cache else 0,
            cache.evictions if cache else 0,
        )

    def _collect_stats(self) -> EvaluationStats:
        built0, replays0, hits0, misses0, evict0 = self._stats_base
        cache = self.cache
        return EvaluationStats(
            evaluations=self._n_evaluations,
            cache_hits=(cache.hits - hits0) if cache else 0,
            cache_misses=(cache.misses - misses0) if cache else 0,
            cache_evictions=(cache.evictions - evict0) if cache else 0,
            traces_built=self.simulator.traces_built - built0,
            trace_replays=self.simulator.trace_replays - replays0,
        )
