"""HSTuner: the genetic-algorithm I/O tuner TunIO builds on.

HSTuner drives a GA (tournament selection + elitism, as in the paper's
DEAP pipeline) over the 12-parameter HDF5/MPI-IO/Lustre space.  Each
fitness evaluation runs the workload (or its I/O kernel) on the stack
simulator three times, averages bandwidths into the ``perf`` objective,
and charges one run's duration plus setup overhead to the simulated
tuning clock.

The class exposes one extension point, :meth:`_select_subset`, returning
the parameter names the next generation may vary (None = all).  TunIO's
Smart Configuration Generation plugs in there; the base class always
returns None, which *is* HSTuner.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ga import (
    EvolutionEngine,
    Individual,
    Toolbox,
    tournament_pair,
    uniform_crossover,
    uniform_reset_mutation,
)
from repro.iostack.clock import SimulatedClock
from repro.iostack.config import StackConfiguration
from repro.iostack.parameters import TUNED_SPACE, ParameterSpace
from repro.iostack.simulator import IOStackSimulator, WorkloadLike

from .base import IterationRecord, Tuner, TuningResult
from .stoppers import NoStop, Stopper

__all__ = ["HSTuner"]


class HSTuner(Tuner):
    """GA-based I/O stack tuner (the paper's baseline pipeline).

    Parameters
    ----------
    simulator:
        The stack simulator standing in for the testbed.
    space:
        Parameter space to tune (defaults to the paper's 12 parameters).
    population_size, n_elites:
        GA shape; the paper's pipeline uses elitism (1 elite) with
        3-way-tournament parent selection.
    stopper:
        Stopping strategy consulted after every generation.
    repeats:
        Runs averaged per evaluation (3 in the paper's methodology).
    mutation_probability:
        Per-gene mutation rate of offspring.
    rng:
        Seeded generator for reproducibility.
    """

    name = "hstuner"

    def __init__(
        self,
        simulator: IOStackSimulator,
        space: ParameterSpace = TUNED_SPACE,
        population_size: int = 6,
        n_elites: int = 1,
        stopper: Stopper | None = None,
        repeats: int = 3,
        mutation_probability: float = 0.12,
        rng: np.random.Generator | None = None,
    ):
        self.simulator = simulator
        self.space = space
        self.population_size = population_size
        self.n_elites = n_elites
        self.stopper = stopper if stopper is not None else NoStop()
        self.repeats = repeats
        self.mutation_probability = mutation_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.clock = SimulatedClock()
        self._active_subset_size: int | None = None

    # -- extension point -----------------------------------------------------

    def _select_subset(
        self, iteration: int, history: Sequence[IterationRecord]
    ) -> tuple[str, ...] | None:
        """Parameter names the next generation may vary; None = all.
        Overridden by TunIO's Smart Configuration Generation."""
        return None

    def _observe_iteration(self, record: IterationRecord) -> None:
        """Hook called after each iteration (TunIO feeds its agents)."""

    # -- pipeline --------------------------------------------------------------

    def tune(self, workload: WorkloadLike, max_iterations: int = 50) -> TuningResult:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.clock.reset()
        self.stopper.reset()

        result = TuningResult(tuner_name=self.name, workload_name=workload.name)
        result.baseline_perf = self._evaluate_config(
            workload, StackConfiguration.default(self.space), charge=False
        )

        generation_evals: list[float] = []

        def evaluate(ind: Individual) -> float:
            config = StackConfiguration.from_genome(self.space, ind.genome)
            perf = self._evaluate_config(workload, config, charge=True)
            generation_evals.append(perf)
            return perf

        def generate(n: int, rng: np.random.Generator) -> list[Individual]:
            # HSTuner explores outward from the library defaults: the
            # initial population is the default configuration plus
            # neighbour perturbations of it.  (Uniform-random seeding
            # would start the search deep inside the space and skip the
            # climb the paper's tuning curves show.)
            default = Individual(self.space.encode(self.space.default_values()))
            population = [default]
            while len(population) < n:
                population.append(
                    uniform_reset_mutation(
                        default,
                        rng,
                        cardinalities=self.space.cardinalities,
                        per_gene_probability=0.15,
                    )
                )
            return population

        def mutate(ind: Individual, rng: np.random.Generator) -> Individual:
            # Classic DEAP-style uniform reset (mutUniformInt): a mutated
            # gene re-draws uniformly among its candidate values.  Subset
            # tuning concentrates the whole mutation budget into the
            # active subset: the expected number of mutated genes per
            # child stays constant however narrow the mask is -- which is
            # exactly why a small high-impact subset converges faster.
            active = self._active_subset_size or len(self.space)
            rate = min(0.6, self.mutation_probability * len(self.space) / active)
            return uniform_reset_mutation(
                ind,
                rng,
                cardinalities=self.space.cardinalities,
                per_gene_probability=rate,
            )

        toolbox = Toolbox()
        toolbox.register("generate", generate)
        toolbox.register("evaluate", evaluate)
        toolbox.register("select", tournament_pair)
        toolbox.register("mate", uniform_crossover)
        toolbox.register("mutate", mutate)

        engine = EvolutionEngine(
            toolbox,
            population_size=self.population_size,
            n_elites=self.n_elites,
            rng=self.rng,
        )

        # Preserved so a session can resume later (interactive refinement).
        self._engine = engine
        self._result = result
        self._generation_evals = generation_evals
        self._run_iterations(max_iterations)
        return result

    def resume(self, extra_iterations: int) -> TuningResult:
        """Continue a finished :meth:`tune` run for more iterations,
        keeping the GA population, clock and stopper state."""
        if getattr(self, "_engine", None) is None:
            raise RuntimeError("nothing to resume; call tune() first")
        if extra_iterations < 1:
            raise ValueError("extra_iterations must be >= 1")
        self._run_iterations(extra_iterations)
        return self._result

    def _run_iterations(self, n_iterations: int) -> None:
        engine, result = self._engine, self._result
        generation_evals = self._generation_evals
        start = len(result.history)
        for iteration in range(start, start + n_iterations):
            subset = self._select_subset(iteration, result.history)
            tuned_names: tuple[str, ...]
            if subset is None:
                engine.set_mask(None)
                tuned_names = self.space.names
                self._active_subset_size = None
            else:
                mask = np.array([n in subset for n in self.space.names])
                engine.set_mask(mask)
                tuned_names = tuple(n for n in self.space.names if n in subset)
                self._active_subset_size = len(tuned_names)

            generation_evals.clear()
            stats = engine.step()
            record = IterationRecord(
                iteration=iteration,
                iteration_perf=max(generation_evals) if generation_evals else stats.best_fitness,
                best_perf=stats.best_fitness,
                elapsed_minutes=self.clock.elapsed_minutes,
                evaluations=stats.evaluations,
                tuned_parameters=tuned_names,
            )
            result.history.append(record)
            self._observe_iteration(record)

            if self.stopper.should_stop(result.history):
                result.stop_reason = "stopper"
                result.stopped_at = iteration
                break
        else:
            result.stop_reason = "budget"

        result.best_config = StackConfiguration.from_genome(
            self.space, engine.best.genome
        )

    # -- evaluation ---------------------------------------------------------------

    def _evaluate_config(
        self, workload: WorkloadLike, config: StackConfiguration, charge: bool
    ) -> float:
        evaluation = self.simulator.evaluate(workload, config, repeats=self.repeats)
        if charge:
            self.clock.charge_evaluation(evaluation.charged_seconds)
        return evaluation.perf_mbps
