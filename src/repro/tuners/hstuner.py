"""HSTuner: the genetic-algorithm I/O tuner TunIO builds on.

HSTuner drives a GA (tournament selection + elitism, as in the paper's
DEAP pipeline) over the 12-parameter HDF5/MPI-IO/Lustre space.  Each
fitness evaluation runs the workload (or its I/O kernel) on the stack
simulator three times, averages bandwidths into the ``perf`` objective,
and charges one run's duration plus setup overhead to the simulated
tuning clock.

The class exposes one extension point, :meth:`_select_subset`, returning
the parameter names the next generation may vary (None = all).  TunIO's
Smart Configuration Generation plugs in there; the base class always
returns None, which *is* HSTuner.

Evaluation fastpath
-------------------
Evaluations ride the simulator's trace/replay fastpath and, when a
:class:`~repro.iostack.evalcache.EvaluationCache` is attached, re-visited
configurations (elites re-drawn by crossover, duplicate genomes, the
default baseline) skip the stack traversal entirely.  Each generation is
additionally dispatched as one batch: noise factors are pre-drawn in
population order, traces are deduplicated per distinct genome (and
optionally built by a thread pool), then every individual replays its
own factor slice.  All of this is bit-identical to the naive
per-individual, per-repeat loop -- same fitnesses, same noise-stream
consumption, same clock charges -- the fastpath only removes redundant
deterministic work.  :attr:`TuningResult.eval_stats` records what was
saved.

Resilience
----------
Every evaluation flows through a
:class:`~repro.tuners.resilience.ResilientEvaluator`: retryable failures
(injected faults, timeouts, non-finite measurements) are retried with
simulated-clock-charged exponential backoff, configurations that exhaust
their retries are quarantined at the worst-case fitness instead of
crashing the generation, and a thread-pool batch whose worker raises
falls back to serial trace building with the failing genome preserved in
the exception chain.  With nothing failing, the harness performs exactly
the calls the bare fastpath would -- results stay bit-identical.

Journaling
----------
:meth:`attach_journal` arms crash-safe checkpoint/resume: completed
generations are appended to a JSONL journal, and a replay cursor feeds
journaled evaluations back on resume so an interrupted run continues
bit-identically (see :mod:`repro.tuners.journal`).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Mapping, Sequence

import numpy as np

from repro.ga import (
    EvolutionEngine,
    Individual,
    Toolbox,
    repair_individual,
    tournament_pair,
    uniform_crossover,
    uniform_reset_mutation,
)
from repro.iostack.clock import SimulatedClock
from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationCache, EvaluationStats
from repro.iostack.faults import EvaluationError
from repro.iostack.parameters import TUNED_SPACE, ConstraintRegistry, ParameterSpace
from repro.iostack.simulator import IOStackSimulator, StackTrace, WorkloadLike
from repro.observability.recorder import NULL_RECORDER, Recorder

from .base import IterationRecord, Tuner, TuningResult
from .journal import (
    BaselineRecord,
    GenerationRecord,
    JournalError,
    JournalWriter,
    ReplayCursor,
    rng_state_jsonable,
    verify_rng,
)
from .resilience import ResilientEvaluator, RetryPolicy
from .stoppers import NoStop, Stopper

__all__ = ["HSTuner"]

#: Attempts at perturbing the seed genome before accepting a duplicate
#: (only a degenerate space -- all cardinalities 1 -- exhausts this).
_MAX_PERTURBATION_ATTEMPTS = 16

#: Per-process state of the trace-building pool workers (shipped once
#: via the initializer instead of pickled per task).
_POOL_SIMULATOR: IOStackSimulator | None = None
_POOL_WORKLOAD: WorkloadLike | None = None


def _trace_pool_init(simulator: IOStackSimulator, workload: WorkloadLike) -> None:
    global _POOL_SIMULATOR, _POOL_WORKLOAD
    _POOL_SIMULATOR = simulator
    _POOL_WORKLOAD = workload


def _trace_pool_job(config: StackConfiguration) -> StackTrace:
    """Build one trace in a pool worker.  ``trace()`` is a pure
    function of (platform, workload, config) -- it draws no RNG -- so
    the result is bit-identical to a parent-process build."""
    assert _POOL_SIMULATOR is not None and _POOL_WORKLOAD is not None
    return _POOL_SIMULATOR.trace(_POOL_WORKLOAD, config)


class HSTuner(Tuner):
    """GA-based I/O stack tuner (the paper's baseline pipeline).

    Parameters
    ----------
    simulator:
        The stack simulator standing in for the testbed.
    space:
        Parameter space to tune (defaults to the paper's 12 parameters).
    population_size, n_elites:
        GA shape; the paper's pipeline uses elitism (1 elite) with
        3-way-tournament parent selection.
    stopper:
        Stopping strategy consulted after every generation.
    repeats:
        Runs averaged per evaluation (3 in the paper's methodology).
    mutation_probability:
        Per-gene mutation rate of offspring.
    rng:
        Seeded generator for reproducibility.
    cache:
        Optional evaluation cache; repeat configurations reuse their
        stored trace (results stay bit-identical, the simulated clock is
        still charged on hits).
    batch_evaluation:
        Dispatch each generation through the toolbox's ``evaluate_batch``
        entry (deduplicates traces within the generation); results are
        bit-identical to per-individual evaluation.
    workers:
        Size of the *process* pool building missing traces inside a
        batch; ``None``, ``0`` or ``1`` (default) build serially and
        ``N >= 2`` opts in.  Trace construction draws no RNG, so pooled
        builds are bit-identical to serial ones (the parent is credited
        with the traversals for stats purposes).  Automatically falls
        back to serial when a fault plan is attached -- fault decisions
        must be drawn from the parent's schedule -- or when the pool
        itself breaks.
    batch_workers:
        Deprecated alias kept for the legacy *thread* pool; use
        ``workers`` instead.  Determinism is unaffected either way
        (noise factors are pre-drawn in population order).
    dedupe_duplicates:
        Forwarded to :class:`~repro.ga.engine.EvolutionEngine`: share one
        fitness among identical genomes of a generation.  Off by default
        because it changes noise and clock accounting for stochastic
        evaluations (the trace-level dedupe above already removes the
        redundant work without that side effect).
    retry_policy:
        How evaluation failures are retried/timed-out/quarantined; see
        :class:`~repro.tuners.resilience.RetryPolicy`.  The default
        policy never engages unless something actually fails.
    constraints:
        Optional cross-parameter
        :class:`~repro.iostack.parameters.ConstraintRegistry`.  When
        given, a ``repair`` hook is registered in the GA toolbox so
        every bred individual (initial population and post-variation
        offspring) is projected onto the constraint-satisfying region,
        and a user-supplied ``seed_config`` is strictly validated up
        front (raising with one actionable message per violation).
        ``None`` (the default) changes nothing -- runs stay bit-identical
        to pre-constraint builds.
    seed_config:
        Optional starting configuration for the GA (defaults to the
        library defaults).  Must belong to ``space``; validated against
        ``constraints`` when both are given.
    recorder:
        Optional :class:`~repro.observability.recorder.Recorder`; a
        :class:`~repro.observability.recorder.TraceRecorder` streams the
        run's events (baseline, evaluations, generations, agent
        decisions, cache/retry activity, run end) to a JSONL trace.  The
        default :data:`~repro.observability.recorder.NULL_RECORDER`
        drops everything; either way the recorder is a pure observer --
        it never draws RNG or touches the simulated clock, so traced
        runs are bit-identical to untraced ones.
    """

    name = "hstuner"

    def __init__(
        self,
        simulator: IOStackSimulator,
        space: ParameterSpace = TUNED_SPACE,
        population_size: int = 6,
        n_elites: int = 1,
        stopper: Stopper | None = None,
        repeats: int = 3,
        mutation_probability: float = 0.12,
        rng: np.random.Generator | None = None,
        cache: EvaluationCache | None = None,
        batch_evaluation: bool = True,
        workers: int | None = None,
        batch_workers: int | None = None,
        dedupe_duplicates: bool = False,
        retry_policy: RetryPolicy | None = None,
        constraints: ConstraintRegistry | None = None,
        seed_config: StackConfiguration | None = None,
        recorder: Recorder | None = None,
    ):
        if workers is not None and workers < 0:
            raise ValueError(
                "workers must be >= 0 (or None for serial; >= 2 uses a "
                "process pool)"
            )
        if batch_workers is not None:
            warnings.warn(
                "batch_workers (thread pool) is deprecated; use workers "
                "(process pool) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if batch_workers < 1:
                raise ValueError("batch_workers must be >= 1 (or None for serial)")
        if seed_config is not None and seed_config.space != space:
            raise ValueError(
                "seed_config belongs to a different parameter space than the tuner"
            )
        if constraints is not None and seed_config is not None:
            # Strict gate for user-supplied seeds: fail fast with one
            # actionable message per violation (bred individuals are
            # repaired instead, never rejected).
            seed_config.validate(constraints)
        self.simulator = simulator
        self.space = space
        self.population_size = population_size
        self.n_elites = n_elites
        self.stopper = stopper if stopper is not None else NoStop()
        self.repeats = repeats
        self.mutation_probability = mutation_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.cache = cache
        self.batch_evaluation = batch_evaluation
        self.workers = workers
        self.batch_workers = batch_workers
        self.dedupe_duplicates = dedupe_duplicates
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.constraints = constraints
        self.seed_config = seed_config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.clock = SimulatedClock()
        self._active_subset_size: int | None = None
        self._n_evaluations = 0
        self._stats_base: tuple[int, int, int, int, int] = (0, 0, 0, 0, 0)
        self._disk_base: tuple[int, int, int] = (0, 0, 0)
        self._faults_base = 0
        self._prewarm: tuple[int, int, int] = (0, 0, 0)
        #: Iteration the trace's evaluation events belong to (None before
        #: the first generation, i.e. during the baseline).
        self._trace_iteration: int | None = None
        self._resilient = ResilientEvaluator(
            self.simulator, self.clock, cache=self.cache, policy=self.retry_policy
        )
        self._resilient.recorder = self.recorder
        # Journal hooks (attach_journal); None = no journaling/replay.
        self._journal_writer: JournalWriter | None = None
        self._replay_cursor: ReplayCursor | None = None
        self._replay_record: GenerationRecord | None = None
        self._replay_pop = 0
        self._replay_warmed = False
        self._dispatch_log: list[list[int]] = []

    # -- journaling ----------------------------------------------------------

    def attach_journal(
        self,
        writer: JournalWriter | None,
        replay: ReplayCursor | None = None,
    ) -> None:
        """Arm checkpoint/resume: ``writer`` appends each completed
        generation; ``replay`` (a cursor over a loaded journal) answers
        journaled generations on resume instead of re-simulating them."""
        self._journal_writer = writer
        self._replay_cursor = replay
        self._replay_warmed = False

    # -- extension point -----------------------------------------------------

    def _select_subset(
        self, iteration: int, history: Sequence[IterationRecord]
    ) -> tuple[str, ...] | None:
        """Parameter names the next generation may vary; None = all.
        Overridden by TunIO's Smart Configuration Generation."""
        return None

    def _observe_iteration(self, record: IterationRecord) -> None:
        """Hook called after each iteration (TunIO feeds its agents)."""

    def _drain_guardrail_warnings(self) -> list[str]:
        """Deduplicated guardrail warning lines queued since the last
        drain (overridden by tuners that carry a guardrail monitor)."""
        return []

    def _guardrail_trip_count(self) -> int:
        """Guardrail trips recorded this run (0 for the plain tuner)."""
        return 0

    # -- per-generation warning summaries -----------------------------------

    def _resilience_counts(self) -> dict[str, int]:
        s = self._resilient.stats
        return {
            "retries": s.retries,
            "timeouts": s.timeouts,
            "quarantined": s.quarantined,
            "fallbacks": s.fallbacks,
        }

    def _warn_generation_events(
        self, iteration: int, before: dict[str, int]
    ) -> None:
        """Emit at most one resilience summary per generation (instead
        of one line per retried evaluation) plus any queued guardrail
        warnings -- each trip kind surfaces once per run, not once per
        decision."""
        after = self._resilience_counts()
        parts = [
            f"{after[key] - before[key]} {key}"
            for key in after
            if after[key] > before[key]
        ]
        lines = []
        if parts:
            lines.append(
                f"iteration {iteration}: resilience events: " + ", ".join(parts)
            )
        lines.extend(self._drain_guardrail_warnings())
        for line in lines:
            warnings.warn(line, RuntimeWarning, stacklevel=3)

    # -- pipeline --------------------------------------------------------------

    def tune(self, workload: WorkloadLike, max_iterations: int = 50) -> TuningResult:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.clock.reset()
        self.stopper.reset()
        self._resilient = ResilientEvaluator(
            self.simulator, self.clock, cache=self.cache, policy=self.retry_policy
        )
        recorder = self.recorder
        recorder.bind_clock(self.clock)
        self._resilient.recorder = recorder
        if self.cache is not None:
            self.cache.recorder = recorder
            # Scope this run's persistent cache entries to the active
            # constraint registry (None = unconstrained, a distinct key).
            self.cache.constraint_fingerprint = (
                self.constraints.fingerprint() if self.constraints is not None else None
            )
        if self.simulator.faults is not None:
            # Rewind the fault schedule and tie its degraded windows to
            # this run's clock, so repeated tunes replay the same plan.
            self.simulator.faults.reset()
            self.simulator.faults.attach_clock(self.clock)
        self._begin_stats_window()
        if recorder.enabled:
            recorder.emit(
                "run_start",
                tuner=self.name,
                workload=workload.name,
                max_iterations=max_iterations,
                population_size=self.population_size,
                repeats=self.repeats,
                resumed=self._replay_cursor is not None,
            )

        result = TuningResult(tuner_name=self.name, workload_name=workload.name)
        result.baseline_perf = self._baseline_perf(workload)

        generation_evals: list[float] = []

        def evaluate(ind: Individual) -> float:
            self._dispatch_log.append([int(i) for i in ind.genome])
            record = self._replay_record
            if record is not None:
                perf = self._replay_perf(record)
            else:
                config = StackConfiguration.from_genome(self.space, ind.genome)
                perf = self._evaluate_config(workload, config, charge=True)
            generation_evals.append(perf)
            if recorder.enabled:
                recorder.emit(
                    "evaluation",
                    iteration=self._trace_iteration,
                    genome=[int(i) for i in ind.genome],
                    perf=perf,
                    replayed=record is not None,
                )
            return perf

        def evaluate_batch(individuals: Sequence[Individual]) -> list[float]:
            self._dispatch_log.extend(
                [int(i) for i in ind.genome] for ind in individuals
            )
            record = self._replay_record
            if record is not None:
                perfs = [self._replay_perf(record) for _ in individuals]
            else:
                perfs = self._evaluate_generation(workload, individuals)
            generation_evals.extend(perfs)
            if recorder.enabled:
                for ind, perf in zip(individuals, perfs):
                    recorder.emit(
                        "evaluation",
                        iteration=self._trace_iteration,
                        genome=[int(i) for i in ind.genome],
                        perf=perf,
                        replayed=record is not None,
                    )
            return perfs

        def generate(n: int, rng: np.random.Generator) -> list[Individual]:
            # HSTuner explores outward from the library defaults (or a
            # user-supplied seed): the initial population is the seed
            # configuration plus neighbour perturbations of it.
            # (Uniform-random seeding would start the search deep inside
            # the space and skip the climb the paper's tuning curves
            # show.)
            if self.seed_config is not None:
                seed = Individual(self.seed_config.genome())
            else:
                seed = Individual(self.space.encode(self.space.default_values()))
            population = [seed]
            while len(population) < n:
                population.append(self._perturbed(seed, rng))
            return population

        def mutate(ind: Individual, rng: np.random.Generator) -> Individual:
            # Classic DEAP-style uniform reset (mutUniformInt): a mutated
            # gene re-draws uniformly among its candidate values.  Subset
            # tuning concentrates the whole mutation budget into the
            # active subset: the expected number of mutated genes per
            # child stays constant however narrow the mask is -- which is
            # exactly why a small high-impact subset converges faster.
            active = self._active_subset_size or len(self.space)
            rate = min(0.6, self.mutation_probability * len(self.space) / active)
            return uniform_reset_mutation(
                ind,
                rng,
                cardinalities=self.space.cardinalities,
                per_gene_probability=rate,
            )

        toolbox = Toolbox()
        toolbox.register("generate", generate)
        toolbox.register("evaluate", evaluate)
        toolbox.register("select", tournament_pair)
        toolbox.register("mate", uniform_crossover)
        toolbox.register("mutate", mutate)
        if self.batch_evaluation:
            toolbox.register("evaluate_batch", evaluate_batch)
        if self.constraints is not None:
            toolbox.register("repair", repair_individual, registry=self.constraints)

        engine = EvolutionEngine(
            toolbox,
            population_size=self.population_size,
            n_elites=self.n_elites,
            rng=self.rng,
            dedupe_duplicates=self.dedupe_duplicates,
        )

        # Preserved so a session can resume later (interactive refinement).
        self._engine = engine
        self._result = result
        self._generation_evals = generation_evals
        self._workload = workload
        self._run_iterations(max_iterations)
        return result

    def resume(self, extra_iterations: int) -> TuningResult:
        """Continue a finished :meth:`tune` run for more iterations,
        keeping the GA population, clock and stopper state."""
        if getattr(self, "_engine", None) is None:
            raise RuntimeError("nothing to resume; call tune() first")
        if extra_iterations < 1:
            raise ValueError("extra_iterations must be >= 1")
        self._run_iterations(extra_iterations)
        return self._result

    def _perturbed(self, seed: Individual, rng: np.random.Generator) -> Individual:
        """A perturbation of the seed genome that actually differs from
        it.  A ~15% per-gene reset leaves every gene untouched for ~14%
        of draws; re-drawing those avoids silently spending a full
        evaluation on a duplicate of the seed."""
        candidate = seed
        for _ in range(_MAX_PERTURBATION_ATTEMPTS):
            candidate = uniform_reset_mutation(
                seed,
                rng,
                cardinalities=self.space.cardinalities,
                per_gene_probability=0.15,
            )
            if not candidate.same_genome(seed):
                return candidate
        return candidate  # degenerate space: nothing can differ

    def _run_iterations(self, n_iterations: int) -> None:
        engine, result = self._engine, self._result
        generation_evals = self._generation_evals
        recorder = self.recorder
        start = len(result.history)
        for iteration in range(start, start + n_iterations):
            self._trace_iteration = iteration
            subset = self._select_subset(iteration, result.history)
            tuned_names: tuple[str, ...]
            if subset is None:
                engine.set_mask(None)
                tuned_names = self.space.names
                self._active_subset_size = None
            else:
                mask = np.array([n in subset for n in self.space.names])
                engine.set_mask(mask)
                tuned_names = tuple(n for n in self.space.names if n in subset)
                self._active_subset_size = len(tuned_names)

            generation_evals.clear()
            self._dispatch_log.clear()
            self._replay_pop = 0
            self._replay_record = (
                self._replay_cursor.next_generation() if self._replay_cursor else None
            )
            if (
                self._replay_cursor is not None
                and self._replay_record is None
                and not self._replay_warmed
            ):
                # Replay just ran dry: the next generation goes live.
                self._warm_cache_from_journal()
                self._replay_warmed = True
            resilience_before = self._resilience_counts()
            stats = engine.step()
            replayed = self._replay_record is not None
            if self._replay_record is not None:
                self._finish_replay(self._replay_record)
                self._replay_record = None
            record = IterationRecord(
                iteration=iteration,
                iteration_perf=max(generation_evals) if generation_evals else stats.best_fitness,
                best_perf=stats.best_fitness,
                elapsed_minutes=self.clock.elapsed_minutes,
                evaluations=stats.evaluations,
                tuned_parameters=tuned_names,
            )
            result.history.append(record)
            if recorder.enabled:
                recorder.emit(
                    "generation",
                    iteration=iteration,
                    iteration_perf=record.iteration_perf,
                    best_perf=record.best_perf,
                    elapsed_minutes=record.elapsed_minutes,
                    evaluations=record.evaluations,
                    subset=list(tuned_names),
                    replayed=replayed,
                )
            self._observe_iteration(record)
            if self._journal_writer is not None:
                self._journal_writer.write_generation(
                    self._generation_record(iteration, tuned_names, generation_evals)
                )

            should_stop = self.stopper.should_stop(result.history)
            if recorder.enabled:
                recorder.emit(
                    "agent_decision",
                    agent="stopper",
                    iteration=iteration,
                    stop=bool(should_stop),
                )
            self._warn_generation_events(iteration, resilience_before)
            if should_stop:
                result.stop_reason = "stopper"
                result.stopped_at = iteration
                break
        else:
            result.stop_reason = "budget"

        self._trace_iteration = None
        result.best_config = StackConfiguration.from_genome(
            self.space, engine.best.genome
        )
        result.eval_stats = self._collect_stats()
        if self._journal_writer is not None:
            self._journal_writer.write_final(result.stop_reason, result.stopped_at)
        if recorder.enabled:
            recorder.emit(
                "run_end",
                stop_reason=result.stop_reason,
                stopped_at=result.stopped_at,
                best_perf=result.best_perf,
                baseline_perf=result.baseline_perf,
                total_minutes=result.total_minutes,
                total_evaluations=result.total_evaluations,
                best_genome=[int(i) for i in engine.best.genome],
                eval_stats=result.eval_stats.as_dict(),
                guardrail_trips=list(result.guardrail_trips),
            )

    # -- journal record/replay ---------------------------------------------------

    def _baseline_perf(self, workload: WorkloadLike) -> float:
        """Evaluate (or replay) the untuned baseline and journal it."""
        record = self._replay_cursor.baseline() if self._replay_cursor else None
        if record is not None:
            perf = record.perf
            self.simulator.noise.seek(record.noise_position)
            if self.simulator.faults is not None and record.fault_state is not None:
                self.simulator.faults.set_state(record.fault_state)
            self._n_evaluations = record.n_evaluations
            self._restore_fastpath_window(record.fastpath)
        else:
            perf = self._evaluate_config(
                workload, StackConfiguration.default(self.space), charge=False
            )
        if self.recorder.enabled:
            self.recorder.emit("baseline", perf=perf, replayed=record is not None)
        if self._journal_writer is not None:
            self._journal_writer.write_baseline(
                BaselineRecord(
                    perf=perf,
                    noise_position=self.simulator.noise.position,
                    n_evaluations=self._n_evaluations,
                    fault_state=(
                        self.simulator.faults.get_state()
                        if self.simulator.faults is not None
                        else None
                    ),
                    fastpath=self._fastpath_window(),
                )
            )
        return perf

    def _replay_perf(self, record: GenerationRecord) -> float:
        """The next journaled perf of the generation being replayed."""
        if self._replay_pop >= len(record.perfs):
            raise JournalError(
                f"journal mismatch at iteration {record.iteration}: the resumed "
                f"pipeline dispatched more evaluations than the journaled run"
            )
        perf = record.perfs[self._replay_pop]
        self._replay_pop += 1
        return perf

    def _finish_replay(self, record: GenerationRecord) -> None:
        """Restore every stream a replayed generation would have
        consumed, then verify the replay stayed on the journaled path."""
        if self._dispatch_log != [list(g) for g in record.dispatched]:
            raise JournalError(
                f"journal mismatch at iteration {record.iteration}: the resumed "
                f"pipeline dispatched different genomes than the journaled run "
                f"(was the journal written with different settings or seed?)"
            )
        self.simulator.noise.seek(record.noise_position)
        self.clock.restore(record.clock_seconds, record.clock_evaluations)
        self._n_evaluations = record.n_evaluations
        if self.simulator.faults is not None and record.fault_state is not None:
            self.simulator.faults.set_state(record.fault_state)
        self._resilient.restore_quarantine(record.quarantine)
        self._resilient.stats.restore(record.resilience)
        self._restore_fastpath_window(record.fastpath)
        verify_rng(record, self.rng)

    def _generation_record(
        self,
        iteration: int,
        tuned_names: tuple[str, ...],
        generation_evals: Sequence[float],
    ) -> GenerationRecord:
        engine = self._engine
        return GenerationRecord(
            iteration=iteration,
            dispatched=tuple(tuple(g) for g in self._dispatch_log),
            perfs=tuple(generation_evals),
            population=tuple(
                (tuple(int(i) for i in ind.genome), float(ind.fitness))
                for ind in engine.population
            ),
            subset=tuned_names,
            noise_position=self.simulator.noise.position,
            clock_seconds=self.clock.elapsed_seconds,
            clock_evaluations=self.clock.n_evaluations,
            n_evaluations=self._n_evaluations,
            rng_state=rng_state_jsonable(self.rng),
            fault_state=(
                self.simulator.faults.get_state()
                if self.simulator.faults is not None
                else None
            ),
            quarantine=self._resilient.quarantine_state(),
            resilience=self._resilient.stats.as_dict(),
            agent_state=self._journal_agent_state(),
            fastpath=self._fastpath_window(),
        )

    def _journal_agent_state(self) -> dict | None:
        """Agent state snapshot for the journal (overridden by TunIO to
        record its impact scores); informational, not used by replay."""
        return None

    def _warm_cache_from_journal(self) -> None:
        """Rebuild the traces the journaled generations cached, so the
        resumed run enters its first live generation with the same cache
        warmth as the uninterrupted one.

        Without this, revisited configurations would rebuild traces the
        original run served from cache -- harmless for results (trace
        construction is deterministic) except that each rebuild makes an
        extra fault-schedule draw, which would fork the fault stream.
        Fault checks are bypassed while warming (the journal already
        accounts the faults that fired) and quarantined configurations
        are skipped: nothing ever looks their traces up.  Only LRU
        recency can differ from the uninterrupted run, which matters
        only past ``maxsize`` distinct configurations.

        Warming is bookkeeping, not tuning: its lookups and trace builds
        are recorded in the ``prewarm_*`` fields of
        :class:`EvaluationStats` and excluded from the run's own cache
        counters, so a resumed run reports the same ``cache_hit_rate``
        as the uninterrupted one.
        """
        if self.cache is None or self._replay_cursor is None:
            return
        cache = self.cache
        genomes: dict[tuple[int, ...], None] = {}
        for record in self._replay_cursor.journal.generations:
            for genome in record.dispatched:
                genomes.setdefault(tuple(genome), None)
        configs = [StackConfiguration.default(self.space)] + [
            StackConfiguration.from_genome(self.space, genome) for genome in genomes
        ]
        hits0, misses0 = cache.hits, cache.misses
        evictions0, built0 = cache.evictions, self.simulator.traces_built
        faults, self.simulator.faults = self.simulator.faults, None
        # Warming lookups are not run cache activity: mute the cache's
        # per-op trace events for the duration (one summary event below).
        cache_recorder, cache.recorder = cache.recorder, None
        try:
            for config in configs:
                if self._resilient.is_quarantined(config):
                    continue
                cached = cache.lookup(
                    self.simulator.platform, self._workload, config
                )
                if cached is None:
                    trace = self.simulator.trace(self._workload, config)
                    cache.store(
                        self.simulator.platform, self._workload, config, trace
                    )
        finally:
            self.simulator.faults = faults
            cache.recorder = cache_recorder
        d_hits = cache.hits - hits0
        d_misses = cache.misses - misses0
        d_evictions = cache.evictions - evictions0
        d_built = self.simulator.traces_built - built0
        self._prewarm = (d_hits + d_misses, d_hits, d_built)
        # Exclude the warming deltas from the run's stats window.
        built_b, replays_b, hits_b, misses_b, evict_b = self._stats_base
        self._stats_base = (
            built_b + d_built,
            replays_b,
            hits_b + d_hits,
            misses_b + d_misses,
            evict_b + d_evictions,
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "cache_prewarm",
                lookups=d_hits + d_misses,
                hits=d_hits,
                builds=d_built,
            )

    # -- evaluation ---------------------------------------------------------------

    def _evaluate_config(
        self, workload: WorkloadLike, config: StackConfiguration, charge: bool
    ) -> float:
        perf = self._resilient.evaluate_config(
            workload, config, repeats=self.repeats, charge=charge
        )
        # Note on charging: a success is charged one run's duration (on
        # cache hits too -- a hit saves simulation work on our side, not
        # testbed time on the simulated cluster); failed attempts charge
        # their launch + backoff inside the resilient evaluator.
        self._n_evaluations += 1
        return perf

    def _evaluate_generation(
        self, workload: WorkloadLike, individuals: Sequence[Individual]
    ) -> list[float]:
        """Evaluate one generation as a batch, bit-identically to a
        per-individual loop when nothing fails.

        Noise factors are pre-drawn in population order (so the noise
        stream advances exactly as the sequential path would), traces
        are built once per distinct genome, and each individual replays
        its own factor slice and charges the clock.  Quarantined
        configurations (``None`` traces) are served the worst-case
        fitness; replay failures retry through the resilient harness.
        """
        configs = [
            StackConfiguration.from_genome(self.space, ind.genome)
            for ind in individuals
        ]
        factors = self.simulator.noise.sample_factors(self.repeats * len(configs))
        traces = self._traces_for(workload, configs)
        perfs: list[float] = []
        for i, (config, trace) in enumerate(zip(configs, traces)):
            self._n_evaluations += 1
            if trace is None:
                self._resilient.charge_quarantined(charge=True)
                perfs.append(self.retry_policy.worst_case_perf)
                continue
            window = factors[i * self.repeats : (i + 1) * self.repeats]
            perfs.append(
                self._resilient.evaluate_trace(
                    workload, config, trace, window, self.repeats, charge=True
                )
            )
        return perfs

    def _traces_for(
        self, workload: WorkloadLike, configs: Sequence[StackConfiguration]
    ) -> list[StackTrace | None]:
        """One trace per config (``None`` for quarantined ones), built
        once per distinct configuration -- through the cache when
        attached, a process pool (``workers``) or the deprecated thread
        pool (``batch_workers``) when asked.

        Pool workers perform one bare attempt each; any worker failure
        routes that configuration through the serial resilient path,
        which retries transient faults with backoff and wraps unexpected
        exceptions with the failing configuration's repr (so a raw
        worker traceback can never lose which genome failed).  The
        process pool is skipped entirely under an active fault plan:
        fault decisions must be drawn from the parent's schedule.
        """
        order: list[StackConfiguration] = []
        index: dict[StackConfiguration, int] = {}
        for config in configs:
            if config not in index:
                index[config] = len(order)
                order.append(config)

        traces: list[StackTrace | None] = [None] * len(order)
        missing: list[int] = []
        for j, config in enumerate(order):
            if self._resilient.is_quarantined(config):
                continue  # stays None: served worst-case downstream
            cached = (
                self.cache.lookup_trace(self.simulator, workload, config)
                if self.cache is not None
                else None
            )
            if cached is None:
                missing.append(j)
            else:
                traces[j] = cached

        if not missing:
            return [traces[index[config]] for config in configs]

        serial: list[tuple[int, int]] = []  # (order index, prior failed attempts)
        use_process_pool = (
            self.workers is not None
            and self.workers >= 2
            and len(missing) > 1
            # Fault decisions are drawn from the parent's schedule; a
            # worker process would consume a *copy* of the fault stream,
            # so fault-injected runs always build serially.
            and self.simulator.faults is None
        )
        if use_process_pool:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(missing)),
                    initializer=_trace_pool_init,
                    initargs=(self.simulator, workload),
                ) as pool:
                    futures = {
                        j: pool.submit(_trace_pool_job, order[j]) for j in missing
                    }
                    for j, future in futures.items():
                        exc = future.exception()
                        if exc is None:
                            traces[j] = future.result()
                            # The traversal happened in a worker; credit
                            # it here so eval_stats match a serial run.
                            self.simulator.traces_built += 1
                            if self.cache is not None:
                                self.cache.store_trace(
                                    self.simulator, workload, order[j], traces[j]
                                )
                        else:
                            self._resilient.stats.fallbacks += 1
                            serial.append((j, 0))
            except Exception:
                # The pool itself broke (spawn failure, pickling issue):
                # everything unbuilt falls back to the serial path.
                already = {j for j, _ in serial}
                extra = [
                    j for j in missing if traces[j] is None and j not in already
                ]
                self._resilient.stats.fallbacks += len(extra)
                serial.extend((j, 0) for j in extra)
        elif self.batch_workers is not None and len(missing) > 1:
            with ThreadPoolExecutor(max_workers=self.batch_workers) as pool:
                futures = {
                    j: pool.submit(self.simulator.trace, workload, order[j])
                    for j in missing
                }
            for j, future in futures.items():
                exc = future.exception()
                if exc is None:
                    traces[j] = future.result()
                    if self.cache is not None:
                        self.cache.store_trace(
                            self.simulator, workload, order[j], traces[j]
                        )
                elif isinstance(exc, EvaluationError):
                    # The worker's attempt counts against the retry
                    # budget; the serial path takes over from attempt 1
                    # (or quarantines immediately when retries are off).
                    if self.retry_policy.max_retries >= 1:
                        self._resilient.stats.retries += 1
                        self._resilient._charge_failed_attempt(0, charge=True)
                        serial.append((j, 1))
                    else:
                        self._resilient._quarantine(order[j], exc)
                else:
                    # A genuine bug in a worker: fall back to serial for
                    # this genome so the failure (if it reproduces) is
                    # raised with the config repr attached.
                    self._resilient.stats.fallbacks += 1
                    serial.append((j, 0))
        else:
            serial = [(j, 0) for j in missing]

        for j, failed_attempts in serial:
            traces[j] = self._resilient.build_trace(
                workload,
                order[j],
                charge=True,
                failed_attempts=failed_attempts,
                check_cache=False,
            )

        return [traces[index[config]] for config in configs]

    # -- fastpath accounting ----------------------------------------------------

    def _disk_counters(self) -> tuple[int, int, int]:
        """Live (hits, misses, stores) of the cache's persistent
        backend; zeros without one."""
        backend = self.cache.backend if self.cache is not None else None
        if backend is None:
            return (0, 0, 0)
        return (backend.hits, backend.misses, backend.stores)

    def _begin_stats_window(self) -> None:
        self._n_evaluations = 0
        self._prewarm = (0, 0, 0)
        cache = self.cache
        faults = self.simulator.faults
        self._stats_base = (
            self.simulator.traces_built,
            self.simulator.trace_replays,
            cache.hits if cache else 0,
            cache.misses if cache else 0,
            cache.evictions if cache else 0,
        )
        self._disk_base = self._disk_counters()
        self._faults_base = (
            faults.transient_errors_injected + faults.stragglers_injected
            if faults is not None
            else 0
        )

    def _fastpath_window(self) -> dict[str, int]:
        """The run-relative fastpath counters (current minus the window
        base), journaled at every record boundary so resume can restore
        them."""
        built0, replays0, hits0, misses0, evict0 = self._stats_base
        dhits0, dmisses0, dstores0 = self._disk_base
        dhits, dmisses, dstores = self._disk_counters()
        cache = self.cache
        return {
            "traces_built": self.simulator.traces_built - built0,
            "trace_replays": self.simulator.trace_replays - replays0,
            "cache_hits": (cache.hits - hits0) if cache else 0,
            "cache_misses": (cache.misses - misses0) if cache else 0,
            "cache_evictions": (cache.evictions - evict0) if cache else 0,
            "disk_hits": dhits - dhits0,
            "disk_misses": dmisses - dmisses0,
            "disk_stores": dstores - dstores0,
        }

    def _restore_fastpath_window(self, window: Mapping[str, int]) -> None:
        """Re-base the stats window so the run-relative counters equal a
        journaled record's ``fastpath`` dict.  Replayed generations skip
        the simulator entirely, so without this a resumed run would
        report zeros for everything the journaled generations did --
        including a deflated ``cache_hit_rate``.  Empty dicts (journals
        from older builds) are left alone: replay behaves as before."""
        if not window:
            return
        cache = self.cache
        self._stats_base = (
            self.simulator.traces_built - int(window.get("traces_built", 0)),
            self.simulator.trace_replays - int(window.get("trace_replays", 0)),
            (cache.hits if cache else 0) - int(window.get("cache_hits", 0)),
            (cache.misses if cache else 0) - int(window.get("cache_misses", 0)),
            (cache.evictions if cache else 0) - int(window.get("cache_evictions", 0)),
        )
        dhits, dmisses, dstores = self._disk_counters()
        self._disk_base = (
            dhits - int(window.get("disk_hits", 0)),
            dmisses - int(window.get("disk_misses", 0)),
            dstores - int(window.get("disk_stores", 0)),
        )

    def _collect_stats(self) -> EvaluationStats:
        built0, replays0, hits0, misses0, evict0 = self._stats_base
        cache = self.cache
        faults = self.simulator.faults
        injected = (
            faults.transient_errors_injected
            + faults.stragglers_injected
            - self._faults_base
            if faults is not None
            else 0
        )
        resilience = self._resilient.stats
        prewarm_lookups, prewarm_hits, prewarm_builds = self._prewarm
        dhits0, dmisses0, dstores0 = self._disk_base
        dhits, dmisses, dstores = self._disk_counters()
        return EvaluationStats(
            evaluations=self._n_evaluations,
            cache_hits=(cache.hits - hits0) if cache else 0,
            cache_misses=(cache.misses - misses0) if cache else 0,
            cache_evictions=(cache.evictions - evict0) if cache else 0,
            traces_built=self.simulator.traces_built - built0,
            trace_replays=self.simulator.trace_replays - replays0,
            retries=resilience.retries,
            timeouts=resilience.timeouts,
            quarantined=resilience.quarantined,
            fallbacks=resilience.fallbacks,
            faults_injected=injected,
            guardrail_trips=self._guardrail_trip_count(),
            prewarm_lookups=prewarm_lookups,
            prewarm_hits=prewarm_hits,
            prewarm_builds=prewarm_builds,
            disk_hits=dhits - dhits0,
            disk_misses=dmisses - dmisses0,
            disk_stores=dstores - dstores0,
        )
