"""Append-only JSONL tuning journal: crash-safe checkpoint/resume.

A long tuning campaign must survive being killed -- by a node failure,
a walltime limit, or an operator -- without losing the budget already
spent.  The journal makes every completed generation durable: after each
GA generation the tuner appends one JSON line carrying the population
(genomes and fitnesses), the dispatched evaluations and their measured
perfs, the RNG state, the noise/fault stream positions, the simulated
clock, the quarantine list and the agent state.  Each line is flushed
and fsynced, so a kill at any instant leaves a valid prefix (a torn
final line is detected and dropped on load).

Resume semantics (bit-identical by construction)
------------------------------------------------
Rather than restoring every stateful component from a snapshot (the RL
agents alone would need their replay buffers, target networks and
epsilon schedules serialised), resume *re-drives the tuner through the
journal*: the pipeline is rebuilt exactly as the original invocation
built it (same seed, same construction order) and re-runs, except that
each journaled generation's evaluations are answered from the journal
instead of the simulator, and the noise/fault stream positions and the
clock are fast-forwarded to the recorded values at each generation
boundary.  Everything that is *not* an evaluation -- breeding, subset
selection, agent training, stopping decisions -- re-executes the exact
code with the exact RNG stream, so the resumed run is the uninterrupted
run.  The recorded RNG state doubles as an integrity check: at every
replayed generation boundary the live RNG state must equal the journaled
one, otherwise the journal does not belong to this pipeline
(:class:`JournalError`).

Replaying skips the simulator entirely, so the evaluation cache is not
warmed by journaled generations; post-resume generations rebuild traces
on demand.  Traces from faulted attempts were never stored (they raise
before construction), so a resumed run can never be served a faulted or
partial trace.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.observability.profiling import maybe_span

__all__ = [
    "JournalError",
    "BaselineRecord",
    "GenerationRecord",
    "Journal",
    "JournalWriter",
    "ReplayCursor",
    "load_journal",
    "rng_state_jsonable",
]

JOURNAL_VERSION = 1


class JournalError(Exception):
    """The journal is unreadable, inconsistent, or belongs to a
    different pipeline than the one replaying it."""


def rng_state_jsonable(rng: np.random.Generator) -> dict[str, Any]:
    """A generator's bit-generator state, normalised through a JSON
    round-trip so recorded and live states compare with ``==``."""
    return json.loads(json.dumps(rng.bit_generator.state))


# -- records -----------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineRecord:
    """The untuned-configuration evaluation that opens every run."""

    perf: float
    noise_position: int
    n_evaluations: int
    fault_state: dict[str, Any] | None = None
    #: Run-relative fastpath counters (cache hits/misses/evictions,
    #: traces built/replayed) at this record's boundary.  Restored on
    #: replay so a resumed run's :class:`EvaluationStats` match the
    #: uninterrupted run's; empty in journals from older builds (replay
    #: then skips the restore, as before).
    fastpath: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "baseline",
            "perf": self.perf,
            "noise_position": self.noise_position,
            "n_evaluations": self.n_evaluations,
            "fault_state": self.fault_state,
            "fastpath": self.fastpath,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "BaselineRecord":
        return cls(
            perf=float(obj["perf"]),
            noise_position=int(obj["noise_position"]),
            n_evaluations=int(obj["n_evaluations"]),
            fault_state=obj.get("fault_state"),
            fastpath=dict(obj.get("fastpath", {})),
        )


@dataclass(frozen=True)
class GenerationRecord:
    """One completed GA generation: what was evaluated, what it scored,
    and the exact post-generation state of every stream the evaluation
    consumed."""

    iteration: int
    #: Genomes dispatched for evaluation this generation, in order.
    dispatched: tuple[tuple[int, ...], ...]
    #: Their measured perfs (MB/s), same order.
    perfs: tuple[float, ...]
    #: Full population after evaluation (genome, fitness) pairs.
    population: tuple[tuple[tuple[int, ...], float], ...]
    #: Parameter names tuned this generation (subset tuning).
    subset: tuple[str, ...]
    noise_position: int
    clock_seconds: float
    clock_evaluations: int
    n_evaluations: int
    rng_state: dict[str, Any]
    fault_state: dict[str, Any] | None = None
    quarantine: dict[str, str] = field(default_factory=dict)
    resilience: dict[str, int] = field(default_factory=dict)
    agent_state: dict[str, Any] | None = None
    #: Run-relative fastpath counters at this generation's boundary
    #: (see :attr:`BaselineRecord.fastpath`).
    fastpath: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "generation",
            "iteration": self.iteration,
            "dispatched": [list(g) for g in self.dispatched],
            "perfs": list(self.perfs),
            "population": [[list(g), f] for g, f in self.population],
            "subset": list(self.subset),
            "noise_position": self.noise_position,
            "clock_seconds": self.clock_seconds,
            "clock_evaluations": self.clock_evaluations,
            "n_evaluations": self.n_evaluations,
            "rng_state": self.rng_state,
            "fault_state": self.fault_state,
            "quarantine": self.quarantine,
            "resilience": self.resilience,
            "agent_state": self.agent_state,
            "fastpath": self.fastpath,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "GenerationRecord":
        return cls(
            iteration=int(obj["iteration"]),
            dispatched=tuple(tuple(int(i) for i in g) for g in obj["dispatched"]),
            perfs=tuple(float(p) for p in obj["perfs"]),
            population=tuple(
                (tuple(int(i) for i in g), float(f)) for g, f in obj["population"]
            ),
            subset=tuple(obj.get("subset", ())),
            noise_position=int(obj["noise_position"]),
            clock_seconds=float(obj["clock_seconds"]),
            clock_evaluations=int(obj["clock_evaluations"]),
            n_evaluations=int(obj["n_evaluations"]),
            rng_state=dict(obj["rng_state"]),
            fault_state=obj.get("fault_state"),
            quarantine=dict(obj.get("quarantine", {})),
            resilience=dict(obj.get("resilience", {})),
            agent_state=obj.get("agent_state"),
            fastpath=dict(obj.get("fastpath", {})),
        )


@dataclass
class Journal:
    """A parsed journal: header, baseline, the generation ledger, and
    the final marker when the run completed."""

    header: dict[str, Any]
    baseline: BaselineRecord | None = None
    generations: list[GenerationRecord] = field(default_factory=list)
    final: dict[str, Any] | None = None
    #: Byte length of the valid prefix; a torn trailing line (crash
    #: mid-append) lies beyond it and is truncated away before the
    #: resumed run appends.
    valid_bytes: int = 0

    @property
    def last_iteration(self) -> int:
        """Highest journaled generation index, -1 when none."""
        return self.generations[-1].iteration if self.generations else -1

    @property
    def completed(self) -> bool:
        return self.final is not None


def _iter_records(path: str) -> Iterator[tuple[dict[str, Any], int]]:
    """Yield ``(record, end_offset)`` for decodable JSON lines; stop at
    the first torn/undecodable line (a crash mid-append leaves at most
    one, at the end).  ``end_offset`` is the byte offset just past the
    record's newline, so the caller knows where the valid prefix ends."""
    offset = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            offset += len(line.encode("utf-8"))
            stripped = line.strip()
            if not stripped:
                continue
            if not line.endswith("\n"):
                return  # torn final line without its newline
            try:
                obj = json.loads(stripped)
            except json.JSONDecodeError:
                return
            if not isinstance(obj, dict) or "type" not in obj:
                return
            yield obj, offset


def load_journal(path: str) -> Journal:
    """Parse a journal file, tolerating a torn trailing line.

    Raises :class:`JournalError` when the file is missing, does not
    start with a valid header, or interleaves generations out of order.
    """
    if not os.path.exists(path):
        raise JournalError(f"journal not found: {path}")
    records = _iter_records(path)
    try:
        header, end = next(records)
    except StopIteration:
        raise JournalError(f"journal is empty: {path}") from None
    if header.get("type") != "header":
        raise JournalError(f"journal does not start with a header: {path}")
    version = header.get("version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"unsupported journal version {version!r} (supported: {JOURNAL_VERSION})"
        )
    journal = Journal(header=header, valid_bytes=end)
    for obj, end in records:
        kind = obj["type"]
        if kind == "baseline":
            journal.baseline = BaselineRecord.from_json(obj)
        elif kind == "generation":
            record = GenerationRecord.from_json(obj)
            if record.iteration != journal.last_iteration + 1:
                raise JournalError(
                    f"journal generations out of order: expected iteration "
                    f"{journal.last_iteration + 1}, found {record.iteration}"
                )
            journal.generations.append(record)
        elif kind == "final":
            journal.final = obj
        else:
            raise JournalError(f"unknown journal record type {kind!r}")
        journal.valid_bytes = end
    return journal


class JournalWriter:
    """Appends records to a journal file, fsyncing each line.

    When resuming (``resume_from`` is a loaded :class:`Journal`), records
    the resumed run re-emits for already-journaled generations are
    skipped, so the file stays strictly append-only across restarts.
    """

    def __init__(
        self,
        path: str,
        header: Mapping[str, Any],
        resume_from: Journal | None = None,
    ):
        self.path = path
        self._last_recorded = (
            resume_from.last_iteration if resume_from is not None else -1
        )
        self._baseline_recorded = (
            resume_from is not None and resume_from.baseline is not None
        )
        self._final_recorded = resume_from is not None and resume_from.completed
        if resume_from is None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
            self._append(
                {"type": "header", "version": JOURNAL_VERSION, **dict(header)}
            )
        else:
            # Drop any torn trailing line the kill left behind, so the
            # resumed records don't get glued onto half a record.
            if 0 < resume_from.valid_bytes < os.path.getsize(path):
                with open(path, "r+b") as fh:
                    fh.truncate(resume_from.valid_bytes)
            self._fh = open(path, "a", encoding="utf-8")

    def _append(self, obj: Mapping[str, Any]) -> None:
        with maybe_span("journal.fsync"):
            self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def write_baseline(self, record: BaselineRecord) -> None:
        if self._baseline_recorded:
            return
        self._baseline_recorded = True
        self._append(record.to_json())

    def write_generation(self, record: GenerationRecord) -> None:
        if record.iteration <= self._last_recorded:
            return
        self._last_recorded = record.iteration
        self._append(record.to_json())

    def write_final(self, stop_reason: str, stopped_at: int | None) -> None:
        if self._final_recorded:
            return
        self._final_recorded = True
        self._append(
            {"type": "final", "stop_reason": stop_reason, "stopped_at": stopped_at}
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ReplayCursor:
    """Feeds journaled evaluations back to a resuming tuner, in order."""

    def __init__(self, journal: Journal):
        self.journal = journal
        self._baseline_consumed = False
        self._next = 0

    def baseline(self) -> BaselineRecord | None:
        """The baseline record, once; None on later calls or when the
        journal has none."""
        if self._baseline_consumed:
            return None
        self._baseline_consumed = True
        return self.journal.baseline

    def next_generation(self) -> GenerationRecord | None:
        """The next journaled generation, or None when the journal is
        exhausted (the tuner goes live from there)."""
        if self._next >= len(self.journal.generations):
            return None
        record = self.journal.generations[self._next]
        self._next += 1
        return record

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.journal.generations)


def verify_dispatch(
    record: GenerationRecord, genomes: Sequence[Sequence[int]]
) -> None:
    """Check that the individuals a replaying engine dispatched match the
    journaled ones -- the cheap integrity guard that catches resuming
    with the wrong seed, workload or tuner settings."""
    recorded = [list(g) for g in record.dispatched]
    live = [list(g) for g in genomes]
    if recorded != live:
        raise JournalError(
            f"journal mismatch at iteration {record.iteration}: the resumed "
            f"pipeline dispatched different genomes than the journaled run "
            f"(was the journal written with different settings or seed?)"
        )


def verify_rng(record: GenerationRecord, rng: np.random.Generator) -> None:
    """Check that the replaying RNG reached the journaled state at the
    generation boundary (the strong bit-identity guard)."""
    live = rng_state_jsonable(rng)
    if live != record.rng_state:
        raise JournalError(
            f"journal mismatch at iteration {record.iteration}: RNG state "
            f"diverged during replay (journal written by an incompatible "
            f"pipeline or code version)"
        )
