"""Application-lifecycle cost analysis (the paper's Figure 12).

Tuning pays off only if the application runs often enough: total cost
over the lifecycle is ``tuning_minutes + n_executions x per_run_minutes``
(the y-intercept is the tuning time).  The *viability point* against the
no-tuning line is the execution count where the tuned lifecycle becomes
cheaper; two tuners can also be compared for the crossover where the
slower-but-better tune overtakes the faster one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.iostack.config import StackConfiguration
from repro.iostack.simulator import IOStackSimulator, WorkloadLike
from repro.iostack.units import seconds_to_minutes

from .base import TuningResult

__all__ = ["LifecycleModel", "lifecycle_model", "viability_point", "crossover_point"]


@dataclass(frozen=True)
class LifecycleModel:
    """Linear lifecycle cost: ``total(n) = tuning_minutes + n * run_minutes``."""

    name: str
    tuning_minutes: float
    run_minutes: float

    def __post_init__(self) -> None:
        if self.tuning_minutes < 0 or self.run_minutes <= 0:
            raise ValueError("tuning_minutes must be >= 0 and run_minutes > 0")

    def total_minutes(self, n_executions: float) -> float:
        """Lifecycle cost in minutes after ``n_executions`` runs."""
        if n_executions < 0:
            raise ValueError("n_executions must be >= 0")
        return self.tuning_minutes + n_executions * self.run_minutes


def lifecycle_model(
    simulator: IOStackSimulator,
    workload: WorkloadLike,
    result: TuningResult,
    name: str | None = None,
) -> LifecycleModel:
    """Build a lifecycle model from a tuning run: its tuning time plus
    the tuned configuration's per-run duration (noise-averaged)."""
    if result.best_config is None:
        raise ValueError("tuning result has no best_config")
    evaluation = simulator.evaluate(workload, result.best_config, repeats=3)
    return LifecycleModel(
        name=name or result.tuner_name,
        tuning_minutes=result.total_minutes,
        run_minutes=seconds_to_minutes(evaluation.charged_seconds),
    )


def untuned_model(
    simulator: IOStackSimulator,
    workload: WorkloadLike,
    space=None,
) -> LifecycleModel:
    """The no-tuning reference line (zero intercept, default config)."""
    config = (
        StackConfiguration.default(space)
        if space is not None
        else StackConfiguration.default()
    )
    evaluation = simulator.evaluate(workload, config, repeats=3)
    return LifecycleModel(
        name="no-tuning",
        tuning_minutes=0.0,
        run_minutes=seconds_to_minutes(evaluation.charged_seconds),
    )


def viability_point(tuned: LifecycleModel, untuned: LifecycleModel) -> int | None:
    """Executions after which tuning beats not tuning (None if never).

    Solves ``tuning + n*run_tuned <= n*run_untuned``.
    """
    saved_per_run = untuned.run_minutes - tuned.run_minutes
    if saved_per_run <= 0:
        return None
    return math.ceil(tuned.tuning_minutes / saved_per_run)


def crossover_point(a: LifecycleModel, b: LifecycleModel) -> int | None:
    """Executions at which model ``b`` overtakes model ``a`` (``b`` has
    the larger up-front tuning cost but the faster runs), or None if the
    lines never cross in n >= 0."""
    delta_tuning = b.tuning_minutes - a.tuning_minutes
    delta_run = a.run_minutes - b.run_minutes
    if delta_run <= 0:
        return None if delta_tuning > 0 else 0
    return max(0, math.ceil(delta_tuning / delta_run))
