"""The resilient evaluation harness: retry, timeout, quarantine.

Production tuning campaigns (the kind IOPathTune runs online against a
live Lustre deployment) cannot assume every evaluation succeeds: job
steps crash, stragglers blow past any reasonable deadline, and the odd
configuration reliably wedges the middleware.  :class:`ResilientEvaluator`
wraps the simulator's trace/replay fastpath so a failure becomes a
*decision* (retry, time out, quarantine) instead of a crash:

* **Bounded retry with exponential backoff.**  A retryable failure (any
  :class:`~repro.iostack.faults.EvaluationError`) is re-attempted up to
  ``max_retries`` times.  Each retry charges the simulated tuning clock
  with the failed launch plus the backoff wait -- failures cost tuning
  time exactly like the paper's RoTI accounting charges successful runs.
* **Simulated per-evaluation timeout.**  When ``timeout_seconds`` is set
  and an evaluation's charged runtime exceeds it, the run is treated as
  killed at the deadline: the clock is charged setup + timeout, the
  measurement is discarded, and the attempt counts as a retryable
  failure.  Stragglers injected by a fault plan surface here.
* **Quarantine.**  A configuration that exhausts its retries joins the
  quarantine list: it is assigned ``worst_case_perf`` (so the GA simply
  selects away from it) and later evaluations of the same configuration
  skip straight to the worst-case fitness without burning more budget.
* **Exception hygiene.**  Anything *not* an ``EvaluationError`` is a
  genuine bug; it is re-raised wrapped with the configuration repr so
  the failing genome is never lost (see
  :meth:`~repro.tuners.hstuner.HSTuner._traces_for` for the thread-pool
  fallback that uses this).

The happy path performs exactly the same calls in exactly the same order
as the unwrapped fastpath, so with no faults firing and no timeout
tripping, results remain bit-identical to the pre-harness pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.iostack.clock import SimulatedClock
from repro.iostack.config import StackConfiguration
from repro.iostack.evalcache import EvaluationCache
from repro.iostack.faults import (
    EvaluationError,
    EvaluationTimeout,
    config_digest,
)
from repro.iostack.simulator import (
    EvaluationResult,
    IOStackSimulator,
    StackTrace,
    WorkloadLike,
)

__all__ = ["HarnessError", "RetryPolicy", "ResilienceStats", "ResilientEvaluator"]


class HarnessError(Exception):
    """A non-retryable failure inside the evaluation harness, wrapped
    with the configuration that triggered it."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the harness responds to evaluation failures.

    Parameters
    ----------
    max_retries:
        Re-attempts after the first failure before quarantining.
    backoff_seconds, backoff_multiplier:
        Simulated wait before retry ``k`` is ``backoff_seconds *
        backoff_multiplier**k`` (exponential backoff, charged to the
        tuning clock).
    timeout_seconds:
        Simulated per-evaluation deadline; ``None`` disables timeouts.
    worst_case_perf:
        Fitness assigned to quarantined configurations (MB/s).  0.0 is
        the true worst case: the GA will never select it.
    """

    max_retries: int = 2
    backoff_seconds: float = 30.0
    backoff_multiplier: float = 2.0
    timeout_seconds: float | None = None
    worst_case_perf: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.worst_case_perf < 0:
            raise ValueError("worst_case_perf must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Simulated backoff wait before re-attempt ``attempt + 1``."""
        return self.backoff_seconds * self.backoff_multiplier**attempt


@dataclass
class ResilienceStats:
    """Mutable failure-handling counters for one tuning run."""

    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "fallbacks": self.fallbacks,
        }

    def restore(self, state: Mapping[str, int]) -> None:
        self.retries = int(state.get("retries", 0))
        self.timeouts = int(state.get("timeouts", 0))
        self.quarantined = int(state.get("quarantined", 0))
        self.fallbacks = int(state.get("fallbacks", 0))


class ResilientEvaluator:
    """Retry/timeout/quarantine wrapper around the evaluation fastpath.

    One instance serves one tuning run; it shares the tuner's simulator,
    cache and simulated clock so every failure is charged where a real
    testbed would charge it.
    """

    def __init__(
        self,
        simulator: IOStackSimulator,
        clock: SimulatedClock,
        cache: EvaluationCache | None = None,
        policy: RetryPolicy | None = None,
    ):
        self.simulator = simulator
        self.clock = clock
        self.cache = cache
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = ResilienceStats()
        #: config digest -> repr, for reporting and journal round-trips.
        self.quarantine: dict[str, str] = {}
        #: Optional trace recorder (duck-typed; see
        #: :mod:`repro.observability.recorder`).  None by default so the
        #: harness needs no observability import.
        self.recorder = None

    def _emit_retry(self, kind: str, config: StackConfiguration, **fields) -> None:
        """Emit one ``retry``-family trace event (no-op untraced)."""
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.emit("retry", kind=kind, config=config_digest(config), **fields)

    # -- quarantine -------------------------------------------------------------

    def is_quarantined(self, config: StackConfiguration) -> bool:
        return config_digest(config) in self.quarantine

    def _quarantine(self, config: StackConfiguration, cause: Exception) -> None:
        self.quarantine[config_digest(config)] = repr(config)
        self.stats.quarantined += 1
        self._emit_retry("quarantine", config, detail=str(cause))

    def quarantine_state(self) -> dict[str, str]:
        return dict(self.quarantine)

    def restore_quarantine(self, state: Mapping[str, str]) -> None:
        self.quarantine = {str(k): str(v) for k, v in state.items()}

    # -- clock charges ----------------------------------------------------------

    def _charge_failed_attempt(self, attempt: int, charge: bool) -> None:
        """A failed launch costs its setup plus the backoff wait."""
        if charge:
            self.clock.advance(
                self.clock.setup_overhead + self.policy.backoff_for(attempt)
            )

    def _charge_timeout(self, charge: bool) -> None:
        """A timed-out run was killed at the deadline."""
        if charge and self.policy.timeout_seconds is not None:
            self.clock.advance(self.clock.setup_overhead + self.policy.timeout_seconds)

    def charge_quarantined(self, charge: bool) -> None:
        """Serving a quarantined config costs one (rejected) submission."""
        if charge:
            self.clock.advance(self.clock.setup_overhead)

    # -- trace construction -----------------------------------------------------

    def build_trace(
        self,
        workload: WorkloadLike,
        config: StackConfiguration,
        charge: bool = True,
        failed_attempts: int = 0,
        check_cache: bool = True,
    ) -> StackTrace | None:
        """The trace for ``config``, retrying transient failures.

        Returns ``None`` when the configuration is (or becomes)
        quarantined.  ``failed_attempts`` credits failures that already
        happened elsewhere (a thread-pool worker's attempt) against the
        retry budget; callers that already performed (and counted) the
        cache lookup pass ``check_cache=False``.  Successful traces go
        through the cache; faulted attempts raise before producing
        anything, so no partial trace is ever stored.
        """
        if self.is_quarantined(config):
            return None
        if check_cache and self.cache is not None:
            cached = self.cache.lookup_trace(self.simulator, workload, config)
            if cached is not None:
                return cached
        last: EvaluationError | None = None
        for attempt in range(failed_attempts, self.policy.max_retries + 1):
            try:
                trace = self.simulator.trace(workload, config)
            except EvaluationError as exc:
                last = exc
                if attempt < self.policy.max_retries:
                    self.stats.retries += 1
                    self._charge_failed_attempt(attempt, charge)
                    self._emit_retry("retry", config, attempt=attempt, detail=str(exc))
                continue
            except Exception as exc:
                raise HarnessError(
                    f"trace construction failed for {config!r}"
                ) from exc
            if self.cache is not None:
                self.cache.store_trace(self.simulator, workload, config, trace)
            return trace
        assert last is not None
        self._quarantine(config, last)
        return None

    # -- evaluation -------------------------------------------------------------

    def _validated(self, evaluation: EvaluationResult) -> EvaluationResult:
        """Reject non-finite and timed-out measurements."""
        if not math.isfinite(evaluation.perf_mbps):
            raise EvaluationError(
                f"evaluation produced non-finite perf {evaluation.perf_mbps!r}"
            )
        timeout = self.policy.timeout_seconds
        if timeout is not None and evaluation.charged_seconds > timeout:
            raise EvaluationTimeout(
                f"evaluation ran {evaluation.charged_seconds:.1f}s "
                f"(timeout {timeout:.1f}s)"
            )
        return evaluation

    def evaluate_trace(
        self,
        workload: WorkloadLike,
        config: StackConfiguration,
        trace: StackTrace,
        factors,
        repeats: int,
        charge: bool = True,
    ) -> float:
        """Replay ``trace`` resiliently and return its perf.

        The first attempt uses the pre-drawn ``factors`` slice (so the
        batch path consumes the noise stream exactly as the serial path
        would); retry attempts draw fresh factors.  Timeouts and
        non-finite measurements retry, then quarantine.
        """
        attempt_factors = factors
        for attempt in range(self.policy.max_retries + 1):
            try:
                evaluation = self._validated(
                    self.simulator.evaluate_trace_with_factors(trace, attempt_factors)
                )
            except EvaluationTimeout as exc:
                self.stats.timeouts += 1
                self._charge_timeout(charge)
                self._emit_retry("timeout", config, attempt=attempt, detail=str(exc))
                last: EvaluationError = exc
            except EvaluationError as exc:
                self._charge_failed_attempt(attempt, charge)
                last = exc
            else:
                if charge:
                    self.clock.charge_evaluation(evaluation.charged_seconds)
                return evaluation.perf_mbps
            if attempt < self.policy.max_retries:
                self.stats.retries += 1
                self._emit_retry("retry", config, attempt=attempt, detail=str(last))
                attempt_factors = self.simulator.noise.sample_factors(repeats)
        self._quarantine(config, last)
        self.charge_quarantined(charge)
        return self.policy.worst_case_perf

    def evaluate_config(
        self,
        workload: WorkloadLike,
        config: StackConfiguration,
        repeats: int,
        charge: bool = True,
    ) -> float:
        """Full resilient evaluation: build (or fetch) the trace, then
        replay it ``repeats`` times.  Quarantined configurations are
        served the worst-case fitness immediately."""
        if self.is_quarantined(config):
            self.charge_quarantined(charge)
            return self.policy.worst_case_perf
        trace = self.build_trace(workload, config, charge=charge)
        if trace is None:
            self.charge_quarantined(charge)
            return self.policy.worst_case_perf
        factors = self.simulator.noise.sample_factors(repeats)
        return self.evaluate_trace(
            workload, config, trace, factors, repeats, charge=charge
        )
