"""Stopping strategies for tuning pipelines.

The paper compares four ways to end a tuning run (Figure 10):

* no stopping (exhaust the iteration budget) -- :class:`NoStop`;
* the traditional heuristic: stop when the objective has not improved by
  a threshold over a window of iterations (5% / 5 iterations in the
  paper) -- :class:`HeuristicStopper`;
* a "Maximizing Performance" oracle that stops exactly when the best
  achievable performance is reached (assumed perfect, as the paper does
  for Figure 10(b)) -- :class:`MaxPerfOracleStopper`;
* TunIO's RL-based early stopper -- :class:`repro.core.early_stopping.
  RLStopper`, which implements the same :class:`Stopper` protocol.

A stopper sees the running history (one :class:`IterationRecord` per
iteration) and answers "stop now?".
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from .base import IterationRecord

__all__ = [
    "Stopper",
    "NoStop",
    "HeuristicStopper",
    "MaxPerfOracleStopper",
    "TimeBudgetStopper",
    "AnyStopper",
    "FallbackStopper",
]


@runtime_checkable
class Stopper(Protocol):
    """Decides whether to end the tuning pipeline after each iteration."""

    name: str

    def should_stop(self, history: Sequence[IterationRecord]) -> bool: ...

    def reset(self) -> None: ...


class NoStop:
    """Never stops; the pipeline runs its full iteration budget."""

    name = "no-stop"

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        return False

    def reset(self) -> None:
        pass


class HeuristicStopper:
    """Stop when perf improved by less than ``threshold`` (relative) over
    the last ``window`` iterations -- the paper's 5%/5-iteration
    heuristic baseline."""

    def __init__(self, threshold: float = 0.05, window: int = 5):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.threshold = threshold
        self.window = window
        self.name = f"heuristic-{threshold:.0%}/{window}"

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        if len(history) <= self.window:
            return False
        past = history[-1 - self.window].best_perf
        now = history[-1].best_perf
        if past <= 0:
            return False
        return (now - past) / past < self.threshold

    def reset(self) -> None:
        pass


class MaxPerfOracleStopper:
    """Stops the moment the (externally known) optimal perf is reached.

    The paper: "Models which utilize Maximizing Performance stopping
    would typically take a few iterations to determine that the true
    optimal was reached, but we assume a perfect model for this
    evaluation."
    """

    name = "max-perf-oracle"

    def __init__(self, optimal_perf_mbps: float, tolerance: float = 0.005):
        if optimal_perf_mbps <= 0:
            raise ValueError("optimal_perf_mbps must be positive")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.optimal = optimal_perf_mbps
        self.tolerance = tolerance

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        if not history:
            return False
        return history[-1].best_perf >= self.optimal * (1.0 - self.tolerance)

    def reset(self) -> None:
        pass


class TimeBudgetStopper:
    """Stop when the simulated tuning overhead exceeds a budget in
    minutes (the user-constraint form of the tuning budget)."""

    def __init__(self, budget_minutes: float):
        if budget_minutes <= 0:
            raise ValueError("budget_minutes must be positive")
        self.budget_minutes = budget_minutes
        self.name = f"budget-{budget_minutes:g}min"

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        if not history:
            return False
        return history[-1].elapsed_minutes >= self.budget_minutes

    def reset(self) -> None:
        pass


class AnyStopper:
    """Stops when any member stopper fires (used to combine the RL
    stopper with hard user constraints such as a minute budget)."""

    def __init__(self, *stoppers: Stopper):
        if not stoppers:
            raise ValueError("AnyStopper needs at least one stopper")
        self.stoppers = stoppers
        self.name = "any(" + ",".join(s.name for s in stoppers) + ")"

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        return any(s.should_stop(history) for s in self.stoppers)

    def reset(self) -> None:
        for s in self.stoppers:
            s.reset()


class FallbackStopper:
    """Delegates to ``primary`` until :meth:`degrade` is called, then to
    ``fallback`` -- permanently for the rest of the run.

    This is the degraded-mode substrate for the guarded RL stopper: when
    a guardrail declares the RL policy untrustworthy, the pipeline keeps
    tuning under the plain patience heuristic instead of crashing or
    obeying a broken agent.  While not degraded the wrapper is
    transparent (one delegated call, no extra state), so healthy runs
    stay bit-identical.  :meth:`reset` clears the degradation: a fresh
    tune (or a journal replay) must re-earn the trip through the same
    deterministic checks, which is what keeps resumed runs on the
    journaled path.
    """

    def __init__(self, primary: Stopper, fallback: Stopper | None = None):
        self.primary = primary
        self.fallback = fallback if fallback is not None else HeuristicStopper()
        self._degraded_reason: str | None = None
        self.name = f"fallback({self.primary.name}->{self.fallback.name})"

    @property
    def degraded(self) -> bool:
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        return self._degraded_reason

    def degrade(self, reason: str) -> None:
        """Switch to the fallback stopper for the rest of the run."""
        if self._degraded_reason is None:
            self._degraded_reason = reason

    def should_stop(self, history: Sequence[IterationRecord]) -> bool:
        if self._degraded_reason is not None:
            return self.fallback.should_stop(history)
        return self.primary.should_stop(history)

    def reset(self) -> None:
        self._degraded_reason = None
        self.primary.reset()
        self.fallback.reset()
