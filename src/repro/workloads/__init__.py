"""Application workload models: VPIC, FLASH, HACC, MACSio (VPIC-dipole)
and BD-CATS, plus the synthetic dump-workload generator.

Each factory returns a :class:`~repro.workloads.base.Workload`, the
behavioural model the simulator runs.  The matching C sources (for
Application I/O Discovery) live in :mod:`repro.workloads.sources`.
"""

from .base import LoopGroup, Workload
from .bdcats import bdcats
from .flash import flash
from .generator import DumpSpec, build_dump_workload
from .hacc import hacc
from .ior import ior
from .macsio import DUMP_LOOP_ITERATIONS, macsio_vpic_dipole
from .vpic import vpic

__all__ = [
    "LoopGroup",
    "Workload",
    "bdcats",
    "flash",
    "DumpSpec",
    "build_dump_workload",
    "hacc",
    "ior",
    "DUMP_LOOP_ITERATIONS",
    "macsio_vpic_dipole",
    "vpic",
]
