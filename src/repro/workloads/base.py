"""Workload abstraction: a concrete application run the simulator can
execute.

A :class:`Workload` is a frozen bundle of job shape (procs/nodes) and
:class:`~repro.iostack.phase.IOPhase` objects.  It satisfies the
simulator's :class:`~repro.iostack.simulator.WorkloadLike` protocol and
supports the two kernel-reduction transforms at the behavioural level:

* :meth:`Workload.loop_reduced` -- keep the leading fraction of the
  iterations of I/O loops (phases tagged with a ``loop`` group), exactly
  what the source-level loop-reduction transform produces when the
  reduced kernel is recompiled and run;
* :meth:`Workload.switched_to_memory` -- retarget all phases at the
  node-local memory tier (I/O path switching).

``extrapolation_factor`` records the multiplier that must be applied to
the reduced run's scalable I/O metrics to estimate the original
application's metrics (the paper multiplies by the loop reduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.iostack.phase import IOPhase

__all__ = ["LoopGroup", "Workload"]


@dataclass(frozen=True)
class LoopGroup:
    """A run of phases produced by one source-level loop.

    ``phases`` holds one :class:`IOPhase` per *iteration block*: the
    first block may differ from the steady-state block (file creation,
    coordinate datasets and headers are written on the first pass), so a
    loop of ``n`` iterations is stored as ``[first, steady]`` with
    ``steady`` aggregating the remaining ``n - 1`` iterations.

    Attributes
    ----------
    name:
        Loop label, e.g. ``"dump_loop"``.
    n_iterations:
        True source-level iteration count.
    phases:
        The phases the loop contributes, already aggregated.
    reducible:
        Whether loop reduction may shrink this loop (the paper notes
        loops that are "too small to reduce" are left alone).
    """

    name: str
    n_iterations: int
    phases: tuple[IOPhase, ...]
    reducible: bool = True

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if not self.phases:
            raise ValueError("a loop group needs at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))


@dataclass(frozen=True)
class Workload:
    """A runnable application workload.

    Build one either from a factory in this package (``vpic()``,
    ``flash()``...) or from source analysis
    (:func:`repro.discovery.modelgen.workload_from_source`).
    """

    name: str
    n_procs: int
    n_nodes: int
    #: Phases outside any reducible loop (setup, finalise, logging...).
    fixed_phases: tuple[IOPhase, ...] = ()
    #: I/O loops, in program order relative to each other.
    loops: tuple[LoopGroup, ...] = ()
    #: Multiplier mapping this run's scalable I/O metrics back to the
    #: original application (1.0 unless loop-reduced).
    extrapolation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.n_procs < 1 or self.n_nodes < 1:
            raise ValueError("job shape must be positive")
        if self.n_procs < self.n_nodes:
            raise ValueError("need at least one process per node")
        if self.extrapolation_factor < 1.0:
            raise ValueError("extrapolation_factor must be >= 1")
        object.__setattr__(self, "fixed_phases", tuple(self.fixed_phases))
        object.__setattr__(self, "loops", tuple(self.loops))
        if not self.fixed_phases and not self.loops:
            raise ValueError("workload has no phases")

    # -- WorkloadLike protocol ---------------------------------------------------

    def phases(self) -> Sequence[IOPhase]:
        """All phases in program order: loop phases first-block order,
        then fixed phases (setup phases are modelled as fixed phases with
        their position implicit -- ordering does not affect totals)."""
        out: list[IOPhase] = list(self.fixed_phases)
        for loop in self.loops:
            out.extend(loop.phases)
        return out

    # -- totals --------------------------------------------------------------------

    @property
    def bytes_written(self) -> int:
        return sum(p.bytes_written for p in self.phases())

    @property
    def bytes_read(self) -> int:
        return sum(p.bytes_read for p in self.phases())

    @property
    def write_ops(self) -> int:
        return sum(p.write_ops for p in self.phases())

    @property
    def read_ops(self) -> int:
        return sum(p.read_ops for p in self.phases())

    @property
    def compute_seconds(self) -> float:
        return sum(p.compute_seconds for p in self.phases())

    @property
    def alpha(self) -> float:
        """Write fraction of transferred bytes (the objective weight)."""
        total = self.bytes_written + self.bytes_read
        return self.bytes_written / total if total else 0.0

    # -- kernel transforms ------------------------------------------------------------

    def loop_reduced(self, fraction: float) -> "Workload":
        """Keep the leading ``ceil(fraction * n)`` iterations of each
        reducible loop.

        Keeping *leading* iterations preserves first-iteration setup cost
        and data locality, per the paper.  The extrapolation factor is
        the nominal ``1 / fraction`` -- the paper multiplies scalable
        metrics "by the loop reductions", which over-estimates when
        ``ceil`` rounds the kept-iteration count up (the effect Figure
        8(c) attributes the reduced kernel's +ops error to).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        new_loops: list[LoopGroup] = []
        any_reduced = False
        for loop in self.loops:
            kept = math.ceil(fraction * loop.n_iterations)
            if not loop.reducible or kept >= loop.n_iterations:
                new_loops.append(loop)  # too small to reduce
                continue
            any_reduced = True
            new_loops.append(_truncate_loop(loop, kept))
        if not any_reduced:
            return self
        return replace(
            self,
            name=f"{self.name}+loopred",
            loops=tuple(new_loops),
            extrapolation_factor=self.extrapolation_factor / fraction,
        )

    def switched_to_memory(self) -> "Workload":
        """Retarget every phase at the node-local memory tier."""
        return replace(
            self,
            name=f"{self.name}+memio",
            fixed_phases=tuple(p.switched_to_memory() for p in self.fixed_phases),
            loops=tuple(
                replace(l, phases=tuple(p.switched_to_memory() for p in l.phases))
                for l in self.loops
            ),
        )

    def with_compute_scaled(self, factor: float) -> "Workload":
        """Scale every phase's compute time by ``factor``.

        ``factor=0`` models a perfect I/O kernel (all non-I/O statements
        removed); a small residual factor models the buffer
        initialisation the slicer must keep because H5Dwrite depends on
        it.
        """
        if factor < 0:
            raise ValueError("factor must be >= 0")

        def scale(p: IOPhase) -> IOPhase:
            return replace(p, compute_seconds=p.compute_seconds * factor)

        return replace(
            self,
            fixed_phases=tuple(scale(p) for p in self.fixed_phases),
            loops=tuple(
                replace(l, phases=tuple(scale(p) for p in l.phases)) for l in self.loops
            ),
        )

    def without_fixed_phases(self, *names: str) -> "Workload":
        """Drop named fixed phases (the I/O-kernel transform removes
        logging phases whose writes are not HDF5 calls)."""
        kept = tuple(p for p in self.fixed_phases if p.name not in names)
        if not kept and not self.loops:
            raise ValueError("cannot drop every phase")
        return replace(self, fixed_phases=kept)


def _truncate_loop(loop: LoopGroup, kept: int) -> LoopGroup:
    """Keep the leading ``kept`` iterations of a loop group.

    The first phase block covers the first iteration; the steady block
    covers the rest.  Scaling is proportional to the iterations each
    block loses.
    """
    first, *rest = loop.phases
    new_phases: list[IOPhase] = [first]
    remaining = kept - 1
    if rest and remaining > 0:
        steady_iters = loop.n_iterations - 1
        factor = remaining / steady_iters
        new_phases.extend(p.scaled(factor) for p in rest)
    return LoopGroup(
        name=loop.name,
        n_iterations=kept,
        phases=tuple(new_phases),
        reducible=loop.reducible,
    )
