"""BD-CATS: parallel DBSCAN clustering over particle datasets.

BD-CATS analyses the particle output of codes like VPIC: it *reads* the
particle properties (the bulk of its I/O), spends significant time in
the clustering computation (kd-tree build + union-find), and *writes*
back a cluster label per particle (a small fraction of the bytes read).
The paper's end-to-end pipeline test (Figures 11-12) runs it at 500 Cori
nodes / 1600 processes, the scale where untuned metadata storms and
1-OST default striping are most punishing.

Reads dominate (alpha is small), so tuning this workload exercises the
read path: sieve buffers, stripe spreading and collective read
buffering, with no extent-lock contention on the read side.
"""

from __future__ import annotations

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.iostack.units import MiB

from .base import LoopGroup, Workload

__all__ = ["bdcats"]

#: Particle properties read (x, y, z, ux, uy, uz -- BD-CATS clusters in
#: phase space).
_READ_VARS = 6
_VALUE_BYTES = 4
#: Bytes written per particle: one int32 cluster label.
_LABEL_BYTES = 4


def bdcats(
    n_procs: int = 1600,
    n_nodes: int = 500,
    particles_per_proc: int = 8_000_000,
    n_snapshots: int = 2,
    compute_seconds_per_snapshot: float = 120.0,
) -> Workload:
    """Build the BD-CATS workload (``n_snapshots`` clustering passes over
    successive simulation snapshots, as in production use)."""
    if particles_per_proc <= 0 or n_snapshots < 1:
        raise ValueError("particles_per_proc and n_snapshots must be positive")

    read_slab = particles_per_proc * _VALUE_BYTES  # one variable, one rank
    write_slab = particles_per_proc * _LABEL_BYTES

    def snapshot_phase(name: str, snaps: int, meta_scale: float) -> IOPhase:
        reads = RequestStream.uniform(
            "read",
            read_slab,
            _READ_VARS * n_procs * snaps,
            n_procs,
            shared_file=True,
            contiguity=0.9,
            interleave=0.3,
            collective_capable=True,
        )
        writes = RequestStream.uniform(
            "write",
            write_slab,
            n_procs * snaps,
            n_procs,
            shared_file=True,
            contiguity=0.9,
            interleave=0.3,
            collective_capable=True,
        )
        # Every rank opens the snapshot file and reads dataset headers:
        # at 1600 ranks this is the classic redundant-metadata storm.
        meta = MetadataStream(
            total_ops=round(40 * n_procs * snaps * meta_scale),
            n_procs=n_procs,
            per_proc_redundant=True,
            write_fraction=0.15,
        )
        return IOPhase(
            name=name,
            compute_seconds=compute_seconds_per_snapshot * snaps,
            data=(reads, writes),
            metadata=meta,
            chunked=True,
            chunk_size=8 * MiB,
            working_set_per_proc=read_slab,
        )

    blocks = [snapshot_phase("cluster_snapshot_first", 1, meta_scale=1.3)]
    if n_snapshots > 1:
        blocks.append(
            snapshot_phase("cluster_snapshot_steady", n_snapshots - 1, meta_scale=1.0)
        )

    return Workload(
        name="bd-cats",
        n_procs=n_procs,
        n_nodes=n_nodes,
        loops=(
            LoopGroup(
                name="snapshot_loop", n_iterations=n_snapshots, phases=tuple(blocks)
            ),
        ),
    )
