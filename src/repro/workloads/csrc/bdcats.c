/* BD-CATS: parallel DBSCAN clustering over particle snapshots.
 *
 * Per snapshot: read six particle properties per rank (the bulk of the
 * I/O), run the clustering computation, write one int32 cluster label
 * per particle.  Read-heavy: the objective weight alpha is small.
 */
#include <hdf5.h>
#include <mpi.h>
#include <stdlib.h>

#define N_SNAPSHOTS 2
#define READ_VARS 6
#define PARTICLES_PER_RANK 8000000
#define CLUSTER_ITERS 30000000000

int main(int argc, char **argv)
{
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    float *props = (float *) malloc(PARTICLES_PER_RANK * sizeof(float));
    int *labels = (int *) malloc(PARTICLES_PER_RANK * sizeof(int));
    double tree_cost = 0.0;
    double merge_cost = 0.0;

    hsize_t slab_dims[1] = {PARTICLES_PER_RANK};

    hid_t fapl_id = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(fapl_id, MPI_COMM_WORLD, MPI_INFO_NULL);
    hid_t file_id = H5Fopen("vpic_snapshot.h5", H5F_ACC_RDONLY, fapl_id);
    hid_t out_id = H5Fcreate("bdcats_labels.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl_id);
    hid_t slab_space = H5Screate_simple(1, slab_dims, NULL);

    for (int snap = 0; snap < N_SNAPSHOTS; snap++) {
        for (int v = 0; v < READ_VARS; v++) {
            hid_t prop_id = H5Dopen2(file_id, "particle_prop", H5P_DEFAULT);
            H5Dread(prop_id, H5T_NATIVE_FLOAT, slab_space, H5S_ALL, H5P_DEFAULT, props);
            H5Dclose(prop_id);
        }
        /* kd-tree build + union-find: removed by the slicer */
        for (long it = 0; it < CLUSTER_ITERS; it++) {
            tree_cost = tree_cost * 0.99999 + 0.00001;
            merge_cost = merge_cost + tree_cost * 0.03125;
        }
        hid_t label_id = H5Dcreate2(out_id, "cluster_labels", H5T_NATIVE_INT, slab_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(label_id, H5T_NATIVE_INT, slab_space, H5S_ALL, H5P_DEFAULT, labels);
        H5Dclose(label_id);
    }

    H5Sclose(slab_space);
    H5Pclose(fapl_id);
    H5Fclose(out_id);
    H5Fclose(file_id);
    free(props);
    free(labels);
    MPI_Finalize();
    return 0;
}
