/* FLASH-IO: checkpoint + plotfile kernel.
 *
 * Per checkpoint cycle: an evolve step (pure compute), 24 double-
 * precision unknowns written per rank, 8 single-precision plotfile
 * variables, and a heavy attribute/runtime-parameter metadata load.  The
 * first cycle writes extra setup attributes (tree structure, runtime
 * parameter tables).
 */
#include <hdf5.h>
#include <mpi.h>
#include <stdlib.h>

#define N_CHECKPOINTS 8
#define CKPT_VARS 24
#define PLOT_VARS 8
#define BLOCK_ELEMS 327680
#define N_ATTRS 26
#define INIT_ATTRS 40
#define EVOLVE_ITERS 1500000000

int main(int argc, char **argv)
{
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    double *unk = (double *) malloc(BLOCK_ELEMS * sizeof(double));
    float *plotvar = (float *) malloc(BLOCK_ELEMS * sizeof(float));
    double rtparams[64];
    double hydro_state = 1.0;
    double grav_state = 0.0;

    hsize_t unk_dims[1] = {BLOCK_ELEMS};

    hid_t fapl_id = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(fapl_id, MPI_COMM_WORLD, MPI_INFO_NULL);
    hid_t file_id = H5Fcreate("flash_checkpoint.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl_id);
    hid_t unk_space = H5Screate_simple(1, unk_dims, NULL);
    hid_t attr_id = H5Acreate2(file_id, "runtime_parameters", H5T_NATIVE_DOUBLE, unk_space, H5P_DEFAULT, H5P_DEFAULT);

    for (int ckpt = 0; ckpt < N_CHECKPOINTS; ckpt++) {
        /* hydro + gravity evolve: removed by the slicer */
        for (long it = 0; it < EVOLVE_ITERS; it++) {
            hydro_state = hydro_state * 0.9999 + 0.0001;
            grav_state = grav_state + hydro_state * 0.125;
        }
        if (ckpt == 0) {
            for (int a = 0; a < INIT_ATTRS; a++) {
                H5Awrite(attr_id, H5T_NATIVE_DOUBLE, rtparams);
            }
        }
        for (int a = 0; a < N_ATTRS; a++) {
            H5Awrite(attr_id, H5T_NATIVE_DOUBLE, rtparams);
        }
        for (int v = 0; v < CKPT_VARS; v++) {
            hid_t dset_id = H5Dcreate2(file_id, "unknown", H5T_NATIVE_DOUBLE, unk_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(dset_id, H5T_NATIVE_DOUBLE, unk_space, H5S_ALL, H5P_DEFAULT, unk);
            H5Dclose(dset_id);
        }
        for (int v = 0; v < PLOT_VARS; v++) {
            hid_t plot_id = H5Dcreate2(file_id, "plotvar", H5T_NATIVE_FLOAT, unk_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(plot_id, H5T_NATIVE_FLOAT, unk_space, H5S_ALL, H5P_DEFAULT, plotvar);
            H5Dclose(plot_id);
        }
    }

    H5Aclose(attr_id);
    H5Sclose(unk_space);
    H5Pclose(fapl_id);
    H5Fclose(file_id);
    free(unk);
    free(plotvar);
    MPI_Finalize();
    return 0;
}
