/* HACC-IO: cosmology checkpoint kernel.
 *
 * Nine per-particle variables checkpointed per cycle: seven float
 * records (xx..phi), one int64 pid record and one uint16 mask record --
 * 38 bytes per particle.  Each rank writes its whole population as one
 * very large contiguous record per variable.
 */
#include <hdf5.h>
#include <mpi.h>
#include <stdlib.h>

#define N_CHECKPOINTS 12
#define FLOAT_VARS 7
#define PARTICLES_PER_RANK 4000000
#define GRAVITY_ITERS 1250000000

int main(int argc, char **argv)
{
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    float *record = (float *) malloc(PARTICLES_PER_RANK * sizeof(float));
    long *pid = (long *) malloc(PARTICLES_PER_RANK * sizeof(long));
    short *mask = (short *) malloc(PARTICLES_PER_RANK * sizeof(short));
    double potential = 0.0;
    double kinetic = 0.0;

    hsize_t particle_dims[1] = {PARTICLES_PER_RANK};

    hid_t fapl_id = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(fapl_id, MPI_COMM_WORLD, MPI_INFO_NULL);
    hid_t file_id = H5Fcreate("hacc_checkpoint.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl_id);
    hid_t particle_space = H5Screate_simple(1, particle_dims, NULL);

    for (int ckpt = 0; ckpt < N_CHECKPOINTS; ckpt++) {
        /* gravity solve: removed by the slicer */
        for (long it = 0; it < GRAVITY_ITERS; it++) {
            potential = potential * 0.9998 + 0.0002;
            kinetic = kinetic + potential * 0.0625;
        }
        for (int v = 0; v < FLOAT_VARS; v++) {
            hid_t var_id = H5Dcreate2(file_id, "float_record", H5T_NATIVE_FLOAT, particle_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(var_id, H5T_NATIVE_FLOAT, particle_space, H5S_ALL, H5P_DEFAULT, record);
            H5Dclose(var_id);
        }
        hid_t pid_id = H5Dcreate2(file_id, "pid_record", H5T_NATIVE_INT64, particle_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(pid_id, H5T_NATIVE_INT64, particle_space, H5S_ALL, H5P_DEFAULT, pid);
        H5Dclose(pid_id);
        hid_t mask_id = H5Dcreate2(file_id, "mask_record", H5T_NATIVE_UINT16, particle_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(mask_id, H5T_NATIVE_UINT16, particle_space, H5S_ALL, H5P_DEFAULT, mask);
        H5Dclose(mask_id);
    }

    H5Sclose(particle_space);
    H5Pclose(fapl_id);
    H5Fclose(file_id);
    free(record);
    free(pid);
    free(mask);
    MPI_Finalize();
    return 0;
}
