/* MACSio proxy in the VPIC-dipole-baselined configuration (Figure 8).
 *
 * Structure: a long dump loop (85 dumps).  Each dump advances the field
 * (pure compute), writes 8 one-MiB variable parts per rank through HDF5,
 * and appends two lines to a plain-text log (the "trivial writes" that
 * Application I/O Discovery drops).  The first dump additionally writes a
 * small (16 KiB) coordinate array -- extra operations but negligible
 * bytes, which is what makes loop-reduction extrapolation overcount ops
 * while staying byte-accurate (Figure 8(c)).
 */
#include <hdf5.h>
#include <mpi.h>
#include <stdio.h>
#include <stdlib.h>

#define N_DUMPS 85
#define VARS_PER_DUMP 8
#define PART_ELEMS 131072
#define COORD_ELEMS 2048
#define COMPUTE_ITERS 250000000

int main(int argc, char **argv)
{
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    double *part = (double *) malloc(PART_ELEMS * sizeof(double));
    double *coords = (double *) malloc(COORD_ELEMS * sizeof(double));
    double field_energy = 0.0;
    double field_moment = 0.0;

    hsize_t part_dims[1] = {PART_ELEMS};
    hsize_t coord_dims[1] = {COORD_ELEMS};

    hid_t fapl_id = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(fapl_id, MPI_COMM_WORLD, MPI_INFO_NULL);
    hid_t file_id = H5Fcreate("macsio_dump.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl_id);
    hid_t part_space = H5Screate_simple(1, part_dims, NULL);
    hid_t coord_space = H5Screate_simple(1, coord_dims, NULL);

    FILE *logf = fopen("macsio_run.log", "a");

    for (int dump = 0; dump < N_DUMPS; dump++) {
        /* dipole field advance: pure physics state, no I/O buffers --
         * exactly what the kernel slicer removes */
        for (long it = 0; it < COMPUTE_ITERS; it++) {
            field_energy = field_energy * 0.999 + 0.001;
            field_moment = field_moment + field_energy * 0.5;
        }
        if (dump == 0) {
            hid_t coord_id = H5Dcreate2(file_id, "coords", H5T_NATIVE_DOUBLE, coord_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(coord_id, H5T_NATIVE_DOUBLE, coord_space, H5S_ALL, H5P_DEFAULT, coords);
            H5Dclose(coord_id);
        }
        for (int v = 0; v < VARS_PER_DUMP; v++) {
            hid_t dset_id = H5Dcreate2(file_id, "var_part", H5T_NATIVE_DOUBLE, part_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(dset_id, H5T_NATIVE_DOUBLE, part_space, H5S_ALL, H5P_DEFAULT, part);
            H5Dclose(dset_id);
        }
        fprintf(logf, "dump %d of %d complete\n", dump, N_DUMPS);
        fprintf(logf, "field energy %f after dump\n", field_energy);
    }

    fclose(logf);
    H5Sclose(part_space);
    H5Sclose(coord_space);
    H5Pclose(fapl_id);
    H5Fclose(file_id);
    free(part);
    free(coords);
    MPI_Finalize();
    return 0;
}
