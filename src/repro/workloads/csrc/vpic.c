/* VPIC-IO: particle dump kernel.
 *
 * Eight single-precision particle properties per timestep, written as
 * 1-D datasets into one shared HDF5 file; each rank owns a contiguous
 * slab.  Ten timesteps with a short field-advance between dumps.
 */
#include <hdf5.h>
#include <mpi.h>
#include <stdlib.h>

#define N_STEPS 10
#define N_PROPERTIES 8
#define PARTICLES_PER_RANK 8000000
#define PUSH_ITERS 1000000000

int main(int argc, char **argv)
{
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &nprocs);

    float *prop = (float *) malloc(PARTICLES_PER_RANK * sizeof(float));
    double e_field = 0.0;
    double b_field = 0.0;

    hsize_t slab_dims[1] = {PARTICLES_PER_RANK};

    hid_t fapl_id = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(fapl_id, MPI_COMM_WORLD, MPI_INFO_NULL);
    hid_t file_id = H5Fcreate("vpic_particles.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl_id);
    hid_t slab_space = H5Screate_simple(1, slab_dims, NULL);

    for (int step = 0; step < N_STEPS; step++) {
        /* particle push: removed by the slicer */
        for (long it = 0; it < PUSH_ITERS; it++) {
            e_field = e_field * 0.9995 + 0.0005;
            b_field = b_field + e_field * 0.25;
        }
        for (int p = 0; p < N_PROPERTIES; p++) {
            hid_t dset_id = H5Dcreate2(file_id, "particle_prop", H5T_NATIVE_FLOAT, slab_space, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
            H5Dwrite(dset_id, H5T_NATIVE_FLOAT, slab_space, H5S_ALL, H5P_DEFAULT, prop);
            H5Dclose(dset_id);
        }
    }

    H5Sclose(slab_space);
    H5Pclose(fapl_id);
    H5Fclose(file_id);
    free(prop);
    MPI_Finalize();
    return 0;
}
