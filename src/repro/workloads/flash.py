"""FLASH-IO: the checkpoint/plotfile kernel of the FLASH astrophysics
code.

FLASH-IO writes one checkpoint (24 double-precision "unknown" variables)
and two plotfiles (4 single-precision variables each) per run.  Each
process holds ~80 AMR blocks of 16^3 zones; a variable is written with
one H5Dwrite per process covering that process's block list -- a few MiB
per call, many calls, with block lists from different ranks interleaving
in the file.  The format is metadata-heavy: per-variable attributes,
runtime parameter tables, and tree structure all hit the metadata path
redundantly from every rank, which is why the collective-metadata and
metadata-cache parameters matter for this workload.
"""

from __future__ import annotations

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.iostack.units import MiB

from .base import LoopGroup, Workload

__all__ = ["flash"]

#: Checkpoint unknowns and plotfile variables in FLASH-IO.
_CHECKPOINT_VARS = 24
_PLOTFILE_VARS = 4
_N_PLOTFILES = 2

#: AMR block geometry: 16^3 zones, ~80 blocks per process.
_ZONES_PER_BLOCK = 16**3
_BLOCKS_PER_PROC = 80


def flash(
    n_procs: int = 128,
    n_nodes: int = 4,
    n_checkpoints: int = 8,
    compute_seconds_per_checkpoint: float = 6.0,
) -> Workload:
    """Build the FLASH-IO workload (``n_checkpoints`` checkpoint+plot
    cycles so the tuner has a loop to evaluate against)."""
    if n_checkpoints < 1:
        raise ValueError("n_checkpoints must be >= 1")

    ckpt_var_bytes = _BLOCKS_PER_PROC * _ZONES_PER_BLOCK * 8  # double precision
    plot_var_bytes = _BLOCKS_PER_PROC * _ZONES_PER_BLOCK * 4  # single precision

    def cycle_phase(name: str, cycles: int, extra_meta: float) -> IOPhase:
        ckpt = RequestStream.uniform(
            "write",
            ckpt_var_bytes,
            _CHECKPOINT_VARS * n_procs * cycles,
            n_procs,
            shared_file=True,
            contiguity=0.7,
            interleave=0.55,
            collective_capable=True,
        )
        plots = RequestStream.uniform(
            "write",
            plot_var_bytes,
            _PLOTFILE_VARS * _N_PLOTFILES * n_procs * cycles,
            n_procs,
            shared_file=True,
            contiguity=0.7,
            interleave=0.55,
            collective_capable=True,
        )
        # Attributes + runtime parameters + tree data, redundantly from
        # every rank: the dominant metadata source in FLASH-IO.
        meta = MetadataStream(
            total_ops=round((90 + extra_meta) * n_procs * cycles),
            n_procs=n_procs,
            per_proc_redundant=True,
            write_fraction=0.5,
        )
        return IOPhase(
            name=name,
            compute_seconds=compute_seconds_per_checkpoint * cycles,
            data=(ckpt, plots),
            metadata=meta,
            chunked=True,
            chunk_size=MiB,
            working_set_per_proc=_CHECKPOINT_VARS * ckpt_var_bytes,
        )

    blocks = [cycle_phase("checkpoint_first", 1, extra_meta=40.0)]
    if n_checkpoints > 1:
        blocks.append(cycle_phase("checkpoint_steady", n_checkpoints - 1, extra_meta=0.0))

    return Workload(
        name="flash-io",
        n_procs=n_procs,
        n_nodes=n_nodes,
        loops=(
            LoopGroup(
                name="checkpoint_loop", n_iterations=n_checkpoints, phases=tuple(blocks)
            ),
        ),
    )
