"""Synthetic workload generator (the reproduction's MACSio).

MACSio is "a Multi-purpose, Application-Centric, Scalable I/O proxy
application": it emits configurable dump workloads whose compute:I/O
ratio, dump cadence and request shape can be matched to a real
application.  :class:`DumpSpec`/:func:`build_dump_workload` play the same
role here: they synthesise a :class:`~repro.workloads.base.Workload` from
a declarative description, which :mod:`repro.workloads.macsio` uses to
mimic VPIC-dipole behaviour, and which library users can use directly for
their own proxies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.iostack.units import MiB

from .base import LoopGroup, Workload

__all__ = ["DumpSpec", "build_dump_workload"]


@dataclass(frozen=True)
class DumpSpec:
    """Declarative description of a dump-loop workload.

    Attributes
    ----------
    name:
        Workload name.
    n_procs, n_nodes:
        Job shape.
    n_dumps:
        Iterations of the main dump loop.
    bytes_per_proc_per_dump:
        Payload each process writes per dump.
    writes_per_proc_per_dump:
        H5Dwrite calls per process per dump (request size follows).
    compute_seconds_per_dump:
        Wall-clock compute preceding each dump.
    first_dump_extra_ops_fraction:
        Extra write operations on the first dump only (file creation,
        coordinate arrays, headers), as a fraction of a steady dump's
        ops.  MACSio and most simulation codes front-load this work.
    log_lines_per_proc_per_dump:
        Small POSIX log writes per process per dump (not HDF5, not
        collective-capable; the "trivial writes" Application I/O
        Discovery drops).
    log_line_bytes:
        Size of one log write.
    read_fraction:
        Bytes read back per dump as a fraction of bytes written (restart
        verification / plot readback); 0 for write-only dumps.
    interleave, contiguity:
        File-access character of the dump writes (see
        :class:`RequestStream`).
    chunked, chunk_size, working_set_per_proc:
        HDF5 dataset layout (see :class:`~repro.iostack.phase.IOPhase`).
    metadata_ops_per_proc_per_dump:
        HDF5 metadata operations per process per dump.
    """

    name: str
    n_procs: int
    n_nodes: int
    n_dumps: int
    bytes_per_proc_per_dump: int
    writes_per_proc_per_dump: int
    compute_seconds_per_dump: float
    first_dump_extra_ops_fraction: float = 0.2
    log_lines_per_proc_per_dump: float = 0.0
    log_line_bytes: int = 96
    read_fraction: float = 0.0
    interleave: float = 0.3
    contiguity: float = 0.8
    chunked: bool = True
    chunk_size: int = MiB
    working_set_per_proc: int = 64 * MiB
    metadata_ops_per_proc_per_dump: float = 16.0

    def __post_init__(self) -> None:
        if self.n_dumps < 1:
            raise ValueError("n_dumps must be >= 1")
        if self.bytes_per_proc_per_dump <= 0 or self.writes_per_proc_per_dump <= 0:
            raise ValueError("dump payload must be positive")
        if not 0.0 <= self.first_dump_extra_ops_fraction <= 2.0:
            raise ValueError("first_dump_extra_ops_fraction out of range")
        if self.read_fraction < 0:
            raise ValueError("read_fraction must be >= 0")


def build_dump_workload(spec: DumpSpec) -> Workload:
    """Materialise a :class:`Workload` from a :class:`DumpSpec`.

    The dump loop becomes a :class:`LoopGroup` with a heavier first
    block; logging becomes a fixed phase (it is not inside the marked
    I/O loop from the slicer's perspective -- the kernel transform drops
    it wholesale via :meth:`Workload.without_fixed_phases`).
    """
    s = spec
    request_size = max(1, s.bytes_per_proc_per_dump // s.writes_per_proc_per_dump)

    def dump_phase(name: str, n_dumps: int, ops_scale: float) -> IOPhase:
        write_ops = max(1, round(s.writes_per_proc_per_dump * s.n_procs * n_dumps * ops_scale))
        data = [
            RequestStream.uniform(
                "write",
                request_size,
                write_ops,
                s.n_procs,
                shared_file=True,
                contiguity=s.contiguity,
                interleave=s.interleave,
                collective_capable=True,
            )
        ]
        if s.read_fraction > 0:
            read_bytes = int(s.bytes_per_proc_per_dump * s.n_procs * n_dumps * s.read_fraction)
            read_ops = max(1, round(write_ops * s.read_fraction))
            data.append(
                RequestStream.uniform(
                    "read",
                    max(1, read_bytes // read_ops),
                    read_ops,
                    s.n_procs,
                    shared_file=True,
                    contiguity=s.contiguity,
                    interleave=s.interleave,
                    collective_capable=True,
                )
            )
        meta = MetadataStream(
            total_ops=max(1, round(s.metadata_ops_per_proc_per_dump * s.n_procs * n_dumps * ops_scale)),
            n_procs=s.n_procs,
            per_proc_redundant=True,
        )
        return IOPhase(
            name=name,
            compute_seconds=s.compute_seconds_per_dump * n_dumps,
            data=tuple(data),
            metadata=meta,
            chunked=s.chunked,
            chunk_size=s.chunk_size,
            working_set_per_proc=s.working_set_per_proc,
        )

    first = dump_phase("dump_first", 1, 1.0 + s.first_dump_extra_ops_fraction)
    blocks: list[IOPhase] = [first]
    if s.n_dumps > 1:
        blocks.append(dump_phase("dump_steady", s.n_dumps - 1, 1.0))
    loop = LoopGroup(name="dump_loop", n_iterations=s.n_dumps, phases=tuple(blocks))

    fixed: list[IOPhase] = []
    if s.log_lines_per_proc_per_dump > 0:
        log_ops = max(1, round(s.log_lines_per_proc_per_dump * s.n_procs * s.n_dumps))
        fixed.append(
            IOPhase(
                name="logging",
                compute_seconds=0.0,
                data=(
                    RequestStream.uniform(
                        "write",
                        s.log_line_bytes,
                        log_ops,
                        s.n_procs,
                        shared_file=False,
                        contiguity=1.0,
                        interleave=0.0,
                        collective_capable=False,
                    ),
                ),
            )
        )

    return Workload(
        name=s.name,
        n_procs=s.n_procs,
        n_nodes=s.n_nodes,
        fixed_phases=tuple(fixed),
        loops=(loop,),
    )
