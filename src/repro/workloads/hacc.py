"""HACC-IO: the checkpoint kernel of the HACC cosmology code.

HACC checkpoints nine per-particle variables (xx, yy, zz, vx, vy, vz,
phi, pid, mask -- 38 bytes/particle).  Each rank writes its full particle
population as one very large contiguous record per variable into a
shared file.  Requests are big and per-rank regions barely interleave,
so HACC is primarily sensitive to striping (spreading the file over
OSTs) and alignment; collective buffering adds little beyond its shuffle
cost once requests are already large -- giving the tuner a genuinely
different response surface from FLASH.
"""

from __future__ import annotations

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream

from .base import LoopGroup, Workload

__all__ = ["hacc", "BYTES_PER_PARTICLE"]

#: xx..vz as float (24) + phi float (4) + pid int64 (8) + mask uint16 (2).
BYTES_PER_PARTICLE = 38

_N_VARIABLES = 9


def hacc(
    n_procs: int = 128,
    n_nodes: int = 4,
    particles_per_proc: int = 4_000_000,
    n_checkpoints: int = 12,
    compute_seconds_per_checkpoint: float = 5.0,
) -> Workload:
    """Build the HACC-IO workload."""
    if particles_per_proc <= 0 or n_checkpoints < 1:
        raise ValueError("particles_per_proc and n_checkpoints must be positive")

    # One contiguous record per variable per rank; sizes are proportional
    # to each variable's width but the mean is what the model consumes.
    record_bytes = particles_per_proc * BYTES_PER_PARTICLE // _N_VARIABLES

    def ckpt_phase(name: str, cycles: int, meta_scale: float) -> IOPhase:
        stream = RequestStream.uniform(
            "write",
            record_bytes,
            _N_VARIABLES * n_procs * cycles,
            n_procs,
            shared_file=True,
            contiguity=0.95,
            interleave=0.35,
            collective_capable=True,
        )
        meta = MetadataStream(
            total_ops=round((_N_VARIABLES * 2 + 8) * n_procs * cycles * meta_scale),
            n_procs=n_procs,
            per_proc_redundant=True,
            write_fraction=0.35,
        )
        return IOPhase(
            name=name,
            compute_seconds=compute_seconds_per_checkpoint * cycles,
            data=(stream,),
            metadata=meta,
            # Contiguous layout: HACC records are not chunked.
            chunked=False,
        )

    blocks = [ckpt_phase("hacc_checkpoint_first", 1, meta_scale=1.5)]
    if n_checkpoints > 1:
        blocks.append(ckpt_phase("hacc_checkpoint_steady", n_checkpoints - 1, meta_scale=1.0))

    return Workload(
        name="hacc-io",
        n_procs=n_procs,
        n_nodes=n_nodes,
        loops=(
            LoopGroup(
                name="checkpoint_loop", n_iterations=n_checkpoints, phases=tuple(blocks)
            ),
        ),
    )
