"""IOR-style parameterised benchmark workload.

IOR is the standard parallel-I/O benchmark: every rank moves
``block_size`` bytes in ``transfer_size`` chunks, either to one shared
file or to a file per process, writing and/or reading back.  It is the
natural probe for the simulator's access-mode axes that the application
workloads exercise only partially -- in particular file-per-process
(which sidesteps shared-file lock contention entirely, at the price of
metadata pressure) versus single-shared-file.
"""

from __future__ import annotations

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.iostack.units import MiB

from .base import LoopGroup, Workload

__all__ = ["ior"]


def ior(
    n_procs: int = 128,
    n_nodes: int = 4,
    block_size: int = 256 * MiB,
    transfer_size: int = 2 * MiB,
    file_per_process: bool = False,
    read_back: bool = True,
    n_segments: int = 4,
    interleave: float = 0.6,
) -> Workload:
    """Build an IOR-like workload.

    Parameters mirror IOR's ``-b`` (block size per rank), ``-t``
    (transfer size), ``-F`` (file per process), ``-r`` (read back) and
    ``-s`` (segments).
    """
    if block_size <= 0 or transfer_size <= 0 or n_segments < 1:
        raise ValueError("block_size, transfer_size and n_segments must be positive")
    if transfer_size > block_size:
        raise ValueError("transfer_size cannot exceed block_size")

    transfers_per_block = block_size // transfer_size
    ops_per_segment = transfers_per_block * n_procs

    def segment_phase(name: str, segments: int, meta_scale: float) -> IOPhase:
        streams = [
            RequestStream.uniform(
                "write",
                transfer_size,
                ops_per_segment * segments,
                n_procs,
                shared_file=not file_per_process,
                contiguity=0.95,
                interleave=0.0 if file_per_process else interleave,
            )
        ]
        if read_back:
            streams.append(
                RequestStream.uniform(
                    "read",
                    transfer_size,
                    ops_per_segment * segments,
                    n_procs,
                    shared_file=not file_per_process,
                    contiguity=0.95,
                    interleave=0.0 if file_per_process else interleave,
                )
            )
        # FPP creates one file per rank: much heavier metadata.
        meta_per_segment = (n_procs * 6 if file_per_process else n_procs * 2) + 8
        meta = MetadataStream(
            total_ops=round(meta_per_segment * segments * meta_scale),
            n_procs=n_procs,
            per_proc_redundant=not file_per_process,
            write_fraction=0.6 if file_per_process else 0.3,
        )
        return IOPhase(
            name=name,
            compute_seconds=0.0,
            data=tuple(streams),
            metadata=meta,
            chunked=False,
        )

    blocks = [segment_phase("segment_first", 1, meta_scale=1.5)]
    if n_segments > 1:
        blocks.append(segment_phase("segment_steady", n_segments - 1, meta_scale=1.0))

    mode = "fpp" if file_per_process else "shared"
    return Workload(
        name=f"ior-{mode}",
        n_procs=n_procs,
        n_nodes=n_nodes,
        loops=(
            LoopGroup(name="segment_loop", n_iterations=n_segments, phases=tuple(blocks)),
        ),
    )
