"""MACSio: multi-purpose scalable I/O proxy, configured like VPIC-dipole.

The paper's Figure 8 experiments run MACSio with its compute-to-I/O
ratio "baselined on observed values from running VPIC programs with the
Dipole configuration" -- i.e. a real application profile, not a pure I/O
kernel: substantial compute between dumps, a long dump loop, and
per-rank log-file chatter (the "trivial writes" -- logging operations or
print statements -- that account for the kernel's ~19% write-op
undercount in Figure 8(c) while being a negligible share of bytes).

The dump-loop length (85) is chosen so that 1% loop reduction keeps
``ceil(0.85) = 1`` iteration: extrapolating by the nominal 100x then
*over*-reports operations (first-dump setup ops are counted 100 times),
reproducing the compensation effect Figure 8(c) describes.
"""

from __future__ import annotations

from repro.iostack.units import MiB

from .base import Workload
from .generator import DumpSpec, build_dump_workload

__all__ = ["macsio_vpic_dipole", "DUMP_LOOP_ITERATIONS"]

#: Main dump-loop length (see module docstring for why 85).
DUMP_LOOP_ITERATIONS = 85


def macsio_vpic_dipole(
    n_procs: int = 128,
    n_nodes: int = 4,
    part_size: int = 8 * MiB,
    compute_seconds_per_dump: float = 1.0,
) -> Workload:
    """MACSio in the VPIC-dipole-baselined configuration of Figure 8.

    Each rank dumps one ``part_size`` part per dump as a handful of
    H5Dwrite calls, plus ~2.35 log lines per rank per dump to a shared
    text log.  With the defaults the full application spends roughly
    half its evaluation time in compute+metadata overheads, which is the
    headroom Application I/O Discovery reclaims in Figure 8(a).
    """
    spec = DumpSpec(
        name="macsio-vpic-dipole",
        n_procs=n_procs,
        n_nodes=n_nodes,
        n_dumps=DUMP_LOOP_ITERATIONS,
        bytes_per_proc_per_dump=part_size,
        writes_per_proc_per_dump=8,
        compute_seconds_per_dump=compute_seconds_per_dump,
        # First dump writes mesh coordinates, topology and file headers.
        first_dump_extra_ops_fraction=0.25,
        # ~2.35 log lines/rank/dump makes logging 19% of app write ops
        # while staying ~2e-6 of bytes, matching Figure 8(c)'s kernel
        # error decomposition.
        log_lines_per_proc_per_dump=2.35,
        log_line_bytes=96,
        interleave=0.45,
        contiguity=0.75,
        chunked=True,
        chunk_size=MiB,
        working_set_per_proc=part_size,
        metadata_ops_per_proc_per_dump=20.0,
    )
    return build_dump_workload(spec)
