"""Bundled application sources and their canonical model hints.

The C sources are the inputs to Application I/O Discovery; the hints are
the run-layout facts (job shape, access character) that static analysis
cannot read from a source file, matching the values of the corresponding
workload factories in this package.
"""

from __future__ import annotations

from importlib import resources

from repro.discovery.modelgen import ModelHints
from repro.iostack.units import MiB

__all__ = ["available_sources", "load_source", "canonical_hints"]

_SOURCE_FILES = {
    "macsio": "macsio.c",
    "vpic": "vpic.c",
    "flash": "flash.c",
    "hacc": "hacc.c",
    "bdcats": "bdcats.c",
}

_CANONICAL_HINTS: dict[str, ModelHints] = {
    "macsio": ModelHints(
        n_procs=128, n_nodes=4, interleave=0.45, contiguity=0.75,
        chunk_size=MiB, working_set_per_proc=8 * MiB,
    ),
    "vpic": ModelHints(
        n_procs=128, n_nodes=4, interleave=0.25, contiguity=0.9,
        chunk_size=4 * MiB, working_set_per_proc=32 * MiB,
    ),
    "flash": ModelHints(
        n_procs=128, n_nodes=4, interleave=0.55, contiguity=0.7,
        chunk_size=MiB, working_set_per_proc=64 * MiB,
    ),
    "hacc": ModelHints(
        n_procs=128, n_nodes=4, interleave=0.35, contiguity=0.95,
        chunked=False,
    ),
    "bdcats": ModelHints(
        n_procs=1600, n_nodes=500, interleave=0.3, contiguity=0.9,
        chunk_size=8 * MiB, working_set_per_proc=32 * MiB,
    ),
}


def available_sources() -> tuple[str, ...]:
    """Names of the bundled application sources."""
    return tuple(sorted(_SOURCE_FILES))


def load_source(name: str) -> str:
    """The C source text of a bundled application."""
    try:
        filename = _SOURCE_FILES[name]
    except KeyError:
        raise KeyError(
            f"unknown source {name!r}; available: {available_sources()}"
        ) from None
    return (
        resources.files("repro.workloads") / "csrc" / filename
    ).read_text()


def canonical_hints(name: str) -> ModelHints:
    """The model hints matching this package's workload factory for the
    named application."""
    try:
        return _CANONICAL_HINTS[name]
    except KeyError:
        raise KeyError(
            f"unknown source {name!r}; available: {available_sources()}"
        ) from None
