"""VPIC-IO: the I/O kernel of the VPIC plasma-physics code.

VPIC writes particle data at fixed timestep intervals: eight single-
precision properties per particle (x, y, z, ux, uy, uz, i, q), each as a
1-D HDF5 dataset in a single shared file per timestep.  Every process
owns a contiguous slab of each dataset, so individual H5Dwrite calls are
large and contiguous but adjacent ranks' slabs interleave at dataset
granularity.  Metadata traffic is light (one dataset create per property
per step plus redundant per-rank opens).

Defaults match the paper's component-test scale (4 Cori nodes, 128
processes) with 8 M particles per process -- ~32 GiB per timestep across
the job.
"""

from __future__ import annotations

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.iostack.units import MiB

from .base import LoopGroup, Workload

__all__ = ["vpic", "N_PROPERTIES"]

#: Particle properties VPIC dumps (x, y, z, ux, uy, uz, i, q).
N_PROPERTIES = 8

#: Bytes per property value (single precision / 32-bit int).
_VALUE_BYTES = 4


def vpic(
    n_procs: int = 128,
    n_nodes: int = 4,
    particles_per_proc: int = 8_000_000,
    n_steps: int = 10,
    compute_seconds_per_step: float = 4.0,
) -> Workload:
    """Build the VPIC-IO workload.

    Parameters mirror the benchmark's knobs; ``compute_seconds_per_step``
    is small because VPIC-IO is already an extracted I/O kernel (the
    paper uses it as offline-training input, not as a discovery target).
    """
    if particles_per_proc <= 0 or n_steps <= 0:
        raise ValueError("particles_per_proc and n_steps must be positive")

    slab_bytes = particles_per_proc * _VALUE_BYTES  # one property, one rank
    writes_per_step = N_PROPERTIES * n_procs
    meta_per_step = N_PROPERTIES * 2 + n_procs  # creates + redundant opens

    def step_phase(name: str, steps: int) -> IOPhase:
        stream = RequestStream.uniform(
            "write",
            slab_bytes,
            writes_per_step * steps,
            n_procs,
            shared_file=True,
            contiguity=0.9,
            interleave=0.25,
            collective_capable=True,
        )
        meta = MetadataStream(
            total_ops=meta_per_step * steps,
            n_procs=n_procs,
            per_proc_redundant=True,
            write_fraction=0.4,
        )
        return IOPhase(
            name=name,
            compute_seconds=compute_seconds_per_step * steps,
            data=(stream,),
            metadata=meta,
            chunked=True,
            chunk_size=4 * MiB,
            working_set_per_proc=slab_bytes,
        )

    blocks = [step_phase("particle_dump_first", 1)]
    if n_steps > 1:
        blocks.append(step_phase("particle_dump_steady", n_steps - 1))

    return Workload(
        name="vpic-io",
        n_procs=n_procs,
        n_nodes=n_nodes,
        loops=(
            LoopGroup(name="timestep_loop", n_iterations=n_steps, phases=tuple(blocks)),
        ),
    )
