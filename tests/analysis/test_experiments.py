"""Experiment runners: the cheap figures run in-suite; the heavyweight
GA-based figures are exercised end-to-end by the benchmark harness and
only smoke-checked here."""

import pytest

from repro.analysis import (
    fig01_search_space,
    fig02_log_curves,
    fig08c_kernel_similarity,
    make_context,
)
from repro.analysis.experiments import _log_fit_r2
import numpy as np


def test_fig01_matches_paper_shape():
    res = fig01_search_space()
    assert res.tuned_space_permutations > 2_180_000_000
    stacks = dict(res.stack_rows)
    assert stacks["HDF5+MPI"] > stacks["HDF5"]
    assert stacks["HDF5+MPI+Hermes"] > stacks["HDF5+MPI"]
    report = res.report()
    assert "Figure 1" in report and "HDF5+MPI" in report


def test_fig08c_matches_paper_shape():
    res = fig08c_kernel_similarity()
    # Bytes: near-exact for both kernels (paper: 0.0002% / 0.19%).
    assert res.kernel_bytes_error < 0.005
    assert res.reduced_bytes_error < 0.01
    # Ops: kernel misses the logging share; reduction compensates partly.
    assert 0.15 < res.kernel_ops_error < 0.25
    assert res.reduced_ops_error < res.kernel_ops_error
    assert "Figure 8(c)" in res.report()


def test_log_fit_r2_on_perfect_log():
    t = np.arange(50)
    values = 1.0 + 2.0 * np.log1p(t)
    assert _log_fit_r2(values) > 0.999


def test_context_is_cached_and_seeded():
    a = make_context(0)
    b = make_context(0)
    assert a is b
    assert a.rng(1).integers(100) == a.rng(1).integers(100)
    sim = a.simulator_for(8, salt=3)
    assert sim.platform.n_nodes == 8


@pytest.mark.slow
def test_fig02_produces_log_curves():
    res = fig02_log_curves(seed=0, iterations=20)
    assert set(res.results) == {"hacc-io", "flash-io", "vpic-io"}
    for name, fit in res.log_fit_r2.items():
        assert fit > 0.3, name
    for r in res.results.values():
        assert r.best_perf > 1.5 * r.baseline_perf


def test_fresh_agents_are_isolated():
    ctx = make_context(0)
    a = ctx.fresh_agents()
    b = ctx.fresh_agents()
    assert a.smart_config is not b.smart_config
    assert a.early_stopper is not b.early_stopper
    # Mutating one clone leaves the other and the master untouched.
    a.smart_config.credit_subset(("cb_nodes",), 0.9)
    assert not np.allclose(a.smart_config.impact_scores, b.smart_config.impact_scores)
    assert np.allclose(
        b.smart_config.impact_scores, ctx.agents.smart_config.impact_scores
    )


def test_ascii_chart_smoke():
    from repro.analysis import ascii_chart

    out = ascii_chart({"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}, height=6, width=20)
    lines = out.splitlines()
    assert len(lines) == 9  # 6 rows + axis + xlabel + legend
    assert "* a" in lines[-1] and "o b" in lines[-1]
    assert ascii_chart({}) == "(no data)"
