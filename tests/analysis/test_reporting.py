"""Report formatting helpers."""

from repro.analysis.reporting import (
    ComparisonRow,
    format_comparison,
    format_series,
    format_table,
)


def test_table_alignment():
    out = format_table(
        ["name", "value"], [["a", 1.5], ["long-name", 1234567.0]], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5


def test_table_float_formatting():
    out = format_table(["x"], [[0.0001], [2.5], [5e9]])
    assert "1.000e-04" in out
    assert "2.50" in out
    assert "5.000e+09" in out
    assert format_table(["x"], [[0.0]]).splitlines()[-1].strip() == "0"


def test_empty_table():
    out = format_table(["a", "b"], [])
    assert "a" in out and "b" in out


def test_series_downsamples():
    out = format_series("curve", list(range(160)))
    assert "[160 pts]" in out
    assert out.count(".") <= 40  # downsampled
    assert format_series("e", []) == "e: (empty)"


def test_comparison_table():
    rows = [
        ComparisonRow("peak RoTI", 2.87, 2.88, "Fig 8a"),
        ComparisonRow("stop iteration", "35/50", "38/50"),
    ]
    out = format_comparison(rows, title="Paper vs measured")
    assert "Paper vs measured" in out
    assert "2.87" in out and "38/50" in out
