"""The process-parallel experiment engine.

The engine's whole claim is *bit-identity*: because every
:class:`RunSpec` derives its private simulator, RNG stream and cache
from its own (seed, salt) addressing, mapping the specs over a process
pool must merge to exactly what the serial loop produces.  These tests
pin that claim end-to-end on a real figure experiment, with and without
a shared persistent trace cache.
"""

import numpy as np
import pytest

from repro.analysis import fig02_log_curves, make_context
from repro.analysis.runner import ExperimentRunner, RunSpec

pytestmark = pytest.mark.offline_fastpath


def _square_job(seed: int) -> float:
    """Module-level (picklable) toy job: a deterministic draw."""
    return float(np.random.default_rng(seed).random() ** 2)


def test_negative_workers_rejected():
    with pytest.raises(ValueError, match="workers must be >= 0"):
        ExperimentRunner(workers=-2)


def test_serial_thresholds():
    assert not ExperimentRunner().parallel
    assert not ExperimentRunner(workers=0).parallel
    assert not ExperimentRunner(workers=1).parallel
    assert ExperimentRunner(workers=2).parallel


def test_pool_results_arrive_in_spec_order():
    specs = [RunSpec(_square_job, dict(seed=s)) for s in range(8)]
    serial = ExperimentRunner().map(specs)
    pooled = ExperimentRunner(workers=4).map(specs)
    assert pooled == serial
    assert serial == [_square_job(s) for s in range(8)]


def assert_tuning_results_identical(a, b):
    assert a.baseline_perf == b.baseline_perf
    assert a.best_perf == b.best_perf
    assert a.best_config == b.best_config
    assert a.total_minutes == b.total_minutes
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra.iteration_perf == rb.iteration_perf
        assert ra.best_perf == rb.best_perf
        assert ra.elapsed_minutes == rb.elapsed_minutes


def test_parallel_figure_run_is_bit_identical_to_serial(tmp_path):
    """A figure experiment mapped over 4 workers -- with a shared disk
    cache -- merges to exactly the serial result.

    This is the acceptance gate for the experiment engine: the pool
    ships the parent's trained context to the workers, each run derives
    its own simulator/RNG from its salt, and the merge happens in spec
    order, so nothing about process placement can leak into a number.
    """
    serial = fig02_log_curves(seed=0, iterations=6)
    pooled = fig02_log_curves(
        seed=0,
        iterations=6,
        runner=ExperimentRunner(workers=4, cache_dir=tmp_path / "traces"),
    )
    assert set(pooled.results) == set(serial.results)
    for name in serial.results:
        assert_tuning_results_identical(serial.results[name], pooled.results[name])
        assert pooled.log_fit_r2[name] == serial.log_fit_r2[name]
    # The workers populated the shared persistent cache.
    assert list((tmp_path / "traces").glob("*.npz"))


def test_warm_cache_rerun_is_still_identical(tmp_path):
    """Re-running against an already-populated cache directory changes
    nothing: disk hits replay the stored trace bit-identically."""
    runner = ExperimentRunner(workers=2, cache_dir=tmp_path / "traces")
    first = fig02_log_curves(seed=0, iterations=5, runner=runner)
    entries = sorted(p.name for p in (tmp_path / "traces").glob("*.npz"))
    assert entries
    second = fig02_log_curves(seed=0, iterations=5, runner=runner)
    for name in first.results:
        assert_tuning_results_identical(first.results[name], second.results[name])
    # Warm run added no new entries: every trace was already on disk.
    assert sorted(p.name for p in (tmp_path / "traces").glob("*.npz")) == entries


def test_context_survives_the_trip_to_a_worker():
    """Pool workers receive the parent's trained context (weights and
    all) instead of retraining their own -- the mechanism behind the
    bit-identity above."""
    ctx = make_context(0)
    specs = [RunSpec(_probe_impact, dict(seed=0))]
    (pooled,) = ExperimentRunner(workers=2).map(specs * 2, context=ctx)[:1]
    assert np.allclose(pooled, ctx.agents.impact_scores)


def _probe_impact(seed: int) -> np.ndarray:
    """Worker-side probe: the impact scores of the context the worker
    sees for ``seed`` (the parent's, if context shipping works)."""
    return make_context(seed).agents.impact_scores
