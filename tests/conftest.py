"""Shared fixtures for the test suite.

All fixtures are deterministic: seeded generators, noiseless simulators,
and a small, fast ``testbed`` platform for unit tests.  Heavier
integration fixtures (trained agents) are session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.iostack import (
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    TUNED_SPACE,
    cori,
)
from repro.iostack.cluster import testbed as make_testbed
from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.workloads import Workload
from repro.workloads.base import LoopGroup


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def platform():
    return make_testbed(n_nodes=2)


@pytest.fixture
def cori_platform():
    return cori(n_nodes=4)


@pytest.fixture
def quiet_sim(cori_platform) -> IOStackSimulator:
    """Cori-shaped simulator with no run-to-run noise."""
    return IOStackSimulator(cori_platform, NoiseModel.quiet())


@pytest.fixture
def default_config() -> StackConfiguration:
    return StackConfiguration.default()


@pytest.fixture
def tuned_config() -> StackConfiguration:
    """A hand-tuned configuration that is good for most workloads."""
    mib = 1024 * 1024
    return StackConfiguration.default().with_values(
        striping_factor=64,
        striping_unit=4 * mib,
        alignment=4 * mib,
        romio_collective=True,
        cb_nodes=32,
        cb_buffer_size=64 * mib,
        coll_metadata_write=True,
        coll_metadata_ops=True,
        mdc_config="large",
        meta_block_size=mib,
        chunk_cache_size=256 * mib,
    )


def make_write_stream(
    request_size: int = 1024 * 1024,
    total_ops: int = 1024,
    n_procs: int = 64,
    **kwargs,
) -> RequestStream:
    return RequestStream.uniform(
        "write", request_size, total_ops, n_procs, **kwargs
    )


@pytest.fixture
def write_stream() -> RequestStream:
    return make_write_stream(contiguity=0.8, interleave=0.4)


def make_workload(
    n_procs: int = 64,
    n_nodes: int = 2,
    request_size: int = 1024 * 1024,
    writes_per_proc: int = 64,
    n_iterations: int = 10,
    compute_seconds: float = 2.0,
    **stream_kwargs,
) -> Workload:
    """A small synthetic workload for unit tests."""
    stream = RequestStream.uniform(
        "write",
        request_size,
        writes_per_proc * n_procs,
        n_procs,
        contiguity=0.8,
        interleave=0.4,
        **stream_kwargs,
    )
    meta = MetadataStream(total_ops=8 * n_procs, n_procs=n_procs)
    phase = IOPhase(
        name="dump",
        compute_seconds=compute_seconds,
        data=(stream,),
        metadata=meta,
        chunked=True,
        chunk_size=1024 * 1024,
        working_set_per_proc=8 * 1024 * 1024,
    )
    steady = phase.scaled(n_iterations - 1) if n_iterations > 1 else None
    phases = (phase,) if steady is None else (phase, steady)
    return Workload(
        name="test-workload",
        n_procs=n_procs,
        n_nodes=n_nodes,
        loops=(LoopGroup("loop", n_iterations, phases),),
    )


@pytest.fixture
def small_workload() -> Workload:
    return make_workload()
