"""Core-package fixtures: one offline-trained agent bundle per session."""

import numpy as np
import pytest

from repro.core import PerfNormalizer, train_tunio_agents
from repro.iostack import IOStackSimulator, NoiseModel, cori
from repro.workloads import flash, hacc, vpic


@pytest.fixture(scope="session")
def trained_bundle():
    """Simulator, normalizer and offline-trained agents (shared across
    the core tests; training takes a few seconds)."""
    platform = cori(4)
    sim = IOStackSimulator(platform, NoiseModel(seed=77))
    normalizer = PerfNormalizer.for_platform(platform, 4)
    agents = train_tunio_agents(
        sim, [vpic(), flash(), hacc()], normalizer,
        rng=np.random.default_rng(77),
    )
    return sim, normalizer, agents
