"""The Table I facade: stop / discover_io / subset_picker."""

import numpy as np
import pytest

from repro.core import TunIO
from repro.discovery import DiscoveryOptions, LoopReduction
from repro.workloads.sources import canonical_hints, load_source


@pytest.fixture
def facade(trained_bundle):
    _, normalizer, agents = trained_bundle
    return TunIO(agents.smart_config, agents.early_stopper, normalizer)


def test_stop_accumulates_series(facade):
    facade.reset()
    decisions = [facade.stop(i, 500.0 + 100 * i) for i in range(8)]
    assert all(isinstance(d, bool) for d in decisions)
    assert not any(decisions[:4])  # warm-up window never stops


def test_stop_eventually_fires_on_flat_series(facade):
    facade.reset()
    perfs = list(np.linspace(300, 2400, 6)) + [2400.0] * 44
    fired = [facade.stop(i, p) for i, p in enumerate(perfs)]
    assert any(fired)


def test_stop_resynchronises_on_restart(facade):
    facade.reset()
    for i in range(6):
        facade.stop(i, 100.0 * (i + 1))
    # A pipeline restarting from iteration 2 must not crash.
    facade.stop(2, 500.0)
    assert len(facade._perf_series) == 3


def test_stop_rejects_negative_iteration(facade):
    with pytest.raises(ValueError):
        facade.stop(-1, 100.0)


def test_discover_io_returns_kernel(facade):
    kernel = facade.discover_io(
        load_source("macsio"),
        options=DiscoveryOptions(hints=canonical_hints("macsio")),
        name="macsio",
    )
    assert kernel.kept_line_count > 0
    assert "H5Dwrite" in kernel.source


def test_discover_io_with_reducers(facade):
    kernel = facade.discover_io(
        load_source("macsio"),
        options=DiscoveryOptions(
            hints=canonical_hints("macsio"), reducers=(LoopReduction(0.01),)
        ),
    )
    assert kernel.extrapolation_factor > 1.0


def test_subset_picker_round(facade):
    facade.reset()
    subset = facade.subset_picker(800.0, None)
    assert 1 <= len(subset) <= 12
    narrower = facade.subset_picker(900.0, subset)
    assert all(isinstance(n, str) for n in narrower)


def test_reset_clears_series(facade):
    facade.stop(0, 100.0)
    facade.reset()
    assert facade._perf_series == []
