"""Batched agent pretraining: the offline fastpath's third layer.

The vectorized trainers are allowed to consume randomness differently
from the serial loops (array draws instead of per-sample draws), so the
equivalence contract is *checkpoint-level*, not bit-level: identical
deterministic building blocks (states, greedy decisions, replay
sampling) and statistically equivalent training outcomes (stagnation
reached, comparable validation quality).  Both halves are pinned here.
"""

import numpy as np
import pytest

from repro.core.early_stopping import EarlyStoppingAgent
from repro.core.objective import PerfNormalizer
from repro.core.offline_training import (
    impact_from_sweeps,
    parameter_sweep,
    pretrain_subset_picker,
    train_tunio_agents,
)
from repro.core.smart_config import SmartConfigAgent
from repro.iostack import (
    EvaluationCache,
    IOStackSimulator,
    NoiseModel,
    cori,
)
from repro.rl.curves import LogCurveGenerator
from repro.rl.qlearning import QLearningAgent, QLearningConfig
from repro.rl.replay import ReplayBuffer, Transition
from repro.workloads import flash, vpic

pytestmark = pytest.mark.offline_fastpath


# -- deterministic building blocks: must match the serial path exactly --------


def test_sample_matrix_matches_curve_contract():
    gen = LogCurveGenerator()
    batch = gen.sample_matrix(32, np.random.default_rng(0))
    assert batch.values.shape == (32, gen.n_iterations)
    assert len(batch) == 32
    # Best-so-far curves: monotone non-decreasing, positive.
    assert np.all(np.diff(batch.values, axis=1) >= 0)
    assert np.all(batch.values > 0)
    assert np.all((0 <= batch.ideal_stops) & (batch.ideal_stops < gen.n_iterations))
    single = batch.curve(3)
    assert np.array_equal(single.values, batch.values[3])


def test_states_matrix_equals_serial_state_construction():
    agent = EarlyStoppingAgent(rng=np.random.default_rng(0))
    batch = LogCurveGenerator().sample_matrix(16, np.random.default_rng(5))
    states = agent.states_matrix(batch.values)
    for i in range(len(batch)):
        for t in range(batch.values.shape[1]):
            serial = agent.state_from_series(batch.values[i], t)
            assert np.array_equal(states[i, t], serial), (i, t)


def test_sample_arrays_consumes_rng_like_sample():
    buf = ReplayBuffer(64)
    rng_fill = np.random.default_rng(2)
    for i in range(40):
        s = rng_fill.normal(size=3)
        buf.push(Transition(s, i % 2, float(i), s + 1, bool(i % 5 == 0)))

    a_rng = np.random.default_rng(7)
    b_rng = np.random.default_rng(7)
    batch = buf.sample(16, a_rng)
    states, actions, rewards, next_states, dones = buf.sample_arrays(16, b_rng)
    assert np.array_equal(states, np.stack([t.state for t in batch]))
    assert np.array_equal(actions, [t.action for t in batch])
    assert np.array_equal(rewards, [t.reward for t in batch])
    assert np.array_equal(next_states, np.stack([t.next_state for t in batch]))
    assert np.array_equal(dones, [t.done for t in batch])
    # Identical stream positions afterwards: swapping one for the other
    # perturbs nothing downstream.
    assert a_rng.integers(2**31) == b_rng.integers(2**31)


def test_act_batch_greedy_matches_serial_act():
    agent = QLearningAgent(
        QLearningConfig(state_dim=4, n_actions=3), np.random.default_rng(1)
    )
    states = np.random.default_rng(2).normal(size=(32, 4))
    batched = agent.act_batch(states, greedy=True)
    serial = [agent.act(s, greedy=True) for s in states]
    assert list(batched) == serial


def test_stop_point_matrices_match_serial_evaluation():
    rng = np.random.default_rng(4)
    agent = EarlyStoppingAgent(rng=rng)
    gen = LogCurveGenerator()
    # A lightly trained network gives non-trivial stop decisions.
    agent._monte_carlo_pretrain_batched(gen, rng, n_curves=60, epochs=10)
    batch = gen.sample_matrix(12, rng)
    stops = agent.evaluate_stop_points_matrix(batch.values)
    econ = agent.economic_stops_matrix(batch.values)
    for i in range(len(batch)):
        curve = batch.curve(i)
        assert stops[i] == agent.evaluate_stop_point(curve)
        assert econ[i] == agent.economic_stop(curve)


# -- checkpoint-level training equivalence ------------------------------------


@pytest.fixture(scope="module")
def offline_reports():
    """Serial and batched early-stopper training on the same seeds."""
    serial_rng = np.random.default_rng(7)
    serial_agent = EarlyStoppingAgent(rng=serial_rng)
    serial = serial_agent.train_offline(rng=serial_rng)

    batched_rng = np.random.default_rng(7)
    batched_agent = EarlyStoppingAgent(rng=batched_rng)
    batched = batched_agent.train_offline(rng=batched_rng, batched=True)
    return serial, batched, serial_agent, batched_agent


def test_batched_training_reaches_the_same_checkpoint(offline_reports):
    serial, batched, _, _ = offline_reports
    # Same reward-stagnation criterion, reached by both arms.
    assert serial.stagnated and batched.stagnated
    assert batched.epochs >= 20  # exploration decayed before stagnation
    # Comparable validation quality: both capture most of the curve gain
    # and agree within a narrow band.
    assert serial.validation_gain_captured > 0.7
    assert batched.validation_gain_captured > 0.7
    assert abs(
        serial.validation_gain_captured - batched.validation_gain_captured
    ) <= 0.08


def test_batched_agent_makes_sane_decisions(offline_reports):
    _, _, _, agent = offline_reports
    plateau = np.concatenate([np.linspace(0.1, 1.0, 7), np.full(43, 1.0)])
    stop = next((t for t in range(plateau.size) if agent.should_stop(plateau, t)), None)
    assert stop is not None and stop < 45
    climb = np.linspace(0.1, 0.9, 30)
    stop = next((t for t in range(climb.size) if agent.should_stop(climb, t)), None)
    assert stop is None or stop > 15


def test_batched_picker_pretraining_is_checkpoint_equivalent():
    norm = PerfNormalizer(700.0, 4)
    impact = np.arange(1.0, 13.0) ** 2
    impact = impact / impact.sum()

    agents = {}
    for batched in (False, True):
        rng = np.random.default_rng(3)
        agent = SmartConfigAgent(normalizer=norm, rng=rng)
        pretrain_subset_picker(agent, impact, rng=rng, batched=batched)
        agents[batched] = agent

    for agent in agents.values():
        assert np.allclose(agent.impact_scores, impact)
        subset = agent.subset_picker(500.0, None, iteration=0)
        assert subset
    # Both arms walked epsilon down the same schedule length.
    assert agents[False].picker.epsilon == pytest.approx(agents[True].picker.epsilon)


# -- sweeps through the shared cache ------------------------------------------


def test_duplicate_sweep_configs_hit_the_cache():
    """Two sweeps over the same workload sharing one cache: the second
    sweep's deterministic axis portion is entirely duplicated work, so
    it must be served from cache -- and counted."""
    sim = IOStackSimulator(cori(4), NoiseModel.quiet())
    cache = EvaluationCache()
    first = parameter_sweep(
        sim, flash(), rng=np.random.default_rng(0), random_samples=0,
        repeats=1, cache=cache,
    )
    second = parameter_sweep(
        sim, flash(), rng=np.random.default_rng(1), random_samples=0,
        repeats=1, cache=cache,
    )
    assert first.cache_hits == 0
    assert second.cache_hits == len(second.perfs)  # every config duplicated
    # The cache contract: hits replay bit-identically.
    assert np.array_equal(first.perfs, second.perfs)


def test_private_sweep_cache_counts_no_false_hits():
    sim = IOStackSimulator(cori(4), NoiseModel(seed=5))
    sweep = parameter_sweep(
        sim, flash(), rng=np.random.default_rng(5), random_samples=4, repeats=1
    )
    # Axis sweeps skip the default per axis and random collisions are
    # vanishingly rare: a private cache sees essentially no duplicates.
    assert sweep.cache_hits == 0


def test_train_tunio_agents_pool_and_batched_path():
    """The full offline phase on the pooled + batched fastpath trains a
    usable agent bundle (checkpoint-level: impact normalised, stopper
    stops plateaus)."""
    platform = cori(4)
    sim = IOStackSimulator(platform, NoiseModel(seed=77))
    normalizer = PerfNormalizer.for_platform(platform, 4)
    agents = train_tunio_agents(
        sim, [vpic(), flash()], normalizer,
        rng=np.random.default_rng(77), workers=2, batched=True,
    )
    assert agents.impact_scores.sum() == pytest.approx(1.0)
    assert np.allclose(agents.smart_config.impact_scores, agents.impact_scores)
    plateau = np.concatenate([np.linspace(0.1, 1.0, 7), np.full(43, 1.0)])
    stop = next(
        (
            t
            for t in range(plateau.size)
            if agents.early_stopper.should_stop(plateau, t)
        ),
        None,
    )
    assert stop is not None
