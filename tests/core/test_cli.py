"""The tunio-tune CLI (smoke coverage at tiny budgets)."""

import pytest

from repro.core.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["flash"])
    assert args.workload == "flash"
    assert args.tuner == "tunio"
    assert args.iterations == 50


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["gromacs"])


def test_hstuner_run(capsys):
    assert main(["flash", "--tuner", "hstuner", "--iterations", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "iter   0" in out
    assert "H5Tuner override file:" in out
    assert "<Parameters>" in out


def test_heuristic_run(capsys):
    assert main(["hacc", "--tuner", "hstuner-heuristic", "--iterations", "3"]) == 0
    assert "final:" in capsys.readouterr().out


def test_kernel_run(capsys):
    assert main([
        "macsio", "--tuner", "hstuner", "--iterations", "2",
        "--loop-reduction", "0.01",
    ]) == 0
    out = capsys.readouterr().out
    assert "using I/O kernel" in out


def test_agents_cache_roundtrip(tmp_path, capsys):
    cache = tmp_path / "agents.npz"
    assert main(["flash", "--iterations", "2", "--agents-cache", str(cache)]) == 0
    assert cache.exists()
    assert "saved trained agents" in capsys.readouterr().out
    assert main(["flash", "--iterations", "2", "--agents-cache", str(cache)]) == 0
    assert "loading trained agents" in capsys.readouterr().out


def test_kernel_mode_requires_bundled_source(capsys):
    assert main(["ior", "--use-kernel", "--iterations", "2"]) == 2
    assert "no bundled C source" in capsys.readouterr().err


def test_ior_workload_runs(capsys):
    assert main(["ior", "--tuner", "hstuner", "--iterations", "2"]) == 0
    assert "final:" in capsys.readouterr().out
