"""The tunio-tune CLI (smoke coverage at tiny budgets)."""

import json

import pytest

from repro.core.cli import build_parser, build_resume_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["flash"])
    assert args.workload == "flash"
    assert args.tuner == "tunio"
    assert args.iterations == 50


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["gromacs"])


def test_hstuner_run(capsys):
    assert main(["flash", "--tuner", "hstuner", "--iterations", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "iter   0" in out
    assert "H5Tuner override file:" in out
    assert "<Parameters>" in out


def test_heuristic_run(capsys):
    assert main(["hacc", "--tuner", "hstuner-heuristic", "--iterations", "3"]) == 0
    assert "final:" in capsys.readouterr().out


def test_kernel_run(capsys):
    assert main([
        "macsio", "--tuner", "hstuner", "--iterations", "2",
        "--loop-reduction", "0.01",
    ]) == 0
    out = capsys.readouterr().out
    assert "using I/O kernel" in out


def test_agents_cache_roundtrip(tmp_path, capsys):
    cache = tmp_path / "agents.npz"
    assert main(["flash", "--iterations", "2", "--agents-cache", str(cache)]) == 0
    assert cache.exists()
    assert "saved trained agents" in capsys.readouterr().out
    assert main(["flash", "--iterations", "2", "--agents-cache", str(cache)]) == 0
    assert "loading trained agents" in capsys.readouterr().out


def test_kernel_mode_requires_bundled_source(capsys):
    assert main(["ior", "--use-kernel", "--iterations", "2"]) == 2
    assert "no bundled C source" in capsys.readouterr().err


def test_ior_workload_runs(capsys):
    assert main(["ior", "--tuner", "hstuner", "--iterations", "2"]) == 0
    assert "final:" in capsys.readouterr().out


# -- fault / resilience flags --------------------------------------------------


@pytest.mark.parametrize(
    "flags",
    [
        ["--fault-rate", "1.5"],
        ["--fault-straggler-rate", "-0.1"],
        ["--fault-straggler-slowdown", "0.5"],
        ["--fault-window", "10:5:2"],
        ["--max-retries", "-1"],
        ["--eval-timeout", "0"],
    ],
)
def test_bad_fault_flags_rejected(flags):
    with pytest.raises(SystemExit):
        main(["ior", *flags])


@pytest.mark.faults
def test_faulted_run_reports_resilience(capsys):
    assert main([
        "ior", "--tuner", "hstuner", "--iterations", "4", "--seed", "3",
        "--fault-rate", "0.2", "--fault-straggler-rate", "0.1",
    ]) == 0
    out = capsys.readouterr().out
    assert "fault injection armed" in out
    assert "resilience:" in out
    assert "faults injected" in out


def test_fault_free_run_omits_resilience_line(capsys):
    assert main(["ior", "--tuner", "hstuner", "--iterations", "2"]) == 0
    out = capsys.readouterr().out
    assert "fastpath:" in out
    assert "resilience:" not in out


# -- journal / resume ----------------------------------------------------------


def test_resume_parser():
    args = build_resume_parser().parse_args(["t.journal", "--iterations", "9"])
    assert args.journal == "t.journal"
    assert args.iterations == 9


@pytest.mark.faults
def test_journal_then_resume_reproduces_the_run(tmp_path, capsys):
    journal = tmp_path / "t.journal"
    assert main([
        "ior", "--tuner", "hstuner", "--iterations", "4", "--seed", "3",
        "--fault-rate", "0.15", "--journal", str(journal),
    ]) == 0
    full_out = capsys.readouterr().out
    full_records = [json.loads(line) for line in open(journal)]
    assert full_records[-1]["type"] == "final"

    # kill after two generations: keep header, baseline, gen0, gen1 + torn tail
    lines = open(journal).readlines()
    cut = tmp_path / "cut.journal"
    cut.write_text("".join(lines[:4]) + lines[4][:25])

    assert main(["resume", str(cut)]) == 0
    resumed_out = capsys.readouterr().out
    assert "resuming ior" in resumed_out
    assert [json.loads(line) for line in open(cut)][1:] == full_records[1:]

    def history(text):
        return [l for l in text.splitlines()
                if l.startswith(("baseline", "iter", "final", "resilience"))]

    assert history(resumed_out) == history(full_out)


def test_resume_of_completed_journal_is_refused(tmp_path, capsys):
    journal = tmp_path / "t.journal"
    assert main([
        "ior", "--tuner", "hstuner", "--iterations", "2",
        "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main(["resume", str(journal)]) == 1
    assert "nothing to resume" in capsys.readouterr().err


# -- observability flags -------------------------------------------------------


@pytest.mark.observability
def test_trace_and_metrics_flags_write_files(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    metrics = tmp_path / "metrics.json"
    assert main([
        "ior", "--tuner", "hstuner", "--iterations", "3", "--seed", "3",
        "--trace-out", str(trace), "--metrics-out", str(metrics), "--profile",
    ]) == 0
    out = capsys.readouterr().out
    assert "fastpath:" in out
    assert "profile:" in out and "simulator.trace" in out
    assert f"metrics written to {metrics}" in out

    events = [json.loads(line) for line in open(trace)]
    kinds = [e["event"] for e in events]
    assert kinds[0] == "run_args" and kinds[-1] == "run_end"
    assert "generation" in kinds
    assert events[0]["args"]["seed"] == 3 and events[0]["resumed"] is False

    snapshot = json.load(open(metrics))
    assert snapshot["counters"]["run.iterations"] == 3
    assert "cache.hit_rate" in snapshot["gauges"]
    assert any(k.startswith("profile.") for k in snapshot["timers"])


@pytest.mark.observability
def test_traced_run_is_bit_identical_to_untraced(tmp_path, capsys):
    argv = ["ior", "--tuner", "hstuner", "--iterations", "3", "--seed", "3"]
    assert main(argv) == 0
    bare = capsys.readouterr().out
    assert main([*argv, "--trace-out", str(tmp_path / "run.jsonl")]) == 0
    traced = capsys.readouterr().out
    assert traced == bare  # tracing changes nothing the user sees


@pytest.mark.observability
def test_report_reconstructs_the_run_from_the_trace(tmp_path, capsys):
    from repro.observability.report import main as report_main

    trace = tmp_path / "run.jsonl"
    assert main([
        "ior", "--tuner", "hstuner", "--iterations", "3", "--seed", "3",
        "--trace-out", str(trace),
    ]) == 0
    live = capsys.readouterr().out
    assert report_main([str(trace)]) == 0
    report = capsys.readouterr().out

    def summary(text):
        return [l for l in text.splitlines()
                if l.startswith(("baseline", "iter", "final", "fastpath"))]

    assert summary(report) == summary(live)
    assert "roti: peak" in report


@pytest.mark.observability
def test_resume_traces_the_whole_run(tmp_path, capsys):
    """A resume trace re-emits replayed generations, so tunio-report on
    it sees the complete run."""
    from repro.observability.report import main as report_main

    journal = tmp_path / "t.journal"
    assert main([
        "ior", "--tuner", "hstuner", "--iterations", "4", "--seed", "3",
        "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    lines = open(journal).readlines()
    cut = tmp_path / "cut.journal"
    cut.write_text("".join(lines[:4]))  # header + baseline + 2 generations

    trace = tmp_path / "resumed.jsonl"
    assert main(["resume", str(cut), "--trace-out", str(trace)]) == 0
    resumed_out = capsys.readouterr().out
    assert report_main([str(trace)]) == 0
    report = capsys.readouterr().out
    assert "4 iterations" in report
    for line in resumed_out.splitlines():
        if line.startswith(("baseline", "iter", "final:")):
            assert line in report


# -- friendly error mapping ----------------------------------------------------


def test_resume_missing_journal_maps_to_exit_3(capsys):
    assert main(["resume", "/nonexistent/path.journal"]) == 3
    assert "journal error" in capsys.readouterr().err


def test_resume_foreign_journal_maps_to_exit_3(tmp_path, capsys):
    bogus = tmp_path / "b.journal"
    bogus.write_text('{"type":"header","version":1}\n')
    assert main(["resume", str(bogus)]) == 3
    assert "not written by tunio-tune" in capsys.readouterr().err


# -- guardrails / constraints --------------------------------------------------


@pytest.mark.guardrails
@pytest.mark.parametrize(
    "flags",
    [
        ["--iterations", "0"],
        ["--batch-workers", "-3"],
        ["--batch-workers", "0"],
        ["--max-retries", "-1"],
        ["--fault-agent-at", "-2", "--fault-agent", "nan-weights"],
        ["--fault-agent", "checkpoint-truncation"],  # needs --agents-cache
    ],
)
def test_contradictory_flags_rejected_with_usage_error(flags):
    with pytest.raises(SystemExit) as err:
        main(["ior", *flags])
    assert err.value.code == 2


# -- offline fastpath flags ----------------------------------------------------


@pytest.mark.offline_fastpath
@pytest.mark.parametrize(
    "flags",
    [
        ["--workers", "-1"],
        ["--workers", "-3"],
        ["--cache-dir", "/tmp/x", "--no-eval-cache"],
    ],
)
def test_bad_fastpath_flags_exit_2(flags):
    with pytest.raises(SystemExit) as err:
        main(["ior", *flags])
    assert err.value.code == 2


@pytest.mark.offline_fastpath
def test_batch_workers_flag_is_deprecated(capsys):
    assert main([
        "flash", "--tuner", "hstuner", "--iterations", "2", "--seed", "1",
        "--batch-workers", "2",
    ]) == 0
    captured = capsys.readouterr()
    assert "deprecated" in captured.err and "--workers" in captured.err
    assert "final:" in captured.out


@pytest.mark.offline_fastpath
def test_workers_flag_is_result_transparent(capsys):
    argv = ["flash", "--tuner", "hstuner", "--iterations", "3", "--seed", "3"]
    assert main(argv) == 0
    serial = capsys.readouterr().out
    assert main([*argv, "--workers", "2"]) == 0
    pooled = capsys.readouterr().out
    assert pooled == serial  # bit-identical, fastpath line included


@pytest.mark.offline_fastpath
def test_cache_dir_warm_rerun_is_identical_and_hits_disk(tmp_path, capsys):
    argv = [
        "flash", "--tuner", "hstuner", "--iterations", "3", "--seed", "3",
        "--cache-dir", str(tmp_path / "traces"),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "disk 0/" in cold  # first run: all misses, entries stored
    assert list((tmp_path / "traces").glob("*.npz"))

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "(0 stored)" in warm  # warm run: everything served from disk

    def strip_fastpath(text):
        return [l for l in text.splitlines() if not l.startswith("fastpath:")]

    assert strip_fastpath(warm) == strip_fastpath(cold)


@pytest.mark.guardrails
def test_resume_rejects_no_eval_cache(capsys):
    """--no-eval-cache contradicts resume (replay re-warms the cache to
    stay bit-identical), so it is refused up front."""
    with pytest.raises(SystemExit) as err:
        main(["resume", "whatever.journal", "--no-eval-cache"])
    assert err.value.code == 2
    assert "contradicts resume" in capsys.readouterr().err


@pytest.mark.guardrails
def test_unknown_agent_fault_mode_rejected():
    with pytest.raises(SystemExit):
        main(["ior", "--fault-agent", "gamma-rays"])


@pytest.mark.guardrails
def test_constraints_flag_arms_and_reports(capsys):
    assert main([
        "flash", "--tuner", "hstuner-heuristic", "--iterations", "2",
        "--constraints",
    ]) == 0
    out = capsys.readouterr().out
    assert "constraints:" in out
    assert "rules armed" in out
    assert "final:" in out


@pytest.mark.guardrails
def test_agent_fault_degrades_and_reports(tmp_path, capsys):
    """End-to-end acceptance: with an agent fault injected, the run
    completes, falls back to plain-GA tuning, and reports the trips on
    a ``guardrails:`` line."""
    cache = tmp_path / "agents.npz"
    assert main([
        "flash", "--iterations", "2", "--seed", "5",
        "--agents-cache", str(cache),
    ]) == 0
    capsys.readouterr()
    assert main([
        "flash", "--iterations", "4", "--seed", "5",
        "--agents-cache", str(cache),
        "--fault-agent", "nan-weights", "--fault-agent-at", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "fault injection armed" in out and "agent=nan-weights@1" in out
    assert "guardrails:" in out
    assert "degraded to plain-GA behaviour" in out
    assert "non-finite-weights" in out
    assert "final:" in out


@pytest.mark.guardrails
def test_truncated_checkpoint_degrades_and_reports(tmp_path, capsys):
    cache = tmp_path / "agents.npz"
    assert main([
        "flash", "--iterations", "2", "--seed", "5",
        "--agents-cache", str(cache),
    ]) == 0
    capsys.readouterr()
    assert main([
        "flash", "--iterations", "3", "--seed", "5",
        "--agents-cache", str(cache),
        "--fault-agent", "checkpoint-truncation",
    ]) == 0
    captured = capsys.readouterr()
    assert "rejected" in captured.err or "checkpoint" in captured.err
    assert "degraded" in captured.out
    assert "guardrails:" in captured.out
    assert "checkpoint:schema" in captured.out
