"""The RL early stopper."""

import numpy as np
import pytest

from repro.core.early_stopping import (
    EarlyStoppingAgent,
    EarlyStoppingConfig,
    RLStopper,
)
from repro.core.objective import PerfNormalizer
from repro.rl.curves import LogCurveGenerator
from repro.tuners.base import IterationRecord


@pytest.fixture(scope="module")
def trained_agent():
    rng = np.random.default_rng(42)
    agent = EarlyStoppingAgent(rng=rng)
    agent.train_offline(rng=rng)
    return agent


def test_config_validation():
    with pytest.raises(ValueError):
        EarlyStoppingConfig(delay=0)
    with pytest.raises(ValueError):
        EarlyStoppingConfig(iteration_cost=-1.0)
    with pytest.raises(ValueError):
        EarlyStoppingConfig(min_iterations=-1)


def test_state_features():
    agent = EarlyStoppingAgent(rng=np.random.default_rng(0))
    values = [0.1, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2]
    state = agent.state_from_series(values, 7)
    assert state.shape == (5,)
    assert state[0] == pytest.approx(7 / 50)
    assert state[1] == pytest.approx(0.2)
    assert state[2] == pytest.approx(0.0)  # gain_1
    # Stalled since iteration 1 -> long stall feature.
    assert state[4] > 1.0
    with pytest.raises(IndexError):
        agent.state_from_series(values, 99)


def test_never_stops_before_warmup():
    agent = EarlyStoppingAgent(rng=np.random.default_rng(0))
    assert not agent.should_stop([1.0, 1.0, 1.0], 2)


def test_offline_training_report(trained_agent):
    # The fixture trained it; re-derive a fresh report quickly.
    rng = np.random.default_rng(7)
    agent = EarlyStoppingAgent(rng=rng)
    report = agent.train_offline(rng=rng, max_epochs=25)
    assert report.epochs >= 20
    assert report.validation_gain_captured > 0.7
    assert len(report.mean_rewards) == report.epochs


def test_trained_agent_stops_on_hard_plateau(trained_agent):
    v = np.concatenate([np.linspace(0.1, 1.0, 7), np.full(43, 1.0)])
    stop = next(
        (t for t in range(v.size) if trained_agent.should_stop(v, t)), None
    )
    assert stop is not None and stop < 45


def test_trained_agent_waits_through_a_climb(trained_agent):
    v = np.linspace(0.1, 0.9, 30)
    stop = next(
        (t for t in range(v.size) if trained_agent.should_stop(v, t)), None
    )
    assert stop is None or stop > 15


def test_economic_stop_is_argmax(trained_agent):
    gen = LogCurveGenerator()
    curve = gen.sample(np.random.default_rng(3))
    t = trained_agent.economic_stop(curve)
    c = trained_agent.config.iteration_cost / trained_agent.config.delay
    objective = curve.values - c * np.arange(curve.values.size)
    assert t == int(np.argmax(objective))


def test_weight_roundtrip(trained_agent):
    weights = trained_agent.get_weights()
    fresh = EarlyStoppingAgent(rng=np.random.default_rng(1))
    fresh.set_weights(weights)
    v = np.linspace(0.1, 1.0, 50)
    for t in range(5, 50, 7):
        assert fresh.should_stop(v, t) == trained_agent.should_stop(v, t)


# -- RLStopper adapter -----------------------------------------------------------


def history(perfs, minutes_per_iter=10.0):
    return [
        IterationRecord(i, p, p, (i + 1) * minutes_per_iter, 5)
        for i, p in enumerate(perfs)
    ]


def test_rl_stopper_protocol(trained_agent):
    from repro.tuners.stoppers import Stopper

    norm = PerfNormalizer(700.0, 4)
    stopper = RLStopper(trained_agent, norm, online_learning=False)
    assert isinstance(stopper, Stopper)


def test_rl_stopper_stops_flat_run(trained_agent):
    norm = PerfNormalizer(700.0, 4)
    stopper = RLStopper(trained_agent, norm, online_learning=False)
    perfs = list(np.linspace(300, 2500, 6)) + [2500.0] * 44
    stopped_at = None
    for i in range(len(perfs)):
        if stopper.should_stop(history(perfs[: i + 1])):
            stopped_at = i
            break
    assert stopped_at is not None and stopped_at < 45
    stopper.reset()
    assert not stopper.should_stop(history(perfs[:1]))


def test_rl_stopper_online_learning_runs(trained_agent):
    norm = PerfNormalizer(700.0, 4)
    stopper = RLStopper(trained_agent, norm, online_learning=True)
    perfs = list(np.linspace(300, 2000, 20))
    for i in range(len(perfs)):
        stopper.should_stop(history(perfs[: i + 1]))  # must not raise


def test_expected_runs_increases_patience(trained_agent):
    norm = PerfNormalizer(700.0, 4)
    patient = RLStopper(
        trained_agent, norm, expected_runs=1e7, online_learning=False
    )
    eager = RLStopper(trained_agent, norm, online_learning=False)
    perfs = list(np.linspace(300, 2500, 6)) + [2500.0] * 44

    def stop_at(stopper):
        stopper.reset()
        for i in range(len(perfs)):
            if stopper.should_stop(history(perfs[: i + 1])):
                return i
        return len(perfs)

    assert stop_at(patient) >= stop_at(eager)
    with pytest.raises(ValueError):
        RLStopper(trained_agent, norm, expected_runs=0)
