"""Degraded-mode tuning: agent guardrails in the TunIO pipeline.

The contract under test has two halves:

* **happy path** -- with guardrails armed and healthy agents, a run is
  bit-identical to unguarded wiring (the wrappers are pure observers);
* **degraded path** -- with an agent-level fault injected, the pipeline
  completes, falls back to plain-GA behaviour, and the degraded run is
  bit-for-bit the run the fallback wiring would have produced, because
  every guardrail check happens before any agent RNG draw.
"""

import copy

import numpy as np
import pytest

from repro.core import (
    GuardedStopper,
    GuardedSubsetPicker,
    RLStopper,
    TunIOTuner,
    build_tunio,
)
from repro.core.offline_training import load_agents, save_agents
from repro.iostack import FaultPlan, IOStackSimulator, NoiseModel, cori
from repro.rl.guardrails import CheckpointError
from repro.tuners import HSTuner, HeuristicStopper, NoStop
from repro.tuners.base import IterationRecord
from repro.workloads import flash

pytestmark = pytest.mark.guardrails


def make_sim(agent_fault: str | None = None, at: int = 0) -> IOStackSimulator:
    faults = (
        FaultPlan(agent_fault=agent_fault, agent_fault_at=at, seed=1)
        if agent_fault is not None
        else None
    )
    return IOStackSimulator(cori(4), NoiseModel(seed=77), faults=faults)


def record(i: int, perf: float, best: float) -> IterationRecord:
    return IterationRecord(
        iteration=i,
        iteration_perf=perf,
        best_perf=best,
        elapsed_minutes=10.0 * (i + 1),
        evaluations=16,
        tuned_parameters=("striping_factor",),
    )


def assert_same_run(a, b):
    """Bit-for-bit equality of two tuning results."""
    assert a.best_perf == b.best_perf
    assert a.best_config == b.best_config
    assert a.stop_reason == b.stop_reason
    assert a.stopped_at == b.stopped_at
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra.iteration_perf == rb.iteration_perf
        assert ra.best_perf == rb.best_perf
        assert ra.elapsed_minutes == rb.elapsed_minutes
        assert ra.evaluations == rb.evaluations


# ---------------------------------------------------------------------------
# happy path: guardrails are pure observers
# ---------------------------------------------------------------------------


def test_healthy_run_never_trips(trained_bundle):
    _, normalizer, agents = trained_bundle
    tuner = build_tunio(
        make_sim(), copy.deepcopy(agents), normalizer,
        rng=np.random.default_rng(11),
    )
    result = tuner.tune(flash(), max_iterations=10)
    assert result.guardrail_trips == ()
    assert not tuner.guardrails.tripped()
    assert result.eval_stats.guardrail_trips == 0


def test_guarded_picker_matches_raw_agent(trained_bundle):
    """Same agent state, same call sequence: the guarded wrapper returns
    exactly what the bare agent would (it consumes no extra RNG)."""
    _, _, agents = trained_bundle
    guarded_agent = copy.deepcopy(agents).smart_config
    raw_agent = copy.deepcopy(agents).smart_config
    picker = GuardedSubsetPicker(guarded_agent)
    picker.reset_episode()
    raw_agent.reset_episode()
    subset_g = subset_r = None
    for it in range(1, 9):
        perf = 2000.0 + 150.0 * it
        subset_g = picker.pick(perf, subset_g, iteration=it)
        subset_r = raw_agent.subset_picker(perf, subset_r, iteration=it)
        assert subset_g == subset_r
    assert not picker.degraded


def test_guarded_stopper_matches_raw_stopper(trained_bundle):
    _, normalizer, agents = trained_bundle
    raw = RLStopper(copy.deepcopy(agents).early_stopper, normalizer)
    guarded = GuardedStopper(
        RLStopper(copy.deepcopy(agents).early_stopper, normalizer)
    )
    history: list[IterationRecord] = []
    for it in range(8):
        perf = 1500.0 + 400.0 * it
        history.append(record(it, perf, perf))
        assert guarded.should_stop(history) == raw.should_stop(history)
    assert not guarded.degraded


# ---------------------------------------------------------------------------
# degraded path: each fault mode completes and matches fallback wiring
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["nan-weights", "explode-weights"])
def test_weight_corruption_degrades_to_plain_hstuner(trained_bundle, mode):
    """Corrupting both agents' networks before their first use makes the
    whole run bit-for-bit a plain HSTuner run under the patience
    heuristic: both guardrails trip pre-RNG, so the GA stream is
    untouched."""
    _, normalizer, agents = trained_bundle
    faulted = build_tunio(
        make_sim(mode, at=0), copy.deepcopy(agents), normalizer,
        rng=np.random.default_rng(21),
    )
    degraded = faulted.tune(flash(), max_iterations=8)

    reference = HSTuner(
        make_sim(), stopper=HeuristicStopper(), rng=np.random.default_rng(21)
    ).tune(flash(), max_iterations=8)

    assert_same_run(degraded, reference)
    guardrails = {t.guardrail for t in faulted.guardrails.trips}
    assert guardrails == {"subset-picker", "early-stopper"}
    assert degraded.eval_stats.guardrail_trips == len(degraded.guardrail_trips)


def test_empty_subset_fault_degrades_the_picker_only(trained_bundle):
    """A degenerate empty subset trips the picker (full-set tuning) but
    leaves the healthy RL stopper in charge -- bit-for-bit an HSTuner
    run driven by the same RL stopper."""
    _, normalizer, agents = trained_bundle
    faulted = build_tunio(
        make_sim("empty-subset", at=0), copy.deepcopy(agents), normalizer,
        rng=np.random.default_rng(22),
    )
    degraded = faulted.tune(flash(), max_iterations=8)

    ref_agents = copy.deepcopy(agents)
    reference = HSTuner(
        make_sim(),
        stopper=RLStopper(ref_agents.early_stopper, normalizer),
        rng=np.random.default_rng(22),
    ).tune(flash(), max_iterations=8)

    assert_same_run(degraded, reference)
    guardrails = {t.guardrail for t in faulted.guardrails.trips}
    assert guardrails == {"subset-picker"}
    assert any("invalid-output" in t for t in degraded.guardrail_trips)


def test_stop_now_fault_degrades_the_stopper_only(trained_bundle):
    """A policy forced to "always stop" is caught by the warm-up
    watchdog; the run then matches TunIO wired with the fallback
    heuristic stopper but the same healthy subset picker."""
    _, normalizer, agents = trained_bundle
    faulted = build_tunio(
        make_sim("stop-now", at=0), copy.deepcopy(agents), normalizer,
        rng=np.random.default_rng(23),
    )
    degraded = faulted.tune(flash(), max_iterations=8)

    ref_agents = copy.deepcopy(agents)
    reference = TunIOTuner(
        make_sim(),
        smart_config=ref_agents.smart_config,
        stopper=HeuristicStopper(),
        rng=np.random.default_rng(23),
    ).tune(flash(), max_iterations=8)

    assert_same_run(degraded, reference)
    guardrails = {t.guardrail for t in faulted.guardrails.trips}
    assert guardrails == {"early-stopper"}
    assert any("degenerate-policy" in t for t in degraded.guardrail_trips)


def test_constant_subset_fault_trips_the_watchdog(trained_bundle):
    """A policy collapsed onto one small subset is detected after
    ``constant_window`` identical picks; the run completes degraded."""
    _, normalizer, agents = trained_bundle
    tuner = TunIOTuner(
        make_sim("constant-subset", at=1),
        smart_config=copy.deepcopy(agents).smart_config,
        stopper=NoStop(),
        rng=np.random.default_rng(24),
    )
    result = tuner.tune(flash(), max_iterations=12)
    assert len(result.history) == 12  # completed despite the fault
    assert any("degenerate-policy" in t for t in result.guardrail_trips)
    # After the trip the pipeline tunes the full parameter set again.
    assert len(result.history[-1].tuned_parameters) == 12


def test_degraded_picker_repeats_cleanly_on_reset(trained_bundle):
    """tune() re-arms the guardrails: a second run on the same tuner
    re-earns its trips instead of inheriting stale ones."""
    _, normalizer, agents = trained_bundle
    faulted = build_tunio(
        make_sim("empty-subset", at=0), copy.deepcopy(agents), normalizer,
        rng=np.random.default_rng(25),
    )
    first = faulted.tune(flash(), max_iterations=4)
    first_trips = first.guardrail_trips
    assert first_trips
    second = faulted.tune(flash(), max_iterations=4)
    assert second.guardrail_trips  # re-earned, not accumulated forever
    assert len(second.guardrail_trips) <= len(first_trips) * 2


# ---------------------------------------------------------------------------
# checkpoint guardrails
# ---------------------------------------------------------------------------


def test_truncated_checkpoint_is_rejected_as_checkpoint_error(
    trained_bundle, tmp_path
):
    _, normalizer, agents = trained_bundle
    path = tmp_path / "agents.npz"
    save_agents(agents, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError, match="truncated or corrupted"):
        load_agents(path, normalizer)


def test_intact_checkpoint_round_trips(trained_bundle, tmp_path):
    _, normalizer, agents = trained_bundle
    path = tmp_path / "agents.npz"
    save_agents(agents, path)
    loaded = load_agents(path, normalizer, rng=np.random.default_rng(0))
    assert np.array_equal(loaded.impact_scores, agents.impact_scores)


def test_missing_checkpoint_stays_file_not_found(trained_bundle, tmp_path):
    """ENOENT is not corruption: the CLI's train-then-save path depends
    on the distinction."""
    _, normalizer, _ = trained_bundle
    with pytest.raises(FileNotFoundError):
        load_agents(tmp_path / "absent.npz", normalizer)
