"""The perf objective and its normalisation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.objective import PerfNormalizer, perf_objective
from repro.iostack import cori


def test_write_only_alpha_one():
    assert perf_objective(write_bw_mbps=500.0, read_bw_mbps=0.0, alpha=1.0) == 500.0


def test_read_only_alpha_zero():
    assert perf_objective(write_bw_mbps=0.0, read_bw_mbps=300.0, alpha=0.0) == 300.0


@given(
    st.floats(0.0, 1e6), st.floats(0.0, 1e6), st.floats(0.0, 1.0)
)
def test_objective_is_convex_combination(w, r, a):
    perf = perf_objective(w, r, a)
    assert min(w, r) - 1e-6 <= perf <= max(w, r) + 1e-6


def test_objective_validation():
    with pytest.raises(ValueError):
        perf_objective(1.0, 1.0, alpha=1.5)
    with pytest.raises(ValueError):
        perf_objective(-1.0, 1.0, alpha=0.5)


def test_normalizer_roundtrip():
    norm = PerfNormalizer(single_node_bandwidth_mbps=700.0, num_nodes=4)
    assert norm.denormalize(norm.normalize(1234.0)) == pytest.approx(1234.0)
    assert norm.normalize(norm.scale_mbps) == pytest.approx(1.0)


def test_normalizer_for_platform_uses_sublinear_scaling():
    p = cori(4)
    small = PerfNormalizer.for_platform(p, 4)
    big = PerfNormalizer.for_platform(p, 500)
    # 125x the nodes buys less than 125x the scale.
    assert big.scale_mbps / small.scale_mbps < 125
    assert big.scale_mbps > small.scale_mbps


def test_normalizer_validation():
    with pytest.raises(ValueError):
        PerfNormalizer(single_node_bandwidth_mbps=0.0, num_nodes=1)
    with pytest.raises(ValueError):
        PerfNormalizer(single_node_bandwidth_mbps=1.0, num_nodes=0)
    norm = PerfNormalizer(1.0, 1)
    with pytest.raises(ValueError):
        norm.normalize(-1.0)


def test_subset_reward_favors_small_subsets():
    norm = PerfNormalizer(single_node_bandwidth_mbps=700.0, num_nodes=4)
    small = norm.normalized_subset_reward(1000.0, subset_size=2, total_parameters=12)
    large = norm.normalized_subset_reward(1000.0, subset_size=12, total_parameters=12)
    assert small == pytest.approx(6 * large)
    with pytest.raises(ValueError):
        norm.normalized_subset_reward(1000.0, subset_size=0, total_parameters=12)


def test_non_finite_bandwidths_raise_evaluation_error():
    from repro.iostack.faults import EvaluationError

    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(EvaluationError, match="non-finite"):
            perf_objective(bad, 100.0, 0.5)
        with pytest.raises(EvaluationError, match="non-finite"):
            perf_objective(100.0, bad, 0.5)


def test_normalize_rejects_non_finite_perf():
    from repro.iostack.faults import EvaluationError

    norm = PerfNormalizer(single_node_bandwidth_mbps=700.0, num_nodes=4)
    for bad in (float("nan"), float("inf")):
        with pytest.raises(EvaluationError, match="non-finite"):
            norm.normalize(bad)
