"""Offline training: sweeps, PCA impact, checkpointing."""

import numpy as np
import pytest

from repro.core.offline_training import (
    impact_from_sweeps,
    load_agents,
    parameter_sweep,
    pretrain_subset_picker,
    save_agents,
)
from repro.core.objective import PerfNormalizer
from repro.core.smart_config import SmartConfigAgent
from repro.iostack import TUNED_SPACE, IOStackSimulator, NoiseModel, cori
from repro.workloads import flash


@pytest.fixture(scope="module")
def sweep():
    sim = IOStackSimulator(cori(4), NoiseModel(seed=5))
    return parameter_sweep(
        sim, flash(), rng=np.random.default_rng(5), random_samples=16, repeats=1
    )


def test_sweep_shapes(sweep):
    n_runs, n_params = sweep.configs.shape
    assert n_params == len(TUNED_SPACE)
    assert sweep.perfs.shape == (n_runs,)
    assert n_runs > len(TUNED_SPACE)  # axis sweeps alone exceed 12
    assert np.all(sweep.perfs > 0)
    assert sweep.workload_name == "flash-io"


def test_sweep_covers_axes(sweep):
    # Axis sweeps vary each parameter away from its default.
    spread = sweep.configs.std(axis=0)
    assert np.all(spread > 0)


def test_impact_scores_identify_striping(sweep):
    impact = impact_from_sweeps([sweep])
    assert impact.shape == (len(TUNED_SPACE),)
    assert impact.sum() == pytest.approx(1.0)
    ranked = [TUNED_SPACE.names[i] for i in np.argsort(impact)[::-1]]
    assert "striping_factor" in ranked[:3]


def test_impact_from_empty_rejected():
    with pytest.raises(ValueError):
        impact_from_sweeps([])


def test_pretrain_subset_picker_sets_scores(sweep, rng):
    norm = PerfNormalizer(700.0, 4)
    agent = SmartConfigAgent(normalizer=norm, rng=rng)
    impact = impact_from_sweeps([sweep])
    pretrain_subset_picker(agent, impact, episodes=10, rng=rng)
    assert np.allclose(agent.impact_scores, impact / impact.sum())
    subset = agent.subset_picker(500.0, None, iteration=0)
    assert subset


def test_save_load_roundtrip(tmp_path, trained_bundle):
    _, normalizer, agents = trained_bundle
    path = tmp_path / "agents.npz"
    save_agents(agents, path)
    restored = load_agents(path, normalizer)
    assert np.allclose(restored.impact_scores, agents.impact_scores)
    assert np.allclose(
        restored.smart_config.impact_scores, agents.smart_config.impact_scores
    )
    v = list(np.linspace(0.1, 1.0, 30))
    for t in range(5, 30, 6):
        assert restored.early_stopper.should_stop(v, t) == agents.early_stopper.should_stop(v, t)
