"""The TunIO pipeline and resumable sessions."""

import numpy as np
import pytest

from repro.core import TuningSession, build_tunio
from repro.tuners import HSTuner, NoStop
from repro.workloads import flash
from tests.conftest import make_workload


@pytest.fixture
def tunio(trained_bundle):
    sim, normalizer, agents = trained_bundle
    return build_tunio(sim, agents, normalizer, rng=np.random.default_rng(1))


def test_tunio_tunes_flash(tunio):
    res = tunio.tune(flash(), max_iterations=25)
    assert res.tuner_name == "tunio"
    assert res.best_perf > 3 * res.baseline_perf
    assert res.best_config is not None


def test_tunio_uses_subsets_after_warmup(tunio):
    res = tunio.tune(flash(), max_iterations=10)
    assert len(res.history[0].tuned_parameters) == 12  # generation 0: full
    later = [len(r.tuned_parameters) for r in res.history[1:]]
    assert any(k < 12 for k in later)


def test_tunio_can_stop_early(trained_bundle):
    sim, normalizer, agents = trained_bundle
    tuner = build_tunio(sim, agents, normalizer, rng=np.random.default_rng(3))
    res = tuner.tune(flash(), max_iterations=50)
    if res.stop_reason == "stopper":
        assert res.stopped_at is not None
        assert len(res.history) == res.stopped_at + 1
    # Even if this seed ran to budget, the stopper machinery was consulted
    # every iteration without error.
    assert len(res.history) <= 50


def test_expected_runs_passthrough(trained_bundle):
    sim, normalizer, agents = trained_bundle
    tuner = build_tunio(
        sim, agents, normalizer, expected_runs=1e6, rng=np.random.default_rng(4)
    )
    assert tuner.stopper.expected_runs == 1e6


def test_session_resume_accumulates(trained_bundle):
    sim, normalizer, agents = trained_bundle
    tuner = HSTuner(sim, stopper=NoStop(), rng=np.random.default_rng(6))
    session = TuningSession(tuner=tuner, workload=make_workload())
    first = session.run(4)
    assert len(first.history) == 4
    second = session.run(3)
    assert second is first
    assert len(second.history) == 7
    assert session.best_perf == second.best_perf


def test_session_best_before_run_rejected(trained_bundle):
    sim, normalizer, agents = trained_bundle
    session = TuningSession(tuner=HSTuner(sim), workload=make_workload())
    with pytest.raises(RuntimeError):
        _ = session.best_perf
