"""Return on Tuning Investment."""

import numpy as np
import pytest

from repro.core.roti import RoTICurve, roti, roti_curve
from repro.tuners.base import IterationRecord, TuningResult


def test_point_roti():
    assert roti(perf_at_t=500.0, perf_at_0=100.0, minutes=10.0) == 40.0
    with pytest.raises(ValueError):
        roti(1.0, 0.0, minutes=0.0)


def make_result(perfs, minutes):
    res = TuningResult("t", "w", baseline_perf=100.0)
    res.history = [
        IterationRecord(i, p, p, m, 5) for i, (p, m) in enumerate(zip(perfs, minutes))
    ]
    return res


def test_curve_from_result():
    res = make_result([200.0, 400.0, 420.0], [10.0, 20.0, 40.0])
    curve = roti_curve(res)
    assert np.allclose(curve.values, [10.0, 15.0, 8.0])
    assert curve.peak == 15.0
    assert curve.peak_minutes == 20.0
    assert curve.final == 8.0


def test_curve_at_minutes():
    res = make_result([200.0, 400.0], [10.0, 20.0])
    curve = roti_curve(res)
    assert curve.at_minutes(15.0) == 10.0
    assert curve.at_minutes(20.0) == 15.0
    with pytest.raises(ValueError):
        curve.at_minutes(5.0)


def test_curve_validation():
    with pytest.raises(ValueError):
        RoTICurve(minutes=np.array([1.0]), values=np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        RoTICurve(minutes=np.array([]), values=np.array([]))
    with pytest.raises(ValueError):
        roti_curve(TuningResult("t", "w"))


def test_negative_gain_allowed():
    # A regressing run has negative RoTI, not an error.
    res = make_result([50.0], [10.0])
    assert roti_curve(res).final == -5.0


def test_tied_timestamps_land_on_the_last_record():
    # A retry- or straggler-charged iteration can end at the same
    # elapsed_minutes as its predecessor; the query must see the later
    # (cumulative-best) record, not the stale tie.
    res = make_result([200.0, 300.0, 400.0], [10.0, 20.0, 20.0])
    curve = roti_curve(res)
    assert curve.at_minutes(20.0) == 15.0  # (400-100)/20: the last tied record
    assert curve.at_minutes(19.0) == 10.0
    assert curve.at_minutes(25.0) == 15.0


def test_non_monotonic_minutes_rejected():
    with pytest.raises(ValueError, match="non-decreasing"):
        RoTICurve(minutes=np.array([2.0, 1.0]), values=np.array([1.0, 1.0]))


def test_nan_baseline_fails_fast():
    res = make_result([200.0], [10.0])
    res.baseline_perf = float("nan")
    with pytest.raises(ValueError, match="finite baseline"):
        roti_curve(res)
    res.baseline_perf = float("inf")
    with pytest.raises(ValueError, match="finite baseline"):
        roti_curve(res)


def test_non_finite_curve_values_rejected():
    with pytest.raises(ValueError, match="finite"):
        RoTICurve(minutes=np.array([1.0]), values=np.array([np.nan]))


def test_single_iteration_curve():
    curve = roti_curve(make_result([250.0], [5.0]))
    assert curve.peak == curve.final == 30.0
    assert curve.peak_minutes == 5.0
    assert curve.at_minutes(5.0) == 30.0


def test_zero_time_iterations_are_masked():
    # Instantaneous iterations cannot contribute a divide-by-zero point.
    res = make_result([150.0, 200.0], [0.0, 10.0])
    curve = roti_curve(res)
    assert curve.minutes.tolist() == [10.0]
    assert curve.values.tolist() == [10.0]
