"""Smart Configuration Generation (the subset picker)."""

import numpy as np
import pytest

from repro.core.objective import PerfNormalizer
from repro.core.smart_config import SmartConfigAgent, SmartConfigSettings
from repro.iostack import TUNED_SPACE


@pytest.fixture
def agent(rng):
    norm = PerfNormalizer(single_node_bandwidth_mbps=700.0, num_nodes=4)
    return SmartConfigAgent(normalizer=norm, rng=rng)


def test_settings_validation():
    with pytest.raises(ValueError):
        SmartConfigSettings(subset_sizes=())
    with pytest.raises(ValueError):
        SmartConfigSettings(subset_sizes=(0,))
    with pytest.raises(ValueError):
        SmartConfigSettings(swap_probability=1.5)


def test_initial_impact_uniform(agent):
    assert np.allclose(agent.impact_scores, 1 / 12)


def test_set_impact_scores_normalises(agent):
    scores = np.arange(1, 13, dtype=float)
    agent.set_impact_scores(scores)
    assert agent.impact_scores.sum() == pytest.approx(1.0)
    assert agent.ranked_parameters()[0] == TUNED_SPACE.names[11]


def test_set_impact_scores_validation(agent):
    with pytest.raises(ValueError):
        agent.set_impact_scores(np.ones(5))
    with pytest.raises(ValueError):
        agent.set_impact_scores(np.zeros(12))
    with pytest.raises(ValueError):
        agent.set_impact_scores(-np.ones(12))


def test_subset_picker_returns_valid_subsets(agent):
    subset = agent.subset_picker(500.0, None, iteration=0)
    assert len(subset) in agent.subset_sizes
    assert len(set(subset)) == len(subset)
    assert all(name in TUNED_SPACE for name in subset)


def test_top_parameter_always_included(agent):
    scores = np.full(12, 0.01)
    scores[3] = 1.0
    agent.set_impact_scores(scores)
    top = TUNED_SPACE.names[3]
    for it in range(20):
        subset = agent.subset_picker(500.0 + it, subset_from := None, iteration=it)
        assert top in subset


def test_credit_raises_winners(agent):
    before = agent.impact_scores[TUNED_SPACE.index_of_name("cb_nodes")]
    agent.credit_subset(("cb_nodes",), perf_delta_norm=0.5)
    after = agent.impact_scores[TUNED_SPACE.index_of_name("cb_nodes")]
    assert after > before
    assert agent.impact_scores.sum() == pytest.approx(1.0)


def test_debit_erodes_fruitless_subsets(agent):
    idx = TUNED_SPACE.index_of_name("mdc_config")
    before = agent.impact_scores[idx]
    agent.credit_subset(("mdc_config",), perf_delta_norm=0.0)
    assert agent.impact_scores[idx] < before


def test_empty_subset_credit_is_noop(agent):
    scores = agent.impact_scores.copy()
    agent.credit_subset((), 1.0)
    assert np.array_equal(agent.impact_scores, scores)


def test_reset_episode_keeps_learning(agent):
    agent.credit_subset(("cb_nodes",), 0.5)
    scores = agent.impact_scores.copy()
    agent.subset_picker(100.0, None, iteration=0)
    agent.reset_episode()
    assert np.array_equal(agent.impact_scores, scores)  # persists


def test_state_roundtrip(agent, rng):
    agent.credit_subset(("cb_nodes",), 0.7)
    state = agent.get_state()
    norm = PerfNormalizer(700.0, 4)
    other = SmartConfigAgent(normalizer=norm, rng=np.random.default_rng(5))
    other.set_state(state)
    assert np.allclose(other.impact_scores, agent.impact_scores)
    ctx = np.zeros(14)
    assert np.allclose(
        other.observer.observe_state(ctx), agent.observer.observe_state(ctx)
    )


def test_no_normalizer_falls_back(rng):
    agent = SmartConfigAgent(rng=rng)
    subset = agent.subset_picker(1000.0, None, iteration=0)
    assert subset
