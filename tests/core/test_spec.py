"""TuningSpec and the one-call tune_application pipeline."""

import pytest

from repro.core.spec import TuningOutcome, TuningSpec, tune_application
from repro.discovery.reducers import IOPathSwitching, LoopReduction
from repro.workloads.sources import canonical_hints, load_source


def test_spec_validation():
    with pytest.raises(ValueError):
        TuningSpec(max_iterations=0)
    with pytest.raises(ValueError):
        TuningSpec(budget_minutes=0)
    with pytest.raises(ValueError):
        TuningSpec(loop_reduction=2.0)
    with pytest.raises(ValueError):
        TuningSpec(expected_runs=-1)
    with pytest.raises(ValueError):
        TuningSpec(repeats=0)


def test_spec_builds_requested_reducers():
    spec = TuningSpec(loop_reduction=0.01, path_switch="/dev/shm")
    reducers = spec.reducers()
    assert isinstance(reducers[0], LoopReduction)
    assert isinstance(reducers[1], IOPathSwitching)
    assert TuningSpec().reducers() == ()


@pytest.fixture(scope="module")
def outcome(trained_bundle):
    _, _, agents = trained_bundle
    spec = TuningSpec(max_iterations=10, loop_reduction=0.01, seed=5)
    return tune_application(
        load_source("macsio"), canonical_hints("macsio"), spec,
        name="macsio", agents=agents,
    )


def test_outcome_has_kernel_and_gain(outcome):
    assert isinstance(outcome, TuningOutcome)
    assert outcome.kernel is not None
    assert outcome.kernel.extrapolation_factor > 1.0
    assert outcome.gain > 1.5
    assert outcome.result.best_config is not None


def test_budget_constraint_enforced(trained_bundle):
    _, _, agents = trained_bundle
    spec = TuningSpec(max_iterations=40, budget_minutes=60, seed=6)
    out = tune_application(
        load_source("macsio"), canonical_hints("macsio"), spec,
        name="macsio", agents=agents,
    )
    # The budget fired well before the iteration cap.
    assert len(out.result.history) < 40
    assert out.result.total_minutes < 120


def test_full_application_mode(trained_bundle):
    _, _, agents = trained_bundle
    spec = TuningSpec(max_iterations=4, use_io_kernel=False, seed=7)
    out = tune_application(
        load_source("macsio"), canonical_hints("macsio"), spec,
        name="macsio", agents=agents,
    )
    assert out.kernel is None
    assert out.result.workload_name == "macsio-app"
