"""The tunio-discover CLI."""

import pytest

from repro.discovery.cli import main
from repro.workloads.sources import load_source


@pytest.fixture
def app_c(tmp_path):
    path = tmp_path / "app.c"
    path.write_text(load_source("macsio"))
    return path


def test_default_invocation_writes_kernel(app_c, capsys):
    assert main([str(app_c)]) == 0
    out = capsys.readouterr().out
    assert "kept" in out
    kernel = app_c.with_suffix(".kernel.c")
    assert kernel.exists()
    assert "H5Dwrite" in kernel.read_text()
    assert "fprintf" not in kernel.read_text()


def test_explicit_output_path(app_c, tmp_path, capsys):
    out_path = tmp_path / "k.c"
    assert main([str(app_c), "-o", str(out_path)]) == 0
    assert out_path.exists()


def test_loop_reduction_flag(app_c, capsys):
    assert main([str(app_c), "--loop-reduction", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "multiplied by 85" in out
    assert "tunio:loop-reduced" in app_c.with_suffix(".kernel.c").read_text()


def test_path_switch_flag(app_c):
    assert main([str(app_c), "--path-switch", "/dev/shm"]) == 0
    assert "/dev/shm/macsio_dump.h5" in app_c.with_suffix(".kernel.c").read_text()


def test_explain_mode_prints_annotations(app_c, capsys):
    assert main([str(app_c), "--explain"]) == 0
    out = capsys.readouterr().out
    assert "KEEP" in out and "drop" in out
    assert not app_c.with_suffix(".kernel.c").exists()


def test_keep_region(app_c, capsys):
    assert main([str(app_c), "--keep-region", "1:5"]) == 0
    with pytest.raises(SystemExit):
        main([str(app_c), "--keep-region", "nope"])


def test_missing_input_file(tmp_path, capsys):
    assert main([str(tmp_path / "missing.c")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_custom_io_prefix(app_c):
    assert main([str(app_c), "--io-prefix", "fprintf"]) == 0
    text = app_c.with_suffix(".kernel.c").read_text()
    assert "fprintf" in text
