"""Constant-expression evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.discovery.constants import ConstantEnv, UnresolvableExpression
from repro.discovery.formatter import format_source
from repro.discovery.parser import parse_source


def env_from(src):
    return ConstantEnv.from_parsed(parse_source(format_source(src)))


def test_defines_collected():
    env = env_from("#define A 10\n#define B (A * 2)\nint main(void) { return 0; }")
    assert env.resolve("A") == 10
    assert env.resolve("B") == 20
    assert env.resolve("A + B") == 30


def test_function_like_macros_skipped():
    env = env_from("#define SQ(x) ((x)*(x))\n#define N 3\nint main(void){return 0;}")
    assert "SQ" not in env.macros
    assert env.resolve("N") == 3


def test_arithmetic():
    env = ConstantEnv()
    assert env.resolve("2 + 3 * 4") == 14
    assert env.resolve("(2 + 3) * 4") == 20
    assert env.resolve("10 / 3") == 3
    assert env.resolve("10 % 3") == 1
    assert env.resolve("-5 + 2") == -3
    assert env.resolve("0x10") == 16
    assert env.resolve("100UL") == 100


@given(st.integers(-1000, 1000), st.integers(-1000, 1000), st.integers(1, 50))
def test_matches_python_semantics(a, b, c):
    env = ConstantEnv()
    assert env.resolve(f"({a}) + ({b}) * ({c})") == a + b * c


def test_unresolvable_cases():
    env = ConstantEnv()
    for expr in ("FOO", "1 +", "(1", "1 / 0", "3.5", '"str"'):
        with pytest.raises(UnresolvableExpression):
            env.resolve(expr)
        assert env.try_resolve(expr) is None


def test_define_override():
    env = ConstantEnv()
    env.define("N", 5)
    env.define("M", "N * N")
    assert env.resolve("M") == 25


def test_macro_recursion_guard():
    env = ConstantEnv()
    env.define("A", "B")
    env.define("B", "A")
    with pytest.raises(UnresolvableExpression):
        env.resolve("A")
