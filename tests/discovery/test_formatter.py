"""One-statement-per-line formatter."""

from repro.discovery.formatter import format_source
from repro.discovery.lexer import TokenKind, tokenize


SAMPLE = """
#include <hdf5.h>
#define N 4
int main(void) { int a = 1; int b = 2; if (a) { b = 3; } return b; }
"""


def test_braces_on_own_lines():
    lines = [l.strip() for l in format_source(SAMPLE).splitlines()]
    assert "{" in lines and "}" in lines
    # No statement shares a line with a block brace.
    for line in lines:
        if line in ("{", "}"):
            continue
        assert not line.endswith("{")


def test_multi_statement_lines_split():
    lines = [l.strip() for l in format_source(SAMPLE).splitlines()]
    assert "int a = 1;" in lines
    assert "int b = 2;" in lines


def test_idempotent():
    once = format_source(SAMPLE)
    assert format_source(once) == once


def test_token_stream_preserved():
    def stream(src):
        return [
            (t.kind, t.text)
            for t in tokenize(src)
            if t.kind not in (TokenKind.EOF,)
        ]

    assert stream(SAMPLE) == stream(format_source(SAMPLE))


def test_initializer_braces_stay_inline():
    src = "int main(void) { hsize_t dims[2] = {4, 8}; return 0; }"
    out = format_source(src)
    assert "{ 4, 8 }" in out or "{4, 8}" in out
    # Exactly one block open/close pair.
    lines = [l.strip() for l in out.splitlines()]
    assert lines.count("{") == 1 and lines.count("}") == 1


def test_for_header_semicolons_not_split():
    src = "int main(void) { for (int i = 0; i < 4; i++) { i; } return 0; }"
    out = format_source(src)
    header = [l for l in out.splitlines() if "for" in l]
    assert len(header) == 1
    assert header[0].count(";") == 2


def test_directives_own_lines():
    out = format_source(SAMPLE)
    assert "#include <hdf5.h>" in out.splitlines()
    assert "#define N 4" in out.splitlines()


def test_nested_blocks_indent():
    out = format_source(SAMPLE)
    body_lines = [l for l in out.splitlines() if "b = 3" in l]
    assert body_lines[0].startswith("        ")  # two levels deep
