"""The discover_io pipeline and IOKernel binding."""

import pytest

from repro.discovery import (
    DiscoveryOptions,
    IOPathSwitching,
    LoopReduction,
    MarkingOptions,
    discover_io,
)
from repro.workloads.sources import canonical_hints, load_source


@pytest.fixture(scope="module")
def macsio_kernel():
    return discover_io(
        load_source("macsio"), "macsio",
        DiscoveryOptions(hints=canonical_hints("macsio")),
    )


def test_kernel_is_smaller_than_app(macsio_kernel):
    k = macsio_kernel
    assert 0 < k.kept_line_count < k.original_line_count
    assert 0.3 < k.reduction_ratio < 0.95


def test_kernel_source_is_reparsable(macsio_kernel):
    from repro.discovery import parse_source

    parsed = parse_source(macsio_kernel.source)
    assert "main" in parsed.functions


def test_kernel_binds_to_workload(macsio_kernel):
    w = macsio_kernel.to_workload()
    assert w.name == "macsio-kernel"
    assert w.bytes_written > 0
    assert w.compute_seconds == 0.0  # compute sliced away
    assert w.extrapolation_factor == 1.0


def test_kernel_drops_logging_but_keeps_bytes(macsio_kernel):
    from repro.discovery import workload_from_source

    hints = canonical_hints("macsio")
    app = workload_from_source(macsio_kernel.original_source, "app", hints)
    kern = macsio_kernel.to_workload()
    # Figure 8(c): bytes nearly exact, ops undercount by the logging share.
    assert abs(kern.bytes_written - app.bytes_written) / app.bytes_written < 0.001
    ops_error = (app.write_ops - kern.write_ops) / app.write_ops
    assert 0.15 < ops_error < 0.25  # paper: 19.05%


def test_loop_reduction_in_pipeline():
    hints = canonical_hints("macsio")
    k = discover_io(
        load_source("macsio"), "macsio",
        DiscoveryOptions(hints=hints, reducers=(LoopReduction(0.01),)),
    )
    assert k.extrapolation_factor == pytest.approx(85.0)
    w = k.to_workload()
    assert w.extrapolation_factor == pytest.approx(85.0)
    full = discover_io(
        load_source("macsio"), "macsio", DiscoveryOptions(hints=hints)
    ).to_workload()
    assert w.bytes_written < full.bytes_written / 50


def test_path_switching_in_pipeline():
    hints = canonical_hints("macsio")
    k = discover_io(
        load_source("macsio"), "macsio",
        DiscoveryOptions(hints=hints, reducers=(IOPathSwitching("/dev/shm"),)),
    )
    w = k.to_workload()
    assert all(p.tier == "memory" for p in w.phases())


def test_explain_lists_every_line(macsio_kernel):
    explain = macsio_kernel.explain()
    assert explain.count("\n") == macsio_kernel.original_line_count
    assert "KEEP" in explain and "drop" in explain


def test_fallback_hints_override():
    hints = canonical_hints("macsio")
    k = discover_io(load_source("macsio"), "m", DiscoveryOptions(hints=hints))
    other = canonical_hints("flash")
    w = k.to_workload(hints=other)
    assert w.n_procs == other.n_procs


def test_kernel_runs_on_simulator(quiet_sim, default_config, macsio_kernel):
    result = quiet_sim.evaluate(macsio_kernel.to_workload(), default_config)
    assert result.perf_mbps > 0
