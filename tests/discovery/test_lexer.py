"""C tokenizer."""

import pytest

from repro.discovery.lexer import LexError, TokenKind, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != TokenKind.EOF]


def test_identifiers_and_keywords():
    toks = kinds("int foo = bar;")
    assert toks[0] == (TokenKind.KEYWORD, "int")
    assert toks[1] == (TokenKind.IDENT, "foo")
    assert (TokenKind.IDENT, "bar") in toks


def test_numbers():
    toks = kinds("x = 42 + 0x1F + 3.14 + 1e-5 + 100UL;")
    numbers = [t for k, t in toks if k == TokenKind.NUMBER]
    assert numbers == ["42", "0x1F", "3.14", "1e-5", "100UL"]


def test_strings_and_chars():
    toks = kinds(r'f("a \"quoted\" path", '+ r"'x');")
    assert any(k == TokenKind.STRING for k, _ in toks)
    assert any(k == TokenKind.CHAR for k, _ in toks)


def test_multichar_operators_maximal_munch():
    toks = [t for _, t in kinds("a <<= b >> c != d->e;")]
    assert "<<=" in toks and ">>" in toks and "!=" in toks and "->" in toks


def test_comments_dropped():
    toks = kinds("a; // line comment\n/* block\ncomment */ b;")
    idents = [t for k, t in toks if k == TokenKind.IDENT]
    assert idents == ["a", "b"]


def test_directive_captured_whole():
    toks = tokenize("#define N 10\nint x;\n")
    assert toks[0].kind == TokenKind.DIRECTIVE
    assert toks[0].text == "#define N 10"


def test_directive_with_continuation():
    toks = tokenize("#define LONG \\\n  42\nint x;\n")
    assert toks[0].kind == TokenKind.DIRECTIVE
    assert "42" in toks[0].text


def test_hash_mid_line_is_not_directive():
    # '#' only starts a directive at the start of a line.
    with pytest.raises(LexError):
        tokenize("int x = 1 # 2;")


def test_line_numbers_tracked():
    toks = tokenize("a;\nb;\nc;")
    idents = [t for t in toks if t.kind == TokenKind.IDENT]
    assert [t.line for t in idents] == [1, 2, 3]


def test_unterminated_constructs_raise():
    with pytest.raises(LexError):
        tokenize('"unterminated')
    with pytest.raises(LexError):
        tokenize("/* never closed")
    with pytest.raises(LexError):
        tokenize('x = "broken\nstring";')


def test_eof_token_always_last():
    assert tokenize("").pop().kind == TokenKind.EOF
    assert tokenize("x;").pop().kind == TokenKind.EOF
