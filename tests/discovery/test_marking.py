"""The marking loop (the heart of Application I/O Discovery)."""

import pytest

from repro.discovery.formatter import format_source
from repro.discovery.marking import MarkingOptions, mark_lines
from repro.discovery.parser import parse_source
from repro.discovery.reconstruct import reconstruct_kernel


SRC = """
#include <hdf5.h>
#include <mpi.h>
#include <stdio.h>
#define N 1000
#define STEPS 10
void compute(double *state, int n) {
  for (int k = 0; k < n; k++) { state[k] = state[k] * 1.5; }
}
void log_step(FILE *logf, int step) {
  fprintf(logf, "step %d done", step);
}
int main(int argc, char **argv) {
  int rank;
  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  FILE *logf = fopen("run.log", "w");
  double *state = (double *) malloc(N * sizeof(double));
  double *data = (double *) malloc(N * sizeof(double));
  double checksum = 0.0;
  hsize_t dims[1] = {N};
  hid_t fid = H5Fcreate("out.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
  hid_t sid = H5Screate_simple(1, dims, NULL);
  hid_t did = H5Dcreate2(fid, "data", H5T_NATIVE_DOUBLE, sid, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
  for (int step = 0; step < STEPS; step++) {
    compute(state, N);
    data[0] = 1.0;
    checksum = checksum + state[0];
    H5Dwrite(did, H5T_NATIVE_DOUBLE, H5S_ALL, H5S_ALL, H5P_DEFAULT, data);
    log_step(logf, step);
  }
  printf("checksum %f", checksum);
  fclose(logf);
  H5Dclose(did);
  H5Fclose(fid);
  MPI_Finalize();
  return 0;
}
"""


@pytest.fixture(scope="module")
def parsed():
    return parse_source(format_source(SRC))


@pytest.fixture(scope="module")
def marking(parsed):
    return mark_lines(parsed)


def kept_text(parsed, marking):
    return "\n".join(parsed.lines[i].text for i in marking.kept_sorted())


def test_io_calls_kept(parsed, marking):
    text = kept_text(parsed, marking)
    for call in ("H5Fcreate", "H5Screate_simple", "H5Dcreate2", "H5Dwrite",
                 "H5Dclose", "H5Fclose"):
        assert call in text


def test_essential_mpi_calls_kept(parsed, marking):
    text = kept_text(parsed, marking)
    assert "MPI_Init" in text and "MPI_Finalize" in text


def test_directives_always_kept(parsed, marking):
    text = kept_text(parsed, marking)
    assert "#define N 1000" in text and "#include <hdf5.h>" in text


def test_dependents_backward_sliced(parsed, marking):
    text = kept_text(parsed, marking)
    # data feeds H5Dwrite: its malloc and assignment survive.
    assert "double *data" in text
    assert "data[0] = 1.0" in text
    # dims feeds the dataspace.
    assert "hsize_t dims" in text


def test_compute_and_logging_dropped(parsed, marking):
    text = kept_text(parsed, marking)
    assert "compute(state, N)" not in text
    assert "state[k] * 1.5" not in text
    assert "checksum" not in text
    assert "fprintf" not in text
    assert "log_step" not in text
    assert "printf" not in text
    assert "fopen" not in text


def test_contextual_parents_kept(parsed, marking):
    text = kept_text(parsed, marking)
    assert "for (int step = 0; step < STEPS; step++)" in text
    assert "int main" in text
    assert "return 0;" in text


def test_kernel_braces_balanced(parsed, marking):
    kernel = reconstruct_kernel(parsed, marking)
    assert kernel.count("{") == kernel.count("}")


def test_reasons_recorded(parsed, marking):
    reasons = set(marking.reasons.values())
    assert any(r.startswith("io-call:") for r in reasons)
    assert any(r.startswith("backward-slice:") for r in reasons)
    assert any(r.startswith("parent-of:") for r in reasons)
    assert any(r.startswith("essential:") for r in reasons)


def test_live_functions(parsed, marking):
    assert "main" in marking.live_functions
    assert "compute" not in marking.live_functions


def test_keep_regions_forced(parsed):
    target = next(
        l.index for l in parsed.lines if "checksum = checksum" in l.text
    )
    opts = MarkingOptions(keep_regions=((target, target),))
    marking = mark_lines(parsed, opts)
    assert target in marking.kept
    # Its dependents come along: checksum's declaration.
    decl = next(l.index for l in parsed.lines if "double checksum" in l.text)
    assert decl in marking.kept


def test_invalid_keep_region():
    parsed = parse_source(format_source("int main(void)\n{\nreturn 0;\n}\n"))
    with pytest.raises(ValueError):
        mark_lines(parsed, MarkingOptions(keep_regions=((5, 2),)))


def test_custom_io_prefix(parsed):
    opts = MarkingOptions(io_prefixes=("fprintf",), essential_calls=())
    marking = mark_lines(parsed, opts)
    text = kept_text(parsed, marking)
    assert "fprintf" in text
    assert "H5Dwrite" not in text


def test_called_io_functions_keep_call_sites(parsed):
    # log_step contains fprintf: with fprintf as the I/O call, the
    # call site of log_step must survive so the kernel still calls it.
    opts = MarkingOptions(io_prefixes=("fprintf",), essential_calls=())
    marking = mark_lines(parsed, opts)
    text = kept_text(parsed, marking)
    assert "log_step(logf, step)" in text
    assert "void log_step" in text
