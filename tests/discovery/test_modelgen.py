"""Static interpretation of C sources into workload models."""

import pytest

from repro.discovery.modelgen import ModelGenError, ModelHints, workload_from_source
from repro.workloads.sources import canonical_hints, load_source


SIMPLE = """
#include <hdf5.h>
#include <mpi.h>
#define N_STEPS 10
#define ELEMS 1048576
int main(int argc, char **argv)
{
    int rank, nprocs;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    double *buf = (double *) malloc(ELEMS * sizeof(double));
    hsize_t dims[1] = {ELEMS};
    hid_t fid = H5Fcreate("out.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    hid_t sid = H5Screate_simple(1, dims, NULL);
    for (int step = 0; step < N_STEPS; step++)
    {
        hid_t did = H5Dcreate2(fid, "d", H5T_NATIVE_DOUBLE, sid, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
        H5Dwrite(did, H5T_NATIVE_DOUBLE, sid, H5S_ALL, H5P_DEFAULT, buf);
        H5Dclose(did);
    }
    H5Fclose(fid);
    MPI_Finalize();
    return 0;
}
"""

HINTS = ModelHints(n_procs=8, n_nodes=2)


def test_simple_source_volumes():
    w = workload_from_source(SIMPLE, "simple", HINTS)
    # 10 steps x 8 procs x 1 MiElems x 8 bytes
    assert w.write_ops == 10 * 8
    assert w.bytes_written == 10 * 8 * 1048576 * 8
    assert w.n_procs == 8 and w.n_nodes == 2
    assert len(w.loops) == 1
    assert w.loops[0].n_iterations == 10


def test_first_iteration_guard_detected():
    src = SIMPLE.replace(
        "        hid_t did = H5Dcreate2",
        """        if (step == 0)
        {
            H5Dwrite(fid, H5T_NATIVE_DOUBLE, sid, H5S_ALL, H5P_DEFAULT, buf);
        }
        hid_t did = H5Dcreate2""",
    )
    w = workload_from_source(src, "guarded", HINTS)
    # 10 steady writes + 1 first-only write, per proc.
    assert w.write_ops == (10 + 1) * 8


def test_compute_loops_become_time():
    src = SIMPLE.replace(
        "        hid_t did = H5Dcreate2",
        """        for (long it = 0; it < 100000000; it++)
        {
            rank = rank + 1;
        }
        hid_t did = H5Dcreate2""",
    )
    w = workload_from_source(src, "compute", HINTS)
    # 1e8 iterations x 1 statement x 2 ns x 10 steps = 2 s.
    assert w.compute_seconds == pytest.approx(2.0, rel=0.01)


def test_rank_guard_scopes_to_single_proc():
    src = SIMPLE.replace(
        "        H5Dwrite(did, H5T_NATIVE_DOUBLE, sid, H5S_ALL, H5P_DEFAULT, buf);",
        """        if (rank == 0)
        {
            H5Dwrite(did, H5T_NATIVE_DOUBLE, sid, H5S_ALL, H5P_DEFAULT, buf);
        }""",
    )
    w = workload_from_source(src, "rank0", HINTS)
    assert w.write_ops == 10  # one proc, not eight


def test_logging_becomes_fixed_phase():
    src = SIMPLE.replace(
        "    H5Fclose(fid);",
        '    FILE *logf = fopen("x.log", "w");\n'
        '    fprintf(logf, "done");\n'
        "    H5Fclose(fid);",
    )
    w = workload_from_source(src, "logged", HINTS)
    names = [p.name for p in w.fixed_phases]
    assert "logging" in names
    logging = next(p for p in w.fixed_phases if p.name == "logging")
    assert not logging.data[0].collective_capable


def test_memory_tier_detected_from_paths():
    src = SIMPLE.replace('"out.h5"', '"/dev/shm/out.h5"')
    w = workload_from_source(src, "shm", HINTS)
    assert all(p.tier == "memory" for p in w.phases())


def test_element_sizes_from_types():
    src = SIMPLE.replace("H5T_NATIVE_DOUBLE", "H5T_NATIVE_FLOAT")
    w = workload_from_source(src, "floats", HINTS)
    assert w.bytes_written == 10 * 8 * 1048576 * 4


def test_metadata_counted():
    w = workload_from_source(SIMPLE, "simple", HINTS)
    total_meta = sum(
        p.metadata.total_ops for p in w.phases() if p.metadata is not None
    )
    # Creates/closes inside the loop dominate: 2 per step per proc.
    assert total_meta >= 10 * 8 * 2


def test_no_main_rejected():
    with pytest.raises(ModelGenError):
        workload_from_source("int helper(void)\n{\nreturn 0;\n}\n", "x", HINTS)


def test_hints_validation():
    with pytest.raises(ValueError):
        ModelHints(n_procs=2, n_nodes=4)
    with pytest.raises(ValueError):
        ModelHints(statement_cost=-1.0)


@pytest.mark.parametrize("name", ["macsio", "vpic", "flash", "hacc", "bdcats"])
def test_bundled_sources_interpret(name):
    w = workload_from_source(load_source(name), name, canonical_hints(name))
    assert w.bytes_written > 0
    assert w.compute_seconds > 0
    if name == "bdcats":
        assert w.bytes_read > w.bytes_written  # read-heavy
        assert w.alpha < 0.5
    else:
        assert w.alpha == pytest.approx(1.0)


def test_fwrite_counts_as_logging():
    src = SIMPLE.replace(
        "    H5Fclose(fid);",
        '    FILE *ckpt = fopen("raw.dat", "w");\n'
        "    fwrite(buf, 8, 1024, ckpt);\n"
        "    H5Fclose(fid);",
    )
    w = workload_from_source(src, "raw", HINTS)
    logging = next(p for p in w.fixed_phases if p.name == "logging")
    assert logging.bytes_written == 8 * 1024 * 8  # size*count per proc


def test_top_level_write_becomes_setup_phase():
    src = SIMPLE.replace(
        "    H5Fclose(fid);",
        "    H5Dwrite(fid, H5T_NATIVE_DOUBLE, sid, H5S_ALL, H5P_DEFAULT, buf);\n"
        "    H5Fclose(fid);",
    )
    w = workload_from_source(src, "setup", HINTS)
    setup = next(p for p in w.fixed_phases if p.name == "setup")
    assert setup.write_ops == 8  # once per proc


def test_unresolvable_loop_bound_counts_once():
    src = SIMPLE.replace("step < N_STEPS", "step < argc")
    w = workload_from_source(src, "dynamic", HINTS)
    assert w.write_ops == 8  # one iteration assumed


def test_array_element_reassignment_tracked():
    src = SIMPLE.replace(
        "    hsize_t dims[1] = {ELEMS};",
        "    hsize_t dims[1] = {ELEMS};\n    dims[0] = 2048;",
    )
    w = workload_from_source(src, "resized", HINTS)
    assert w.bytes_written == 10 * 8 * 2048 * 8
