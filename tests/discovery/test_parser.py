"""Structural line parser."""

import pytest

from repro.discovery.formatter import format_source
from repro.discovery.parser import LineKind, parse_source


SRC = format_source("""
#include <hdf5.h>
#define N 100
void helper(double *buf, int n) {
  for (int k = 0; k < n; k++) { buf[k] = buf[k] + 1.0; }
}
int main(int argc, char **argv) {
  int rank;
  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  double *data = (double *) malloc(N * sizeof(double));
  hid_t fid = H5Fcreate("out.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
  if (rank == 0) {
    helper(data, N);
  } else {
    data[0] = 1.0;
  }
  for (int step = 0; step < N; step++) {
    H5Dwrite(fid, H5T_NATIVE_DOUBLE, H5S_ALL, H5S_ALL, H5P_DEFAULT, data);
  }
  H5Fclose(fid);
  MPI_Finalize();
  return 0;
}
""")


@pytest.fixture(scope="module")
def parsed():
    return parse_source(SRC)


def line_of(parsed, fragment):
    for line in parsed.lines:
        if fragment in line.text:
            return line
    raise AssertionError(f"no line contains {fragment!r}")


def test_functions_found(parsed):
    assert set(parsed.functions) == {"helper", "main"}
    helper = parsed.functions["helper"]
    assert helper.params == ("buf", "n")
    assert helper.block_open > helper.head
    assert helper.block_close > helper.block_open


def test_line_kinds(parsed):
    assert line_of(parsed, "#define").kind == LineKind.DIRECTIVE
    assert line_of(parsed, "for (int step").kind == LineKind.FOR
    assert line_of(parsed, "if (rank == 0)").kind == LineKind.IF
    assert line_of(parsed, "else").kind == LineKind.ELSE
    assert line_of(parsed, "return 0").kind == LineKind.RETURN
    assert line_of(parsed, "int rank").kind == LineKind.DECL
    assert line_of(parsed, "hid_t fid").kind == LineKind.DECL
    assert line_of(parsed, "MPI_Finalize").kind == LineKind.EXPR


def test_defs_and_uses(parsed):
    decl = line_of(parsed, "double *data")
    assert "data" in decl.defs
    assert "N" in decl.uses
    write = line_of(parsed, "H5Dwrite")
    assert "data" in write.uses and "fid" in write.uses
    rank_line = line_of(parsed, "MPI_Comm_rank")
    assert "rank" in rank_line.defs  # &rank output argument


def test_calls_extracted(parsed):
    fid = line_of(parsed, "H5Fcreate")
    call = fid.calls[0]
    assert call.name == "H5Fcreate"
    assert call.string_args == ("out.h5",)
    assert "H5F_ACC_TRUNC" in call.arg_idents


def test_call_sites_indexed(parsed):
    assert len(parsed.call_sites["helper"]) == 1
    site = parsed.call_sites["helper"][0]
    assert "helper(data, N)" in parsed.lines[site].text


def test_parent_chain(parsed):
    write = line_of(parsed, "H5Dwrite")
    headers = parsed.enclosing_headers(write.index)
    kinds = [parsed.lines[h].kind for h in headers]
    assert kinds == [LineKind.FOR, LineKind.FUNC_HEAD]


def test_func_attribution(parsed):
    assert line_of(parsed, "buf[k]").func == "helper"
    assert line_of(parsed, "H5Dwrite").func == "main"
    assert line_of(parsed, "#define").func is None


def test_block_ranges_match_braces(parsed):
    loop = line_of(parsed, "for (int step")
    assert parsed.lines[loop.block_open].kind == LineKind.BRACE_OPEN
    assert parsed.lines[loop.block_close].kind == LineKind.BRACE_CLOSE
    assert loop.block_open < loop.block_close


def test_else_branch_parented(parsed):
    else_body = line_of(parsed, "data[0] = 1.0")
    parent = parsed.lines[else_body.parent]
    assert parent.kind == LineKind.ELSE
