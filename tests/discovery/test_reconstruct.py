"""Kernel reconstruction and the annotated explain view."""

from repro.discovery.formatter import format_source
from repro.discovery.marking import mark_lines
from repro.discovery.parser import parse_source
from repro.discovery.reconstruct import annotate_source, reconstruct_kernel

SRC = format_source("""
#include <hdf5.h>
int main(void) {
  double x = 1.0;
  x = x * 2.0;
  hid_t f = H5Fcreate("o.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
  H5Fclose(f);
  return 0;
}
""")


def test_reconstruct_preserves_order():
    parsed = parse_source(SRC)
    marking = mark_lines(parsed)
    kernel = reconstruct_kernel(parsed, marking)
    lines = kernel.splitlines()
    assert lines[0].startswith("#include")
    # Ordering follows the original file.
    assert lines.index(next(l for l in lines if "H5Fcreate" in l)) < lines.index(
        next(l for l in lines if "H5Fclose" in l)
    )
    # Dropped statements are truly absent.
    assert "x * 2.0" not in kernel


def test_reconstruct_empty_marking():
    parsed = parse_source("int x;\n")
    from repro.discovery.marking import MarkingResult

    empty = MarkingResult(kept=set(), reasons={})
    assert reconstruct_kernel(parsed, empty) == ""


def test_annotate_marks_every_line():
    parsed = parse_source(SRC)
    marking = mark_lines(parsed)
    annotated = annotate_source(parsed, marking)
    rows = annotated.splitlines()
    assert len(rows) == len(parsed.lines)
    assert any("KEEP" in r and "H5Fcreate" in r for r in rows)
    assert any(r.lstrip().split()[1] == "drop" for r in rows if "x * 2.0" in r)
    # Line numbers are 1-based and sequential.
    assert rows[0].split()[0] == "1"
