"""Kernel reducers: loop reduction, path switching, blind-write removal."""

import pytest

from repro.discovery.reducers import (
    BlindWriteRemoval,
    IOPathSwitching,
    LoopReduction,
    NullReduction,
)

SRC = """
#define STEPS 85
#define SMALL 2
int main(void)
{
  hid_t f = H5Fcreate("out/data.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
  FILE *log = fopen("run.log", "w");
  for (int step = 0; step < STEPS; step++)
  {
    for (int v = 0; v < SMALL; v++)
    {
      H5Dwrite(f, 0, 0, 0, 0, 0);
    }
  }
  return 0;
}
"""


def test_null_reduction_is_identity():
    out = NullReduction().apply(SRC)
    assert out.reductions == ()
    assert out.extrapolation_factor == 1.0
    assert "H5Dwrite" in out.source


def test_loop_reduction_shrinks_outermost_only():
    out = LoopReduction(0.01).apply(SRC)
    assert len(out.reductions) == 1
    rec = out.reductions[0]
    assert rec.original_iterations == 85
    assert rec.reduced_iterations == 1
    assert rec.scale == pytest.approx(85.0)
    assert out.extrapolation_factor == pytest.approx(85.0)
    assert "step < 1" in out.source
    assert "v < SMALL" in out.source  # inner loop untouched
    assert "tunio:loop-reduced" in out.source


def test_loop_reduction_too_small_to_reduce():
    src = SRC.replace("#define STEPS 85", "#define STEPS 1")
    out = LoopReduction(0.5).apply(src)
    assert out.reductions == ()
    assert out.extrapolation_factor == 1.0


def test_loop_reduction_unresolvable_bound_skipped():
    src = SRC.replace("step < STEPS", "step < argc")
    out = LoopReduction(0.01).apply(src)
    assert out.reductions == ()


def test_loop_reduction_fraction_validation():
    with pytest.raises(ValueError):
        LoopReduction(0.0)
    with pytest.raises(ValueError):
        LoopReduction(1.5)


def test_loop_reduction_le_bound():
    src = SRC.replace("step < STEPS", "step <= 84")
    out = LoopReduction(0.01).apply(src)
    assert out.reductions[0].original_iterations == 85
    assert "step <= 0" in out.source


def test_path_switching_prefixes_all_opens():
    out = IOPathSwitching("/dev/shm").apply(SRC)
    paths = {r.switched for r in out.path_switches}
    assert paths == {"/dev/shm/out/data.h5", "/dev/shm/run.log"}
    assert '"/dev/shm/out/data.h5"' in out.source
    assert '"/dev/shm/run.log"' in out.source


def test_path_switching_idempotent():
    once = IOPathSwitching("/dev/shm").apply(SRC)
    twice = IOPathSwitching("/dev/shm").apply(once.source)
    assert twice.path_switches == ()


def test_path_switching_validation():
    with pytest.raises(ValueError):
        IOPathSwitching("relative/path")
    with pytest.raises(ValueError):
        IOPathSwitching("")


def test_blind_write_removal():
    src = """
int main(void)
{
  H5Dwrite(written_only, 0, 0, 0, 0, buf);
  H5Dwrite(read_back, 0, 0, 0, 0, buf);
  H5Dread(read_back, 0, 0, 0, 0, buf);
  return 0;
}
"""
    out = BlindWriteRemoval().apply(src)
    assert len(out.removed_writes) == 1
    assert out.removed_writes[0].dataset_variable == "written_only"
    assert out.source.count("H5Dwrite") == 1
    assert "H5Dread" in out.source


def test_reducers_compose():
    first = LoopReduction(0.01).apply(SRC)
    second = IOPathSwitching("/dev/shm").apply(first.source)
    assert "step < 1" in second.source
    assert "/dev/shm/out/data.h5" in second.source


def test_compute_simulation_replaces_pure_compute_loops():
    from repro.discovery.reducers import ComputeSimulation

    src = """
#define STEPS 4
#define WORK 50000000
int main(void)
{
  double acc = 0.0;
  hid_t f = H5Fcreate("o.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
  for (int step = 0; step < STEPS; step++)
  {
    for (long it = 0; it < WORK; it++)
    {
      acc = acc * 0.5 + 1.0;
    }
    H5Dwrite(f, 0, 0, 0, 0, 0);
  }
  return 0;
}
"""
    out = ComputeSimulation(statement_cost=2e-9).apply(src)
    assert len(out.reductions) == 1
    assert "usleep(" in out.source
    assert "acc * 0.5" not in out.source
    # The I/O loop and its write survive untouched.
    assert "H5Dwrite" in out.source
    assert "step < STEPS" in out.source
    # 5e7 iterations x 1 statement x 2 ns = 0.1 s = 100000 us.
    usleep_line = next(l for l in out.source.splitlines() if "usleep" in l)
    micros = int(usleep_line.split("(")[1].split(")")[0])
    assert micros == pytest.approx(100_000, rel=0.1)


def test_compute_simulation_preserves_workload_timing():
    from repro.discovery import workload_from_source
    from repro.discovery.reducers import ComputeSimulation
    from repro.workloads.sources import canonical_hints, load_source

    hints = canonical_hints("macsio")
    source = load_source("macsio")
    out = ComputeSimulation().apply(source)
    app = workload_from_source(source, "app", hints)
    sim = workload_from_source(out.source, "sim", hints)
    assert sim.compute_seconds == pytest.approx(app.compute_seconds, rel=0.05)
    assert sim.bytes_written == app.bytes_written


def test_compute_simulation_validation():
    from repro.discovery.reducers import ComputeSimulation

    with pytest.raises(ValueError):
        ComputeSimulation(statement_cost=0)
