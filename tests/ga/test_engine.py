"""The generational evolution engine and toolbox."""

import numpy as np
import pytest

from repro.ga import (
    EvolutionEngine,
    Individual,
    Toolbox,
    tournament_pair,
    uniform_crossover,
    uniform_reset_mutation,
)

N_GENES = 6
CARDS = [10] * N_GENES


def make_toolbox(evaluate=None):
    """A toolbox solving 'maximise the genome sum'."""
    toolbox = Toolbox()
    toolbox.register(
        "generate",
        lambda n, rng: [Individual(rng.integers(0, 10, N_GENES)) for _ in range(n)],
    )
    toolbox.register("evaluate", evaluate or (lambda ind: float(ind.genome.sum())))
    toolbox.register("select", tournament_pair)
    toolbox.register("mate", uniform_crossover)
    toolbox.register(
        "mutate",
        lambda ind, rng: uniform_reset_mutation(ind, rng, CARDS, per_gene_probability=0.3),
    )
    return toolbox


def make_engine(pop=8, elites=1, seed=0, evaluate=None):
    return EvolutionEngine(
        make_toolbox(evaluate), population_size=pop, n_elites=elites,
        rng=np.random.default_rng(seed),
    )


# -- Toolbox -------------------------------------------------------------------


def test_toolbox_register_and_call():
    tb = Toolbox()
    tb.register("f", lambda x, y=1: x + y, y=10)
    assert tb.f(5) == 15
    assert "f" in tb
    tb.unregister("f")
    assert "f" not in tb
    with pytest.raises(KeyError):
        tb.unregister("f")
    with pytest.raises(AttributeError):
        tb.missing


def test_toolbox_rejects_non_callable_and_bad_names():
    tb = Toolbox()
    with pytest.raises(TypeError):
        tb.register("x", 42)
    with pytest.raises(ValueError):
        tb.register("register", lambda: None)


def test_toolbox_validate_reports_missing():
    tb = Toolbox()
    with pytest.raises(ValueError, match="generate"):
        tb.validate()


# -- Engine ---------------------------------------------------------------------


def test_engine_improves_fitness():
    engine = make_engine()
    first = engine.step()
    stats = engine.run(30)
    assert stats[-1].best_fitness >= first.best_fitness
    assert stats[-1].best_fitness > 40  # optimum is 54


def test_elitism_is_monotone():
    engine = make_engine(elites=2)
    best = [s.best_fitness for s in engine.run(20)]
    assert all(b2 >= b1 for b1, b2 in zip(best, best[1:]))


def test_elites_not_reevaluated():
    calls = []

    def evaluate(ind):
        calls.append(1)
        return float(ind.genome.sum())

    engine = make_engine(pop=6, elites=2, evaluate=evaluate)
    engine.step()
    assert len(calls) == 6  # generation 0 evaluates everyone
    calls.clear()
    engine.step()
    assert len(calls) == 4  # the two elites carried their fitness


def test_generation_counter_and_history():
    engine = make_engine()
    engine.run(5)
    assert engine.generation == 4  # gen 0 + 4 steps
    assert len(engine.history) == 5
    assert [s.generation for s in engine.history] == list(range(5))


def test_run_stops_on_callback():
    engine = make_engine()
    stats = engine.run(50, should_stop=lambda s: s.generation >= 3)
    assert stats[-1].generation == 3


def test_mask_pins_genes_to_incumbent():
    engine = make_engine(pop=6)
    engine.step()
    incumbent = engine.best.genome.copy()
    mask = np.zeros(N_GENES, dtype=bool)
    mask[0] = True
    engine.set_mask(mask)
    engine.step()
    for ind in engine.population[1:]:  # skip elite
        assert np.array_equal(ind.genome[1:], incumbent[1:])


def test_mask_must_enable_a_gene():
    engine = make_engine()
    with pytest.raises(ValueError):
        engine.set_mask(np.zeros(N_GENES, dtype=bool))
    engine.set_mask(None)  # clearing is fine


def test_validation():
    with pytest.raises(ValueError):
        make_engine(pop=2)
    with pytest.raises(ValueError):
        EvolutionEngine(make_toolbox(), population_size=4, n_elites=4)
    engine = make_engine()
    with pytest.raises(ValueError):
        engine.run(0)
    with pytest.raises(RuntimeError):
        _ = engine.best  # not initialised yet


def test_double_initialize_rejected():
    engine = make_engine()
    engine.initialize()
    with pytest.raises(RuntimeError):
        engine.initialize()


def test_seeded_runs_are_reproducible():
    a = make_engine(seed=42)
    b = make_engine(seed=42)
    sa = a.run(10)
    sb = b.run(10)
    assert [s.best_fitness for s in sa] == [s.best_fitness for s in sb]


# -- batched evaluation ---------------------------------------------------------


def make_batch_engine(pop=8, elites=1, seed=0, batches=None, dedupe=False,
                      batch_fn=None):
    toolbox = make_toolbox()
    batches = batches if batches is not None else []

    def evaluate_batch(individuals):
        batches.append(len(individuals))
        return [float(ind.genome.sum()) for ind in individuals]

    toolbox.register("evaluate_batch", batch_fn or evaluate_batch)
    return EvolutionEngine(
        toolbox, population_size=pop, n_elites=elites,
        rng=np.random.default_rng(seed), dedupe_duplicates=dedupe,
    )


def test_batch_dispatch_used_and_sized_like_pending():
    batches = []
    engine = make_batch_engine(pop=6, elites=2, batches=batches)
    engine.step()
    assert batches == [6]  # generation 0 evaluates everyone, as one batch
    engine.step()
    assert batches == [6, 4]  # elites carried their fitness


def test_batch_path_matches_per_individual_path():
    a = make_engine(seed=42)
    b = make_batch_engine(seed=42)
    sa = a.run(10)
    sb = b.run(10)
    assert [s.best_fitness for s in sa] == [s.best_fitness for s in sb]
    assert [s.mean_fitness for s in sa] == [s.mean_fitness for s in sb]


def test_batch_length_mismatch_rejected():
    engine = make_batch_engine(batch_fn=lambda individuals: [1.0])
    with pytest.raises(ValueError, match="evaluate_batch returned"):
        engine.step()


# -- duplicate handling ---------------------------------------------------------


def test_duplicate_groups_first_seen_order():
    a = Individual(np.array([1, 2, 3]))
    b = Individual(np.array([4, 5, 6]))
    a2 = Individual(np.array([1, 2, 3]))
    groups = EvolutionEngine.duplicate_groups([a, b, a2, b])
    assert groups == [[0, 2], [1, 3]]
    assert EvolutionEngine.duplicate_groups([]) == []


def make_duplicate_engine(calls, dedupe, seed=0):
    """All six generation-0 individuals share one genome."""
    toolbox = make_toolbox()

    def generate(n, rng):
        genome = rng.integers(0, 10, N_GENES)
        return [Individual(genome.copy()) for _ in range(n)]

    def evaluate(ind):
        calls.append(1)
        return float(ind.genome.sum())

    toolbox.register("generate", generate)
    toolbox.register("evaluate", evaluate)
    return EvolutionEngine(
        toolbox, population_size=6, n_elites=1,
        rng=np.random.default_rng(seed), dedupe_duplicates=dedupe,
    )


def test_dedupe_shares_fitness_among_identical_genomes():
    calls = []
    engine = make_duplicate_engine(calls, dedupe=True)
    stats = engine.step()
    assert len(calls) == 1  # one representative for six clones
    assert stats.evaluations == 6  # accounting still covers everyone
    assert stats.distinct_genomes == 1
    assert all(ind.evaluated for ind in engine.population)


def test_dedupe_off_evaluates_every_duplicate():
    calls = []
    engine = make_duplicate_engine(calls, dedupe=False)
    stats = engine.step()
    assert len(calls) == 6
    assert stats.distinct_genomes == 1


def test_dedupe_is_exact_for_deterministic_evaluators():
    a = make_engine(seed=11)
    b = EvolutionEngine(
        make_toolbox(), population_size=8, n_elites=1,
        rng=np.random.default_rng(11), dedupe_duplicates=True,
    )
    sa = a.run(12)
    sb = b.run(12)
    assert [s.best_fitness for s in sa] == [s.best_fitness for s in sb]


def test_distinct_genomes_recorded_per_generation():
    engine = make_engine()
    stats = engine.step()
    assert 1 <= stats.distinct_genomes <= stats.evaluations
