"""GA individuals."""

import numpy as np
import pytest

from repro.ga import Individual


def test_genome_copied_defensively():
    genome = np.array([1, 2, 3])
    ind = Individual(genome)
    genome[0] = 99
    assert ind.genome[0] == 1


def test_validation():
    with pytest.raises(ValueError):
        Individual(np.array([]))
    with pytest.raises(ValueError):
        Individual(np.array([[1, 2]]))
    with pytest.raises(ValueError):
        Individual(np.array([-1, 0]))


def test_clone_drops_fitness():
    ind = Individual(np.array([1, 2]), fitness=3.5)
    clone = ind.clone()
    assert clone.fitness is None
    assert clone.same_genome(ind)
    assert not ind.evaluated or ind.fitness == 3.5


def test_evaluated_flag():
    ind = Individual(np.array([0]))
    assert not ind.evaluated
    ind.fitness = 1.0
    assert ind.evaluated


def test_same_genome():
    a = Individual(np.array([1, 2]))
    b = Individual(np.array([1, 2]), fitness=9.0)
    c = Individual(np.array([2, 1]))
    assert a.same_genome(b)
    assert not a.same_genome(c)


def test_repr_mentions_fitness():
    assert "unevaluated" in repr(Individual(np.array([1])))
    assert "2.000" in repr(Individual(np.array([1]), fitness=2.0))
