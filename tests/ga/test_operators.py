"""Crossover and mutation operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ga import (
    Individual,
    apply_mask,
    indexed_mutation,
    one_point_crossover,
    uniform_crossover,
    uniform_reset_mutation,
)


def parents():
    return Individual(np.zeros(8, dtype=int)), Individual(np.full(8, 5))


def test_uniform_crossover_preserves_multiset(rng):
    a, b = parents()
    ca, cb = uniform_crossover(a, b, rng)
    combined = np.sort(np.concatenate([ca.genome, cb.genome]))
    original = np.sort(np.concatenate([a.genome, b.genome]))
    assert np.array_equal(combined, original)
    assert not ca.evaluated and not cb.evaluated


def test_uniform_crossover_respects_mask(rng):
    a, b = parents()
    mask = np.zeros(8, dtype=bool)
    mask[0] = True
    for _ in range(10):
        ca, cb = uniform_crossover(a, b, rng, swap_probability=1.0, mask=mask)
        assert np.array_equal(ca.genome[1:], a.genome[1:])
        assert ca.genome[0] == 5 and cb.genome[0] == 0


def test_uniform_crossover_parents_untouched(rng):
    a, b = parents()
    uniform_crossover(a, b, rng, swap_probability=1.0)
    assert np.all(a.genome == 0) and np.all(b.genome == 5)


def test_one_point_crossover_is_one_cut(rng):
    a, b = parents()
    ca, cb = one_point_crossover(a, b, rng)
    switches = int(np.sum(np.abs(np.diff((ca.genome == 5).astype(int)))))
    assert switches <= 1


def test_crossover_length_mismatch_rejected(rng):
    with pytest.raises(ValueError):
        uniform_crossover(Individual(np.zeros(3, dtype=int)), Individual(np.zeros(4, dtype=int)), rng)


def test_indexed_mutation_uses_neighbor_fn(rng):
    ind = Individual(np.full(6, 3))
    out = indexed_mutation(ind, rng, neighbor=lambda pos, idx, r: idx + 1, per_gene_probability=1.0)
    assert np.all(out.genome == 4)
    assert np.all(ind.genome == 3)


def test_indexed_mutation_zero_probability_is_identity(rng):
    ind = Individual(np.arange(6))
    out = indexed_mutation(ind, rng, neighbor=lambda p, i, r: 0, per_gene_probability=0.0)
    assert out.same_genome(ind)


def test_uniform_reset_stays_in_range(rng):
    cards = [2, 4, 8, 16]
    ind = Individual(np.zeros(4, dtype=int))
    for _ in range(50):
        out = uniform_reset_mutation(ind, rng, cards, per_gene_probability=1.0)
        assert np.all(out.genome >= 0)
        assert np.all(out.genome < np.array(cards))


def test_uniform_reset_validates_cardinalities(rng):
    ind = Individual(np.zeros(3, dtype=int))
    with pytest.raises(ValueError):
        uniform_reset_mutation(ind, rng, [2, 2], per_gene_probability=0.5)
    with pytest.raises(ValueError):
        uniform_reset_mutation(ind, rng, [2, 2, 0], per_gene_probability=0.5)


def test_apply_mask_pins_unmasked_genes():
    offspring = Individual(np.array([9, 9, 9, 9]))
    incumbent = Individual(np.array([1, 2, 3, 4]))
    mask = np.array([True, False, True, False])
    out = apply_mask(offspring, incumbent, mask)
    assert np.array_equal(out.genome, [9, 2, 9, 4])


@settings(max_examples=30)
@given(st.integers(0, 2**31 - 1), st.floats(0.0, 1.0))
def test_mutation_respects_mask_property(seed, prob):
    rng = np.random.default_rng(seed)
    ind = Individual(np.zeros(10, dtype=int))
    mask = rng.random(10) < 0.5
    out = uniform_reset_mutation(
        ind, rng, [8] * 10, per_gene_probability=prob, mask=mask
    )
    assert np.all(out.genome[~mask] == 0)
