"""Tournament selection and elitism."""

import numpy as np
import pytest

from repro.ga import Individual, elites, tournament_pair, tournament_selection


def population(fitnesses):
    return [Individual(np.array([i]), fitness=f) for i, f in enumerate(fitnesses)]


def test_tournament_pair_returns_best_two_of_three(rng):
    pop = population([1.0, 2.0, 3.0])
    a, b = tournament_pair(pop, rng)
    assert a.fitness >= b.fitness
    assert {a.fitness, b.fitness} <= {1.0, 2.0, 3.0}


def test_tournament_pair_needs_three(rng):
    with pytest.raises(ValueError):
        tournament_pair(population([1.0, 2.0]), rng)


def test_tournament_pair_requires_fitness(rng):
    pop = population([1.0, 2.0, 3.0])
    pop[1].fitness = None
    with pytest.raises(ValueError):
        tournament_pair(pop, rng)


def test_tournament_pressure_favors_fit(rng):
    pop = population([0.0] * 9 + [10.0])
    wins = sum(
        tournament_pair(pop, rng)[0].fitness == 10.0 for _ in range(300)
    )
    # P(best in 3-of-10 sample) = 1 - C(9,3)/C(10,3) = 0.3
    assert 50 < wins < 130


def test_tournament_selection_count(rng):
    pop = population([1.0, 5.0, 3.0, 2.0])
    out = tournament_selection(pop, 10, rng, tournament_size=2)
    assert len(out) == 10
    assert all(ind in pop for ind in out)


def test_elites_sorted_best_first():
    pop = population([1.0, 5.0, 3.0])
    top = elites(pop, 2)
    assert [i.fitness for i in top] == [5.0, 3.0]
    assert elites(pop, 0) == []
    with pytest.raises(ValueError):
        elites(pop, -1)
