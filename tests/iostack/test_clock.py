"""Simulated tuning clock."""

import pytest

from repro.iostack.clock import SimulatedClock


def test_new_clock_is_zero():
    clock = SimulatedClock()
    assert clock.elapsed_seconds == 0.0
    assert clock.elapsed_minutes == 0.0
    assert clock.n_evaluations == 0


def test_charge_evaluation_adds_setup_overhead():
    clock = SimulatedClock(setup_overhead=30.0)
    clock.charge_evaluation(90.0)
    assert clock.elapsed_seconds == pytest.approx(120.0)
    assert clock.elapsed_minutes == pytest.approx(2.0)
    assert clock.n_evaluations == 1


def test_charges_accumulate():
    clock = SimulatedClock(setup_overhead=10.0)
    for _ in range(5):
        clock.charge_evaluation(50.0)
    assert clock.elapsed_seconds == pytest.approx(300.0)
    assert clock.n_evaluations == 5


def test_advance_does_not_count_as_evaluation():
    clock = SimulatedClock()
    clock.advance(12.5)
    assert clock.elapsed_seconds == pytest.approx(12.5)
    assert clock.n_evaluations == 0


def test_negative_durations_rejected():
    clock = SimulatedClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)
    with pytest.raises(ValueError):
        clock.charge_evaluation(-0.1)


def test_reset_zeroes_everything():
    clock = SimulatedClock()
    clock.charge_evaluation(100.0)
    clock.reset()
    assert clock.elapsed_seconds == 0.0
    assert clock.n_evaluations == 0


def test_checkpoint_returns_current_elapsed():
    clock = SimulatedClock(setup_overhead=0.0)
    clock.charge_evaluation(60.0)
    mark = clock.checkpoint()
    clock.charge_evaluation(60.0)
    assert clock.elapsed_seconds - mark == pytest.approx(60.0)
