"""Platform descriptions."""

import pytest

from repro.iostack.cluster import Platform, cori
from repro.iostack.cluster import testbed as make_testbed


def test_cori_matches_public_figures():
    p = cori()
    assert p.n_osts == 248
    assert p.procs_per_node == 32
    # ~700 GB/s aggregate peak (before the shared-utilization factor).
    assert 500e9 < p.n_osts * p.ost_bandwidth < 800e9


def test_scaled_to_changes_only_nodes():
    p = cori(4)
    q = p.scaled_to(500)
    assert q.n_nodes == 500
    assert q.ost_bandwidth == p.ost_bandwidth
    with pytest.raises(ValueError):
        p.scaled_to(0)


def test_total_procs():
    assert cori(4).total_procs == 128


def test_aggregate_ost_bandwidth():
    p = make_testbed()
    assert p.aggregate_ost_bandwidth == pytest.approx(
        p.n_osts * p.ost_bandwidth * p.ost_utilization
    )


def test_validation():
    good = make_testbed()
    import dataclasses

    with pytest.raises(ValueError):
        dataclasses.replace(good, n_osts=0)
    with pytest.raises(ValueError):
        dataclasses.replace(good, ost_utilization=1.5)
    with pytest.raises(ValueError):
        dataclasses.replace(good, lock_contention_coeff=-1)
    with pytest.raises(ValueError):
        dataclasses.replace(good, network_latency=-1e-6)
