"""Stack configurations and the H5Tuner XML override format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.iostack import TUNED_SPACE, StackConfiguration, from_xml, to_xml


def test_default_config_uses_library_defaults():
    cfg = StackConfiguration.default()
    assert cfg["striping_factor"] == 1
    assert cfg["romio_collective"] is False
    assert cfg.changed_parameters() == {}


def test_with_values_returns_new_config():
    cfg = StackConfiguration.default()
    tuned = cfg.with_values(striping_factor=64)
    assert tuned["striping_factor"] == 64
    assert cfg["striping_factor"] == 1
    assert tuned.changed_parameters() == {"striping_factor": 64}


def test_non_candidate_value_rejected():
    with pytest.raises(ValueError):
        StackConfiguration.default().with_values(striping_factor=7)


def test_unknown_parameter_rejected():
    with pytest.raises(KeyError):
        StackConfiguration(TUNED_SPACE, {"bogus": 1})


def test_mapping_protocol():
    cfg = StackConfiguration.default()
    assert len(cfg) == len(TUNED_SPACE)
    assert set(iter(cfg)) == set(TUNED_SPACE.names)


def test_equality_and_hash():
    a = StackConfiguration.default()
    b = StackConfiguration.default()
    c = a.with_values(cb_nodes=8)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_layer_slicing():
    cfg = StackConfiguration.default()
    lustre = cfg.layer("lustre")
    assert set(lustre) == {"striping_factor", "striping_unit"}
    hdf5 = cfg.layer("hdf5")
    assert "sieve_buf_size" in hdf5 and "cb_nodes" not in hdf5


def test_hamming_distance():
    a = StackConfiguration.default()
    b = a.with_values(cb_nodes=8, romio_collective=True)
    assert a.hamming_distance(b) == 2
    assert a.hamming_distance(a) == 0


def test_genome_roundtrip():
    rng = np.random.default_rng(0)
    cfg = StackConfiguration.random(rng)
    again = StackConfiguration.from_genome(TUNED_SPACE, cfg.genome())
    assert again == cfg


def test_normalized_in_unit_box():
    rng = np.random.default_rng(1)
    norm = StackConfiguration.random(rng).normalized()
    assert norm.min() >= 0.0 and norm.max() <= 1.0


# -- XML round trip -----------------------------------------------------------


def test_xml_roundtrip_default():
    cfg = StackConfiguration.default()
    assert from_xml(to_xml(cfg)) == cfg


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_xml_roundtrip_random(seed):
    cfg = StackConfiguration.random(np.random.default_rng(seed))
    assert from_xml(to_xml(cfg)) == cfg


def test_xml_structure_has_h5tuner_sections():
    text = to_xml(StackConfiguration.default())
    assert text.startswith("<Parameters>")
    for section in ("<HDF5>", "<MPI-IO>", "<Lustre>"):
        assert section in text


def test_xml_booleans_render_lowercase():
    text = to_xml(StackConfiguration.default().with_values(romio_collective=True))
    assert "<romio_collective>true</romio_collective>" in text


def test_partial_xml_fills_defaults():
    text = (
        "<Parameters><Lustre><striping_factor>16</striping_factor>"
        "</Lustre></Parameters>"
    )
    cfg = from_xml(text)
    assert cfg["striping_factor"] == 16
    assert cfg["cb_nodes"] == TUNED_SPACE["cb_nodes"].default


def test_bad_xml_rejected():
    with pytest.raises(ValueError):
        from_xml("<Wrong/>")
    with pytest.raises(ValueError):
        from_xml("<Parameters><Nope><x>1</x></Nope></Parameters>")
    with pytest.raises(KeyError):
        from_xml("<Parameters><HDF5><bogus>1</bogus></HDF5></Parameters>")
