"""Cross-parameter constraint registry: strict validation, deterministic
repair, and the algebraic properties the GA relies on (idempotence,
order-stability, RNG-neutrality)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ga import Individual, repair_individual
from repro.iostack import (
    StackConfiguration,
    TUNED_SPACE,
    cori,
)
from repro.iostack.parameters import (
    ConstraintContext,
    ConstraintRegistry,
    ConstraintViolationError,
    default_constraints,
)

pytestmark = pytest.mark.guardrails

# A deliberately tight context: fewer OSTs than the largest stripe
# candidate and fewer ranks than the largest cb_nodes candidate, so the
# upper-bound rules actually bite.
TIGHT = ConstraintContext(n_osts=24, n_procs=64)
REGISTRY = default_constraints(context=TIGHT)


def random_values(seed: int) -> dict:
    config = StackConfiguration.random(np.random.default_rng(seed))
    return {name: config[name] for name in config}


# ---------------------------------------------------------------------------
# registry basics
# ---------------------------------------------------------------------------


def test_default_registry_has_the_documented_rules():
    names = [c.name for c in REGISTRY]
    assert "stripe-vs-osts" in names
    assert "aggregators-vs-ranks" in names
    assert "alignment-divides-stripe" in names
    assert "stripe-divides-cb" in names


def test_unbound_context_skips_scale_rules():
    """With no platform facts, the upper-bound rules never reject."""
    unbound = default_constraints(context=ConstraintContext())
    default = StackConfiguration.default()
    values = {name: default[name] for name in default}
    values["striping_factor"] = max(
        v for v in TUNED_SPACE["striping_factor"].values
    )
    violations = unbound.violations(values)
    assert all(v.constraint != "stripe-vs-osts" for v in violations)


def test_context_rejects_nonsense_scales():
    with pytest.raises(ValueError):
        ConstraintContext(n_osts=0)
    with pytest.raises(ValueError):
        ConstraintContext(n_procs=-4)


def test_context_for_run_reads_platform_and_workload():
    platform = cori(4)

    class W:
        n_procs = 128

    ctx = ConstraintContext.for_run(platform, W())
    assert ctx.n_osts == platform.n_osts
    assert ctx.n_procs == 128


# ---------------------------------------------------------------------------
# strict validation
# ---------------------------------------------------------------------------


def test_validate_raises_with_actionable_messages():
    default = StackConfiguration.default()
    values = {name: default[name] for name in default}
    values["striping_factor"] = max(
        v for v in TUNED_SPACE["striping_factor"].values if v > TIGHT.n_osts
    )
    with pytest.raises(ConstraintViolationError) as err:
        REGISTRY.validate(values)
    message = str(err.value)
    assert "stripe-vs-osts" in message
    assert "repair would set striping_factor=" in message
    assert err.value.violations[0].parameter == "striping_factor"


def test_clean_configuration_validates_silently():
    config = StackConfiguration.default()
    config.validate(REGISTRY)  # must not raise
    assert config.violations(REGISTRY) == []


def test_repaired_returns_same_object_when_clean():
    config = StackConfiguration.default().repaired(REGISTRY)
    assert config.repaired(REGISTRY) is config


# ---------------------------------------------------------------------------
# repair properties (the GA's contract)
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_repair_is_validate_clean(seed):
    """repair() output always passes strict validation."""
    repaired = REGISTRY.repair(random_values(seed))
    assert REGISTRY.violations(repaired) == []


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_repair_is_idempotent(seed):
    fixed = REGISTRY.repair(random_values(seed))
    assert REGISTRY.repair(fixed) == fixed


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_repair_is_deterministic(seed):
    values = random_values(seed)
    assert REGISTRY.repair(values) == REGISTRY.repair(dict(values))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
def test_repair_fixed_point_is_order_stable(seed, shuffle_seed):
    """Shuffling the constraint order never changes the fixed point
    (each repair only lowers its parameter, so chaotic iteration of the
    rules converges to one projection)."""
    values = random_values(seed)
    baseline = REGISTRY.repair(values)
    rules = list(REGISTRY)
    random.Random(shuffle_seed).shuffle(rules)
    shuffled = ConstraintRegistry(TUNED_SPACE, rules, TIGHT)
    assert shuffled.repair(values) == baseline


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_repair_only_touches_constrained_parameters(seed):
    values = random_values(seed)
    constrained = {p for c in REGISTRY for p in c.parameters()}
    repaired = REGISTRY.repair(values)
    for name, value in values.items():
        if name not in constrained:
            assert repaired[name] == value


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_repaired_values_stay_on_the_candidate_grid(seed):
    repaired = REGISTRY.repair(random_values(seed))
    for name, value in repaired.items():
        assert value in TUNED_SPACE[name].values


# ---------------------------------------------------------------------------
# genome-level repair (GA integration)
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_repair_genome_matches_value_repair(seed):
    rng = np.random.default_rng(seed)
    genome = np.array(
        [rng.integers(0, p.cardinality) for p in TUNED_SPACE], dtype=np.int64
    )
    repaired = REGISTRY.repair_genome(genome)
    assert TUNED_SPACE.decode(repaired) == REGISTRY.repair(TUNED_SPACE.decode(genome))


def test_repair_individual_is_identity_on_clean_genomes():
    """Clean individuals come back as the *same object* (fitness kept,
    no RNG consumed) -- the property that keeps constraint-armed GA runs
    bit-identical when variation happens to produce valid children."""
    config = StackConfiguration.default().repaired(REGISTRY)
    ind = Individual(config.genome())
    assert repair_individual(ind, REGISTRY) is ind


def test_repair_individual_projects_dirty_genomes():
    default = StackConfiguration.default()
    values = {name: default[name] for name in default}
    values["striping_factor"] = max(
        v for v in TUNED_SPACE["striping_factor"].values
    )
    ind = Individual(TUNED_SPACE.encode(values))
    fixed = repair_individual(ind, REGISTRY)
    assert REGISTRY.violations(TUNED_SPACE.decode(fixed.genome)) == []
