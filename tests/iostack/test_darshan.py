"""Darshan-style report counters."""

import pytest

from repro.iostack.darshan import DarshanReport, PhaseRecord


def make_report():
    r = DarshanReport()
    r.app_bytes_written = 1000
    r.app_bytes_read = 3000
    r.app_write_ops = 10
    r.app_read_ops = 30
    r.write_seconds = 2.0
    r.read_seconds = 3.0
    r.meta_seconds = 0.5
    r.compute_seconds = 4.0
    r.overhead_seconds = 0.5
    return r


def test_runtime_is_sum_of_components():
    r = make_report()
    assert r.io_seconds == pytest.approx(5.0)
    assert r.runtime_seconds == pytest.approx(10.0)


def test_bandwidths():
    r = make_report()
    assert r.write_bandwidth == pytest.approx(500.0)
    assert r.read_bandwidth == pytest.approx(1000.0)
    assert r.write_bandwidth_mbps == pytest.approx(500.0 / 1e6)


def test_zero_traffic_bandwidth_is_zero():
    r = DarshanReport()
    assert r.write_bandwidth == 0.0
    assert r.read_bandwidth == 0.0
    assert r.alpha == 0.0


def test_alpha_is_write_byte_fraction():
    r = make_report()
    assert r.alpha == pytest.approx(0.25)


def test_phase_records_append():
    r = make_report()
    rec = PhaseRecord(
        name="p", bytes_written=1, bytes_read=2, write_ops=3, read_ops=4,
        io_seconds=0.1, meta_seconds=0.2, compute_seconds=0.3,
    )
    r.record_phase(rec)
    assert r.phases == [rec]


def test_summary_is_flat_floats():
    summary = make_report().summary()
    assert all(isinstance(v, float) for v in summary.values())
    assert summary["runtime_seconds"] == pytest.approx(10.0)
