"""The persistent disk backend of the evaluation cache.

Three contracts are pinned here:

* **Exact serialization** -- any :class:`StackTrace` round-trips through
  the fixed-dtype ``.npz`` layout bit-for-bit (property-based, so the
  layout survives odd names, extreme floats and empty phases).
* **Key hygiene** -- an entry's content address covers everything that
  makes serving it safe: config, workload, platform, and the fault-plan
  / constraint-registry fingerprints.  The stale-entry regression tests
  prove a trace written under one plan is never served under another.
* **Degradation** -- corrupt entries, schema bumps and full directories
  degrade to misses and evictions, never to broken evaluations.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.iostack import (
    EvaluationCache,
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    cori,
)
from repro.iostack.diskcache import (
    DISK_SCHEMA_VERSION,
    DiskCacheBackend,
    trace_from_arrays,
    trace_to_arrays,
)
from repro.iostack.faults import FaultPlan
from repro.iostack.parameters import TUNED_SPACE
from repro.iostack.simulator import PhaseTrace, StackTrace, StreamTrace
from repro.workloads import flash, vpic

pytestmark = pytest.mark.offline_fastpath


# -- hypothesis strategies ----------------------------------------------------

# numpy's fixed-width unicode dtype strips trailing NULs, so names must
# not contain them; surrogates cannot be encoded at all.
_names = st.text(
    st.characters(min_codepoint=1, exclude_categories=("Cs",)),
    min_size=0,
    max_size=12,
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_counts = st.integers(min_value=0, max_value=2**62)


def _streams():
    return st.builds(
        StreamTrace,
        op=st.sampled_from(["read", "write"]),
        base_seconds=_floats,
        total_bytes=_counts,
        total_ops=_counts,
    )


def _phases():
    return st.builds(
        PhaseTrace,
        name=_names,
        bytes_written=_counts,
        bytes_read=_counts,
        write_ops=_counts,
        read_ops=_counts,
        meta_ops=_counts,
        overhead_seconds=_floats,
        base_meta_seconds=_floats,
        compute_seconds=_floats,
        streams=st.lists(_streams(), max_size=3).map(tuple),
    )


def _traces():
    return st.builds(
        StackTrace,
        workload_name=_names,
        phases=st.lists(_phases(), max_size=4).map(tuple),
    )


@settings(max_examples=40, deadline=None)
@given(_traces())
def test_trace_arrays_roundtrip_exactly(trace):
    assert trace_from_arrays(trace_to_arrays(trace)) == trace


@settings(max_examples=25, deadline=None)
@given(_traces())
def test_trace_roundtrips_through_npz_bytes(trace):
    """The real wire format: savez + load, not just the array dicts."""
    buf = io.BytesIO()
    np.savez(buf, **trace_to_arrays(trace))
    buf.seek(0)
    with np.load(buf) as archive:
        data = {name: archive[name] for name in archive.files}
    assert trace_from_arrays(data) == trace


def test_schema_mismatch_is_rejected():
    trace = StackTrace(workload_name="w", phases=())
    data = trace_to_arrays(trace)
    data["ints"] = data["ints"].copy()
    data["ints"][0] = DISK_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        trace_from_arrays(data)
    with pytest.raises(ValueError, match="missing member"):
        trace_from_arrays({"ints": data["ints"]})


# -- backend store/load -------------------------------------------------------


@pytest.fixture
def sim():
    return IOStackSimulator(cori(4), NoiseModel(seed=3))


def test_backend_roundtrips_a_real_trace(tmp_path, sim):
    backend = DiskCacheBackend(tmp_path)
    workload = flash()
    trace = sim.trace(workload, StackConfiguration.default())
    key = backend.entry_key(sim.platform, workload, StackConfiguration.default())

    assert backend.load(key) is None
    backend.store(key, trace)
    assert backend.load(key) == trace
    assert len(backend) == 1
    stats = backend.stats()
    assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
    # Replaying the loaded trace is bit-identical to replaying the
    # fresh one under the same noise draws.
    quiet = IOStackSimulator(cori(4), NoiseModel.quiet())
    a = quiet.evaluate_trace(trace, repeats=2)
    b = quiet.evaluate_trace(backend.load(key), repeats=2)
    assert a.perf_mbps == b.perf_mbps and a.report == b.report


def test_corrupt_entry_degrades_to_a_miss(tmp_path, sim):
    backend = DiskCacheBackend(tmp_path)
    key = backend.entry_key(
        sim.platform, flash(), StackConfiguration.default()
    )
    (tmp_path / f"{key}.npz").write_bytes(b"this is not an npz archive")
    assert backend.load(key) is None
    stats = backend.stats()
    assert stats.misses == 1 and stats.errors == 1 and stats.hits == 0


def test_lru_eviction_keeps_the_freshest_entries(tmp_path, sim):
    import os
    import time

    backend = DiskCacheBackend(tmp_path, max_entries=3)
    trace = sim.trace(flash(), StackConfiguration.default())
    rng = np.random.default_rng(0)
    keys = []
    now = time.time()
    for i in range(5):
        key = backend.entry_key(
            sim.platform, flash(), StackConfiguration.random(rng)
        )
        keys.append(key)
        backend.store(key, trace)
        # Backdate each entry so LRU order is unambiguous on coarse
        # clocks (the youngest entry keeps the largest mtime).
        os.utime(tmp_path / f"{key}.npz", (now - 10 + i, now - 10 + i))
    assert len(backend) == 3
    assert backend.evictions >= 2
    assert backend.load(keys[0]) is None  # stalest: evicted
    assert backend.load(keys[-1]) == trace  # freshest: kept


# -- content-address hygiene --------------------------------------------------


def test_entry_key_is_stable_and_sensitive(sim):
    workload = flash()
    config = StackConfiguration.default()
    base = DiskCacheBackend.entry_key(sim.platform, workload, config)
    assert base == DiskCacheBackend.entry_key(sim.platform, workload, config)

    other_config = config.with_values(striping_factor=64)
    variants = [
        DiskCacheBackend.entry_key(sim.platform, workload, other_config),
        DiskCacheBackend.entry_key(sim.platform, vpic(), config),
        DiskCacheBackend.entry_key(cori(8), workload, config),
        DiskCacheBackend.entry_key(
            sim.platform, workload, config, fault_fingerprint="abc"
        ),
        DiskCacheBackend.entry_key(
            sim.platform, workload, config, constraint_fingerprint="abc"
        ),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_stale_entry_never_crosses_fault_plans(tmp_path):
    """Regression: a trace persisted by a fault-free run must never
    satisfy a lookup from a fault-injected run (serving it would skip
    the plan's per-attempt fault decision), and vice versa."""
    workload = flash()
    config = StackConfiguration.default()
    plain = IOStackSimulator(cori(4), NoiseModel(seed=3))
    faulted = IOStackSimulator(
        cori(4),
        NoiseModel(seed=3),
        faults=FaultPlan(seed=9, straggler_rate=0.5),
    )

    writer = EvaluationCache(backend=DiskCacheBackend(tmp_path))
    writer.get_trace(plain, workload, config)
    assert writer.backend.stores == 1

    # Fresh cache (cold memory), same directory, fault-injected run.
    reader = EvaluationCache(backend=DiskCacheBackend(tmp_path))
    reader.get_trace(faulted, workload, config)
    assert reader.backend.hits == 0  # the plain entry was NOT served
    assert reader.backend.stores == 1  # a plan-scoped entry was written
    assert len(reader.backend) == 2

    # Same plan fingerprint -> the plan-scoped entry is shareable.
    rereader = EvaluationCache(backend=DiskCacheBackend(tmp_path))
    same_plan = IOStackSimulator(
        cori(4),
        NoiseModel(seed=3),
        faults=FaultPlan(seed=9, straggler_rate=0.5),
    )
    rereader.get_trace(same_plan, workload, config)
    assert rereader.backend.hits == 1 and rereader.backend.stores == 0


def test_stale_entry_never_crosses_constraint_registries(tmp_path):
    """Regression: the constraint fingerprint scopes entries the same
    way the fault plan does."""
    from repro.iostack.parameters import ConstraintRegistry, default_constraints

    workload = flash()
    config = StackConfiguration.default()
    sim = IOStackSimulator(cori(4), NoiseModel(seed=3))
    registry = ConstraintRegistry(TUNED_SPACE, default_constraints(TUNED_SPACE))

    unconstrained = EvaluationCache(backend=DiskCacheBackend(tmp_path))
    unconstrained.get_trace(sim, workload, config)

    constrained = EvaluationCache(backend=DiskCacheBackend(tmp_path))
    constrained.constraint_fingerprint = registry.fingerprint()
    constrained.get_trace(sim, workload, config)
    assert constrained.backend.hits == 0
    assert constrained.backend.stores == 1
    assert len(constrained.backend) == 2


def test_disk_hit_is_bit_identical_to_a_cold_run(tmp_path):
    """The cache contract extends to disk: a run served entirely from a
    warm directory produces the same numbers as a cold one."""
    workload = flash()
    configs = [StackConfiguration.default()] + [
        StackConfiguration.random(np.random.default_rng(i)) for i in range(3)
    ]

    def run(cache):
        sim = IOStackSimulator(cori(4), NoiseModel(seed=11))
        return [
            cache.evaluate(sim, workload, c, repeats=3).perf_mbps for c in configs
        ]

    cold = run(EvaluationCache(backend=DiskCacheBackend(tmp_path)))
    warm_cache = EvaluationCache(backend=DiskCacheBackend(tmp_path))
    warm = run(warm_cache)
    assert warm == cold
    assert warm_cache.backend.hits == len(configs)
    assert warm_cache.backend.stores == 0
