"""Config-keyed memoization of stack evaluations."""

import numpy as np
import pytest

from repro.iostack import (
    EvaluationCache,
    EvaluationStats,
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    cori,
    workload_fingerprint,
)
from repro.iostack.evalcache import CacheStats
from tests.conftest import make_workload


@pytest.fixture
def sim():
    return IOStackSimulator(cori(2), NoiseModel(seed=11))


def random_configs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [StackConfiguration.random(rng) for _ in range(n)]


# -- workload fingerprints -----------------------------------------------------


def test_fingerprint_is_stable_per_object():
    w = make_workload()
    assert workload_fingerprint(w) == workload_fingerprint(w)


def test_structurally_equal_workloads_share_a_fingerprint():
    assert workload_fingerprint(make_workload()) == workload_fingerprint(
        make_workload()
    )


def test_different_workloads_fingerprint_differently():
    a = make_workload()
    b = make_workload(request_size=4 * 1024 * 1024)
    c = make_workload(n_procs=128)
    assert workload_fingerprint(a) != workload_fingerprint(b)
    assert workload_fingerprint(a) != workload_fingerprint(c)


def test_fingerprint_is_hashable():
    hash(workload_fingerprint(make_workload()))


# -- cache mechanics -----------------------------------------------------------


def test_miss_then_hit(sim):
    cache = EvaluationCache()
    w = make_workload()
    config = StackConfiguration.default()
    assert cache.lookup(sim.platform, w, config) is None
    trace = sim.trace(w, config)
    cache.store(sim.platform, w, config, trace)
    assert cache.lookup(sim.platform, w, config) is trace
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5


def test_distinct_configs_do_not_collide(sim):
    cache = EvaluationCache()
    w = make_workload()
    a, b = random_configs(2)
    cache.store(sim.platform, w, a, sim.trace(w, a))
    assert cache.lookup(sim.platform, w, b) is None


def test_distinct_workloads_do_not_collide(sim):
    cache = EvaluationCache()
    config = StackConfiguration.default()
    small = make_workload()
    big = make_workload(n_procs=128)
    cache.store(sim.platform, small, config, sim.trace(small, config))
    assert cache.lookup(sim.platform, big, config) is None


def test_lru_eviction_order(sim):
    cache = EvaluationCache(maxsize=2)
    w = make_workload()
    a, b, c = random_configs(3)
    for config in (a, b):
        cache.store(sim.platform, w, config, sim.trace(w, config))
    cache.lookup(sim.platform, w, a)  # refresh a: b is now LRU
    cache.store(sim.platform, w, c, sim.trace(w, c))
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.lookup(sim.platform, w, a) is not None
    assert cache.lookup(sim.platform, w, b) is None  # evicted
    assert cache.lookup(sim.platform, w, c) is not None


def test_clear_drops_entries_keeps_counters(sim):
    cache = EvaluationCache()
    w = make_workload()
    config = StackConfiguration.default()
    cache.get_trace(sim, w, config)
    cache.clear()
    assert len(cache) == 0
    assert cache.misses == 1
    assert cache.lookup(sim.platform, w, config) is None


def test_maxsize_validation():
    with pytest.raises(ValueError):
        EvaluationCache(maxsize=0)


def test_stats_snapshot(sim):
    cache = EvaluationCache(maxsize=8)
    w = make_workload()
    config = StackConfiguration.default()
    cache.get_trace(sim, w, config)
    cache.get_trace(sim, w, config)
    stats = cache.stats()
    assert stats == CacheStats(hits=1, misses=1, evictions=0, size=1, maxsize=8)
    assert stats.lookups == 2
    assert stats.hit_rate == 0.5
    assert CacheStats().hit_rate == 0.0


# -- cached evaluation ---------------------------------------------------------


def test_get_trace_builds_once(sim):
    cache = EvaluationCache()
    w = make_workload()
    config = StackConfiguration.default()
    first = cache.get_trace(sim, w, config)
    second = cache.get_trace(sim, w, config)
    assert second is first
    assert sim.traces_built == 1


def test_cached_evaluate_is_bit_identical_under_noise():
    w = make_workload()
    config = StackConfiguration.default()
    cached_sim = IOStackSimulator(cori(2), NoiseModel(seed=21))
    plain_sim = IOStackSimulator(cori(2), NoiseModel(seed=21))
    cache = EvaluationCache()
    for _ in range(4):  # first round misses, later rounds hit
        a = cache.evaluate(cached_sim, w, config, repeats=3)
        b = plain_sim.evaluate(w, config, repeats=3)
        assert a.perf_mbps == b.perf_mbps
        assert a.write_bandwidth_mbps == b.write_bandwidth_mbps
        assert a.read_bandwidth_mbps == b.read_bandwidth_mbps
        assert a.charged_seconds == b.charged_seconds
        assert a.report == b.report
    assert cache.hits == 3
    assert cached_sim.traces_built == 1
    assert plain_sim.traces_built == 4
    # both consumed the noise stream identically
    assert cached_sim.noise._counter == plain_sim.noise._counter


# -- EvaluationStats -----------------------------------------------------------


def test_evaluation_stats_derived_fields():
    stats = EvaluationStats(
        evaluations=10,
        cache_hits=6,
        cache_misses=4,
        traces_built=4,
        trace_replays=30,
    )
    assert stats.cache_hit_rate == 0.6
    assert stats.trace_reuse == 26
    assert "10 evaluations" in stats.describe()
    assert "60.0%" in stats.describe()
    assert EvaluationStats().cache_hit_rate == 0.0
    assert EvaluationStats().trace_reuse == 0


def test_evaluation_stats_degraded_flag_and_resilience_line():
    assert not EvaluationStats().degraded
    for field in ("retries", "timeouts", "quarantined", "fallbacks",
                  "faults_injected"):
        assert EvaluationStats(**{field: 1}).degraded
    line = EvaluationStats(
        retries=2, timeouts=1, quarantined=3, fallbacks=4, faults_injected=5
    ).describe_resilience()
    assert line == ("5 faults injected, 2 retries, 1 timeouts, "
                    "3 quarantined, 4 serial fallbacks")


# -- edge paths ----------------------------------------------------------------


def test_fingerprint_skips_memo_for_non_weakrefable_workloads():
    """Objects without weakref support (e.g. slotted ad-hoc workload
    shims) hit the TypeError branch: fingerprinting still works, it just
    recomputes per call instead of memoizing."""

    class SlottedWorkload:
        __slots__ = ("name", "n_procs", "n_nodes", "_phases")

        def __init__(self, phases):
            self.name = "slotted"
            self.n_procs = 4
            self.n_nodes = 1
            self._phases = phases

        def phases(self):
            return self._phases

    with pytest.raises(TypeError):
        import weakref

        weakref.ref(SlottedWorkload(()))  # the premise of this test

    w = SlottedWorkload(tuple(make_workload().phases()))
    first = workload_fingerprint(w)
    assert workload_fingerprint(w) == first
    assert hash(first)
    # a structurally equal twin agrees, a different one does not
    assert workload_fingerprint(
        SlottedWorkload(tuple(make_workload().phases()))
    ) == first
    assert workload_fingerprint(SlottedWorkload(())) != first


def test_eviction_pressure_never_grows_past_maxsize(sim):
    cache = EvaluationCache(maxsize=3)
    w = make_workload()
    configs = random_configs(10, seed=3)
    for config in configs:
        cache.store(sim.platform, w, config, sim.trace(w, config))
        assert len(cache) <= 3
    assert cache.evictions == 7
    # only the three most recently stored survive
    for config in configs[:-3]:
        assert cache.lookup(sim.platform, w, config) is None
    for config in configs[-3:]:
        assert cache.lookup(sim.platform, w, config) is not None


def test_restoring_same_key_does_not_evict(sim):
    cache = EvaluationCache(maxsize=2)
    w = make_workload()
    a, b = random_configs(2)
    for config in (a, b, a, a):
        cache.store(sim.platform, w, config, sim.trace(w, config))
    assert len(cache) == 2 and cache.evictions == 0


def test_faulted_traces_are_never_stored_or_served():
    """A faulted attempt raises before the trace exists, so the cache
    can never memoize -- and never serve -- a partial trace."""
    from repro.iostack import FaultPlan, PoisonedConfigError

    plan = FaultPlan(seed=0)
    config = StackConfiguration.default()
    plan.poison(config)
    sim = IOStackSimulator(cori(2), NoiseModel(seed=11), faults=plan)
    cache = EvaluationCache()
    w = make_workload()
    with pytest.raises(PoisonedConfigError):
        cache.get_trace(sim, w, config)
    assert len(cache) == 0
    assert cache.lookup(sim.platform, w, config) is None
    # once the fault clears, a real trace is built and cached normally
    sim.faults = None
    trace = cache.get_trace(sim, w, config)
    assert cache.lookup(sim.platform, w, config) is trace
