"""Deterministic fault injection: schedules, hooks, state round-trips."""

import threading

import numpy as np
import pytest

from repro.iostack import (
    DegradedWindow,
    FaultPlan,
    IOStackSimulator,
    NoiseModel,
    PoisonedConfigError,
    StackConfiguration,
    TransientFaultError,
    config_digest,
    cori,
)
from repro.iostack.clock import SimulatedClock
from tests.conftest import make_workload


def random_configs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [StackConfiguration.random(rng) for _ in range(n)]


# -- config digests ------------------------------------------------------------


def test_digest_is_stable_and_distinguishes_configs():
    a, b = random_configs(2)
    assert config_digest(a) == config_digest(a)
    assert config_digest(a) != config_digest(b)


def test_digest_known_value_is_process_stable():
    # Pinned: the digest keys journals and fault schedules across
    # process restarts, so it must never depend on PYTHONHASHSEED.
    digest = config_digest(StackConfiguration.default())
    assert digest == config_digest(StackConfiguration.default())
    assert len(digest) == 16
    int(digest, 16)  # hex


# -- degraded windows ----------------------------------------------------------


def test_window_covers_half_open_interval():
    w = DegradedWindow(10.0, 20.0, 2.0)
    assert not w.covers(9.99)
    assert w.covers(10.0)
    assert w.covers(19.99)
    assert not w.covers(20.0)


def test_window_parse_round_trip():
    assert DegradedWindow.parse("5:12.5:3") == DegradedWindow(5.0, 12.5, 3.0)


@pytest.mark.parametrize("spec", ["5:12", "a:b:c", "10:5:2", "0:10:0.5"])
def test_window_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        DegradedWindow.parse(spec)


# -- transient error schedule --------------------------------------------------


def faulted_attempts(plan, config, n):
    out = []
    for attempt in range(n):
        try:
            plan.check_trace(config)
            out.append(False)
        except TransientFaultError:
            out.append(True)
    return out


def test_transient_schedule_is_seed_deterministic():
    config = StackConfiguration.default()
    a = faulted_attempts(FaultPlan(seed=7, transient_error_rate=0.5), config, 32)
    b = faulted_attempts(FaultPlan(seed=7, transient_error_rate=0.5), config, 32)
    assert a == b
    assert any(a) and not all(a)


def test_transient_schedule_differs_across_seeds():
    config = StackConfiguration.default()
    a = faulted_attempts(FaultPlan(seed=1, transient_error_rate=0.5), config, 64)
    b = faulted_attempts(FaultPlan(seed=2, transient_error_rate=0.5), config, 64)
    assert a != b


def test_transient_schedule_is_per_config():
    x, y = random_configs(2)
    plan = FaultPlan(seed=3, transient_error_rate=0.5)
    assert faulted_attempts(plan, x, 32) != faulted_attempts(plan, y, 32)


def test_transient_schedule_is_thread_order_independent():
    """The decision for (config, attempt) must not depend on which
    thread got there first -- batch evaluation uses a thread pool."""
    configs = random_configs(8, seed=5)

    def schedule(n_threads):
        plan = FaultPlan(seed=9, transient_error_rate=0.4)
        outcomes = {}

        def probe(config):
            for attempt in range(4):
                try:
                    plan.check_trace(config)
                    outcomes[(config_digest(config), attempt)] = False
                except TransientFaultError:
                    outcomes[(config_digest(config), attempt)] = True

        threads = [
            threading.Thread(target=probe, args=(c,)) for c in configs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return outcomes

    assert schedule(8) == schedule(8)


def test_zero_rate_never_faults_and_makes_no_draws():
    plan = FaultPlan(seed=0, transient_error_rate=0.0)
    config = StackConfiguration.default()
    assert faulted_attempts(plan, config, 16) == [False] * 16
    # rate 0 short-circuits: not even attempt counters advance
    assert plan.get_state()["trace_attempts"] == {}


# -- poisoned configurations ---------------------------------------------------


def test_poisoned_config_always_fails():
    plan = FaultPlan(seed=0)
    bad, good = random_configs(2)
    plan.poison(bad)
    assert plan.is_poisoned(bad) and not plan.is_poisoned(good)
    for _ in range(5):
        with pytest.raises(PoisonedConfigError):
            plan.check_trace(bad)
    plan.check_trace(good)  # unaffected


# -- straggler / window slowdowns ----------------------------------------------


def test_straggler_stream_is_deterministic_and_counted():
    a = FaultPlan(seed=4, straggler_rate=0.3, straggler_slowdown=5.0)
    b = FaultPlan(seed=4, straggler_rate=0.3, straggler_slowdown=5.0)
    sa = [a.replay_slowdown() for _ in range(64)]
    sb = [b.replay_slowdown() for _ in range(64)]
    assert sa == sb
    assert set(sa) == {1.0, 5.0}
    assert a.stragglers_injected == sum(1 for s in sa if s != 1.0)


def test_inactive_plan_returns_exactly_one():
    plan = FaultPlan(seed=0)
    assert not plan.active
    assert [plan.replay_slowdown() for _ in range(8)] == [1.0] * 8


def test_degraded_window_follows_the_clock():
    clock = SimulatedClock(setup_overhead=0.0)
    plan = FaultPlan(seed=0, degraded_windows=(DegradedWindow(1.0, 2.0, 3.0),))
    plan.attach_clock(clock)
    assert plan.replay_slowdown() == 1.0  # t=0, before the window
    clock.advance(90.0)  # t=1.5 min, inside
    assert plan.replay_slowdown() == 3.0
    clock.advance(60.0)  # t=2.5 min, past
    assert plan.replay_slowdown() == 1.0


# -- simulator hooks -----------------------------------------------------------


def test_inactive_plan_is_bit_identical_to_no_plan():
    w = make_workload()
    config = StackConfiguration.default()
    bare = IOStackSimulator(cori(2), NoiseModel(seed=11))
    planned = IOStackSimulator(cori(2), NoiseModel(seed=11), faults=FaultPlan())
    assert bare.evaluate(w, config).perf_mbps == planned.evaluate(w, config).perf_mbps


def test_trace_fault_raises_before_any_work():
    sim = IOStackSimulator(
        cori(2), NoiseModel(seed=11), faults=FaultPlan(seed=0)
    )
    config = StackConfiguration.default()
    sim.faults.poison(config)
    built = sim.traces_built
    with pytest.raises(PoisonedConfigError):
        sim.trace(make_workload(), config)
    assert sim.traces_built == built  # no partial trace was constructed


def test_straggler_lowers_bandwidth_and_lengthens_runtime():
    w = make_workload()
    config = StackConfiguration.default()
    bare = IOStackSimulator(cori(2), NoiseModel.quiet())
    trace = bare.trace(w, config)
    clean = bare.evaluate_trace(trace, repeats=1)
    slowed_sim = IOStackSimulator(
        cori(2),
        NoiseModel.quiet(),
        faults=FaultPlan(seed=0, straggler_rate=0.999, straggler_slowdown=4.0),
    )
    slow = slowed_sim.evaluate_trace(trace, repeats=1)
    assert slow.perf_mbps < clean.perf_mbps
    assert slow.charged_seconds > clean.charged_seconds


# -- journal state -------------------------------------------------------------


def test_state_round_trip_resumes_the_streams():
    config = StackConfiguration.default()
    a = FaultPlan(seed=6, transient_error_rate=0.4, straggler_rate=0.4)
    prefix = faulted_attempts(a, config, 10)
    prefix_slow = [a.replay_slowdown() for _ in range(10)]
    state = a.get_state()

    b = FaultPlan(seed=6, transient_error_rate=0.4, straggler_rate=0.4)
    b.set_state(state)
    assert b.get_state() == state

    # both continue identically from the checkpoint
    assert faulted_attempts(a, config, 10) == faulted_attempts(b, config, 10)
    assert [a.replay_slowdown() for _ in range(10)] == [
        b.replay_slowdown() for _ in range(10)
    ]
    assert prefix and prefix_slow  # the prefix actually exercised both streams


def test_reset_rewinds_to_the_start():
    config = StackConfiguration.default()
    plan = FaultPlan(seed=8, transient_error_rate=0.5, straggler_rate=0.5)
    first = faulted_attempts(plan, config, 16)
    plan.reset()
    assert plan.get_state() == {
        "replay_counter": 0,
        "trace_attempts": {},
        "transient_errors_injected": 0,
        "stragglers_injected": 0,
    }
    assert faulted_attempts(plan, config, 16) == first
