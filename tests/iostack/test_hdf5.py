"""HDF5 layer model: chunk cache, sieving, alignment, metadata."""

import pytest

from repro.iostack.cluster import testbed as make_testbed
from repro.iostack.hdf5 import apply_hdf5
from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream
from repro.iostack import StackConfiguration

MiB = 1024 * 1024
PLATFORM = make_testbed()


def hdf5_values(**overrides):
    values = StackConfiguration.default().layer("hdf5")
    values.update(overrides)
    return values


def chunked_phase(
    request_size, chunk_size=MiB, working_set=64 * MiB, op="write", chunked=True
):
    stream = RequestStream.uniform(op, request_size, 1000, 8, contiguity=0.8)
    return IOPhase(
        name="p",
        compute_seconds=0.0,
        data=(stream,),
        metadata=None,
        chunked=chunked,
        chunk_size=chunk_size,
        working_set_per_proc=working_set,
    )


def test_small_chunk_cache_amplifies_partial_chunk_writes():
    phase = chunked_phase(request_size=64 * 1024)
    small = apply_hdf5(phase, hdf5_values(chunk_cache_size=MiB), PLATFORM)
    big = apply_hdf5(phase, hdf5_values(chunk_cache_size=1024 * MiB), PLATFORM)
    small_bytes = sum(s.total_bytes for s in small.data)
    big_bytes = sum(s.total_bytes for s in big.data)
    assert small_bytes > phase.bytes_written  # read-modify-write inflation
    assert big_bytes == phase.bytes_written  # fully cached: no inflation


def test_full_cache_coalesces_into_chunks():
    phase = chunked_phase(request_size=64 * 1024, working_set=MiB)
    out = apply_hdf5(phase, hdf5_values(chunk_cache_size=1024 * MiB), PLATFORM)
    assert out.data[0].total_ops < phase.write_ops


def test_whole_chunk_writes_unaffected_by_cache():
    phase = chunked_phase(request_size=2 * MiB, chunk_size=MiB)
    out = apply_hdf5(phase, hdf5_values(chunk_cache_size=MiB), PLATFORM)
    assert out.data[0].total_bytes == phase.bytes_written
    assert out.data[0].total_ops == phase.write_ops


def test_sieving_coalesces_small_reads():
    # Contiguous (unchunked) small reads: pure data-sieving territory.
    phase = chunked_phase(request_size=16 * 1024, op="read", chunked=False)
    small = apply_hdf5(phase, hdf5_values(sieve_buf_size=64 * 1024), PLATFORM)
    big = apply_hdf5(phase, hdf5_values(sieve_buf_size=16 * MiB), PLATFORM)
    assert big.data[0].total_ops < small.data[0].total_ops
    # Sieving over-reads a little.
    assert big.data[0].total_bytes > phase.bytes_read


def test_alignment_applies_above_half_threshold():
    phase = chunked_phase(request_size=2 * MiB, chunk_size=2 * MiB)
    aligned = apply_hdf5(phase, hdf5_values(alignment=MiB), PLATFORM)
    assert aligned.data[0].alignment == MiB
    tiny = chunked_phase(request_size=64 * 1024, chunk_size=MiB)
    out = apply_hdf5(tiny, hdf5_values(alignment=16 * MiB), PLATFORM)
    assert out.data[0].alignment == 1  # below threshold: not aligned


def meta_phase(ops=8000, n_procs=8):
    return IOPhase(
        name="meta",
        compute_seconds=0.0,
        data=(),
        metadata=MetadataStream(total_ops=ops, n_procs=n_procs, write_fraction=0.5),
    )


def test_collective_metadata_collapses_redundant_ops():
    phase = meta_phase()
    off = apply_hdf5(phase, hdf5_values(), PLATFORM)
    on = apply_hdf5(
        phase, hdf5_values(coll_metadata_ops=True, coll_metadata_write=True), PLATFORM
    )
    assert on.metadata.total_ops < off.metadata.total_ops
    assert on.overhead_seconds > 0  # broadcast cost


def test_mdc_config_changes_surviving_reads():
    phase = meta_phase()
    small = apply_hdf5(phase, hdf5_values(mdc_config="small"), PLATFORM)
    large = apply_hdf5(phase, hdf5_values(mdc_config="large"), PLATFORM)
    assert large.metadata.total_ops < small.metadata.total_ops


def test_meta_block_size_aggregates_writes():
    phase = meta_phase()
    default = apply_hdf5(phase, hdf5_values(), PLATFORM)
    big = apply_hdf5(phase, hdf5_values(meta_block_size=16 * MiB), PLATFORM)
    assert big.metadata.total_ops < default.metadata.total_ops


def test_no_metadata_passthrough():
    phase = chunked_phase(request_size=MiB)
    out = apply_hdf5(phase, hdf5_values(), PLATFORM)
    assert out.metadata is None
