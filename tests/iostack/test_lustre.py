"""Lustre model: striping, RPC efficiency, contention, metadata."""

import pytest

from repro.iostack import StackConfiguration
from repro.iostack.cluster import testbed as make_testbed
from repro.iostack.lustre import serve_lustre, serve_metadata
from repro.iostack.requests import MetadataStream, RequestStream

MiB = 1024 * 1024
PLATFORM = make_testbed(n_nodes=2)


def lustre_values(**overrides):
    values = StackConfiguration.default().layer("lustre")
    values.update(overrides)
    return values


def stream(op="write", size=4 * MiB, ops=2000, procs=8, **kwargs):
    defaults = dict(shared_file=True, contiguity=0.8, interleave=0.4)
    defaults.update(kwargs)
    return RequestStream.uniform(op, size, ops, procs, **defaults)


def test_striping_spreads_over_osts():
    one = serve_lustre(stream(), lustre_values(striping_factor=1), PLATFORM)
    eight = serve_lustre(stream(), lustre_values(striping_factor=8), PLATFORM)
    assert one.osts_used == 1
    assert eight.osts_used == 8
    assert eight.seconds < one.seconds


def test_osts_capped_by_filesystem():
    svc = serve_lustre(stream(), lustre_values(striping_factor=248), PLATFORM)
    assert svc.osts_used == PLATFORM.n_osts


def test_file_per_process_multiplies_objects():
    fpp = serve_lustre(
        stream(shared_file=False, interleave=0.0),
        lustre_values(striping_factor=2),
        PLATFORM,
    )
    assert fpp.osts_used == min(2 * 8, PLATFORM.n_osts)


def test_bigger_stripe_unit_fewer_rpcs():
    small = serve_lustre(stream(), lustre_values(striping_unit=128 * 1024), PLATFORM)
    big = serve_lustre(stream(), lustre_values(striping_unit=4 * MiB), PLATFORM)
    assert big.rpcs_per_request < small.rpcs_per_request


def test_alignment_removes_fractional_crossings():
    # 2.5 MiB requests on 1 MiB stripes: unaligned offsets straddle an
    # extra boundary half the time.
    odd = 5 * MiB // 2
    unaligned = serve_lustre(stream(size=odd), lustre_values(striping_unit=MiB), PLATFORM)
    aligned = serve_lustre(
        stream(size=odd, alignment=4 * MiB), lustre_values(striping_unit=MiB), PLATFORM
    )
    assert aligned.rpcs_per_request < unaligned.rpcs_per_request


def test_interleaved_writes_pay_lock_time():
    calm = serve_lustre(stream(interleave=0.0), lustre_values(striping_factor=8), PLATFORM)
    hot = serve_lustre(stream(interleave=0.9), lustre_values(striping_factor=8), PLATFORM)
    assert hot.seconds > calm.seconds


def test_alignment_reduces_lock_conflicts():
    hot = stream(interleave=0.9)
    base = serve_lustre(hot, lustre_values(striping_factor=8, striping_unit=MiB), PLATFORM)
    aligned = serve_lustre(
        stream(interleave=0.9, alignment=MiB),
        lustre_values(striping_factor=8, striping_unit=MiB),
        PLATFORM,
    )
    assert aligned.seconds < base.seconds


def test_reads_have_no_lock_time_but_contend_on_seeks():
    crowded = serve_lustre(
        stream(op="read", procs=8), lustre_values(striping_factor=1), PLATFORM
    )
    spread = serve_lustre(
        stream(op="read", procs=8), lustre_values(striping_factor=8), PLATFORM
    )
    assert spread.achieved_bandwidth > crowded.achieved_bandwidth


def test_client_ceiling_binds_wide_jobs():
    svc = serve_lustre(
        stream(interleave=0.0, contiguity=1.0),
        lustre_values(striping_factor=248),
        PLATFORM,
    )
    assert svc.bound_by == "client"
    expected = PLATFORM.client_lustre_bandwidth * 2**PLATFORM.client_scaling_exponent
    assert svc.achieved_bandwidth == pytest.approx(expected)


def test_bound_by_labels():
    lock = serve_lustre(
        stream(interleave=1.0, contiguity=0.0, size=16 * MiB),
        lustre_values(striping_factor=1),
        PLATFORM,
    )
    assert lock.bound_by in ("locks", "server")


# -- metadata -----------------------------------------------------------------


def test_metadata_throughput_bound():
    m = MetadataStream(total_ops=100_000, n_procs=1000)
    t = serve_metadata(m, PLATFORM)
    assert t == pytest.approx(100_000 / PLATFORM.mds_throughput)


def test_metadata_latency_bound():
    m = MetadataStream(total_ops=100, n_procs=1)
    t = serve_metadata(m, PLATFORM)
    assert t == pytest.approx(100 * PLATFORM.mds_latency)


def test_metadata_none_is_free():
    assert serve_metadata(None, PLATFORM) == 0.0
