"""MPI-IO collective-buffering model."""

import pytest

from repro.iostack import StackConfiguration
from repro.iostack.cluster import testbed as make_testbed
from repro.iostack.mpiio import apply_mpiio
from repro.iostack.requests import RequestStream

MiB = 1024 * 1024
PLATFORM = make_testbed(n_nodes=2)


def mpiio_values(**overrides):
    values = StackConfiguration.default().layer("mpiio")
    values.update(overrides)
    return values


def small_strided_stream():
    return RequestStream.uniform(
        "write", 256 * 1024, 8000, 8, shared_file=True,
        contiguity=0.5, interleave=0.8,
    )


def test_independent_path_is_identity():
    s = small_strided_stream()
    out = apply_mpiio(s, mpiio_values(romio_collective=False), PLATFORM, MiB)
    assert out.stream is s
    assert not out.collectivised
    assert out.overhead_seconds == 0.0


def test_collective_aggregates_requests():
    s = small_strided_stream()
    out = apply_mpiio(s, mpiio_values(romio_collective=True, cb_nodes=4), PLATFORM, MiB)
    assert out.collectivised
    assert out.stream.total_ops < s.total_ops
    assert out.stream.total_bytes == s.total_bytes  # bytes conserved
    assert out.stream.contiguity == 1.0
    assert out.stream.interleave == 0.0
    assert out.stream.n_procs == 4
    assert out.overhead_seconds > 0.0  # the shuffle


def test_collective_aligns_when_buffer_is_stripe_multiple():
    s = small_strided_stream()
    aligned = apply_mpiio(
        s, mpiio_values(romio_collective=True, cb_buffer_size=16 * MiB), PLATFORM, MiB
    )
    assert aligned.stream.alignment >= MiB
    odd = apply_mpiio(
        s, mpiio_values(romio_collective=True, cb_buffer_size=MiB), PLATFORM, 16 * MiB
    )
    assert odd.stream.alignment == 1


def test_aggregators_capped_by_procs():
    s = small_strided_stream()  # 8 procs
    out = apply_mpiio(
        s, mpiio_values(romio_collective=True, cb_nodes=1024), PLATFORM, MiB
    )
    assert out.stream.n_procs == 8


def test_aggregator_node_spread_recorded():
    s = small_strided_stream()
    out = apply_mpiio(s, mpiio_values(romio_collective=True, cb_nodes=8), PLATFORM, MiB)
    assert out.stream.nodes == min(8, PLATFORM.n_nodes)


def test_non_collective_capable_streams_pass_through():
    s = RequestStream.uniform(
        "write", 100, 100, 8, shared_file=True, collective_capable=False
    )
    out = apply_mpiio(s, mpiio_values(romio_collective=True), PLATFORM, MiB)
    assert not out.collectivised


def test_file_per_process_passes_through():
    s = RequestStream.uniform("write", 100, 100, 8, shared_file=False)
    out = apply_mpiio(s, mpiio_values(romio_collective=True), PLATFORM, MiB)
    assert not out.collectivised


def test_more_aggregator_nodes_shuffle_faster():
    s = small_strided_stream()
    few = apply_mpiio(s, mpiio_values(romio_collective=True, cb_nodes=1), PLATFORM, MiB)
    many = apply_mpiio(s, mpiio_values(romio_collective=True, cb_nodes=2), PLATFORM, MiB)
    assert many.overhead_seconds < few.overhead_seconds
