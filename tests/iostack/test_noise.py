"""Platform volatility model."""

import numpy as np
import pytest

from repro.iostack.noise import NoiseModel


def test_quiet_model_is_exactly_one():
    noise = NoiseModel.quiet()
    assert all(noise.sample_factor() == 1.0 for _ in range(10))


def test_same_seed_same_sequence():
    a = NoiseModel(seed=7)
    b = NoiseModel(seed=7)
    assert [a.sample_factor() for _ in range(20)] == [
        b.sample_factor() for _ in range(20)
    ]


def test_different_seeds_differ():
    a = [NoiseModel(seed=1).sample_factor() for _ in range(5)]
    b = [NoiseModel(seed=2).sample_factor() for _ in range(5)]
    assert a != b


def test_sequence_advances_between_calls():
    noise = NoiseModel(seed=3)
    values = [noise.sample_factor() for _ in range(50)]
    assert len(set(values)) > 40


def test_factors_center_near_one():
    noise = NoiseModel(seed=5, spike_probability=0.0)
    values = np.array([noise.sample_factor() for _ in range(3000)])
    assert 0.95 < np.median(values) < 1.05


def test_spikes_slow_down_only():
    noise = NoiseModel(seed=9, sigma=0.0, spike_probability=0.5, spike_slowdown=3.0)
    values = [noise.sample_factor() for _ in range(500)]
    assert all(v in (1.0, 3.0) for v in values)
    assert any(v == 3.0 for v in values)


def test_validation():
    with pytest.raises(ValueError):
        NoiseModel(sigma=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(spike_probability=1.5)
    with pytest.raises(ValueError):
        NoiseModel(spike_slowdown=0.5)
