"""Platform volatility model."""

import numpy as np
import pytest

from repro.iostack.noise import NoiseModel


def test_quiet_model_is_exactly_one():
    noise = NoiseModel.quiet()
    assert all(noise.sample_factor() == 1.0 for _ in range(10))


def test_same_seed_same_sequence():
    a = NoiseModel(seed=7)
    b = NoiseModel(seed=7)
    assert [a.sample_factor() for _ in range(20)] == [
        b.sample_factor() for _ in range(20)
    ]


def test_different_seeds_differ():
    a = [NoiseModel(seed=1).sample_factor() for _ in range(5)]
    b = [NoiseModel(seed=2).sample_factor() for _ in range(5)]
    assert a != b


def test_sequence_advances_between_calls():
    noise = NoiseModel(seed=3)
    values = [noise.sample_factor() for _ in range(50)]
    assert len(set(values)) > 40


def test_factors_center_near_one():
    noise = NoiseModel(seed=5, spike_probability=0.0)
    values = np.array([noise.sample_factor() for _ in range(3000)])
    assert 0.95 < np.median(values) < 1.05


def test_spikes_slow_down_only():
    noise = NoiseModel(seed=9, sigma=0.0, spike_probability=0.5, spike_slowdown=3.0)
    values = [noise.sample_factor() for _ in range(500)]
    assert all(v in (1.0, 3.0) for v in values)
    assert any(v == 3.0 for v in values)


def test_validation():
    with pytest.raises(ValueError):
        NoiseModel(sigma=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(spike_probability=1.5)
    with pytest.raises(ValueError):
        NoiseModel(spike_slowdown=0.5)


# -- vectorized sampling (sequence contract) ------------------------------------


def test_sample_factors_matches_sequential_calls():
    vec = NoiseModel(seed=13)
    seq = NoiseModel(seed=13)
    batch = vec.sample_factors(25)
    singles = np.array([seq.sample_factor() for _ in range(25)])
    assert np.array_equal(batch, singles)


def test_sample_factors_advances_counter_like_n_calls():
    a = NoiseModel(seed=13)
    b = NoiseModel(seed=13)
    a.sample_factors(7)
    for _ in range(7):
        b.sample_factor()
    assert a.sample_factor() == b.sample_factor()


def test_interleaved_batches_and_singles_form_one_stream():
    mixed = NoiseModel(seed=4)
    plain = NoiseModel(seed=4)
    got = [mixed.sample_factor()]
    got.extend(mixed.sample_factors(5))
    got.append(mixed.sample_factor())
    got.extend(mixed.sample_factors(3))
    assert got == [plain.sample_factor() for _ in range(10)]


def test_quiet_sample_factors_is_ones_and_consumes_counter():
    noise = NoiseModel.quiet()
    assert np.array_equal(noise.sample_factors(6), np.ones(6))
    assert noise._counter == 6


def test_sample_factors_zero_and_negative():
    noise = NoiseModel(seed=1)
    assert noise.sample_factors(0).shape == (0,)
    assert noise._counter == 0
    with pytest.raises(ValueError):
        noise.sample_factors(-1)


# -- clone / spawn --------------------------------------------------------------


def test_clone_replays_from_current_position():
    original = NoiseModel(seed=6)
    original.sample_factors(5)
    copy = original.clone()
    rest_of_copy = [copy.sample_factor() for _ in range(5)]
    rest_of_original = [original.sample_factor() for _ in range(5)]
    assert rest_of_copy == rest_of_original


def test_clone_does_not_advance_the_original():
    original = NoiseModel(seed=6)
    expected = NoiseModel(seed=6).sample_factor()
    original.clone().sample_factors(10)
    assert original.sample_factor() == expected


def test_spawn_streams_are_decorrelated_and_reproducible():
    base = NoiseModel(seed=3)
    s1 = [base.spawn(1).sample_factor() for _ in range(5)]
    s2 = [base.spawn(2).sample_factor() for _ in range(5)]
    s1_again = [base.spawn(1).sample_factor() for _ in range(5)]
    assert s1 == s1_again
    assert s1 != s2
    assert s1 != [NoiseModel(seed=3).sample_factor() for _ in range(5)]


def test_spawn_zero_restarts_own_sequence():
    base = NoiseModel(seed=3)
    base.sample_factors(10)  # advance the parent
    restarted = base.spawn(0)
    assert restarted.sample_factor() == NoiseModel(seed=3).sample_factor()


def test_spawn_keeps_volatility_shape():
    base = NoiseModel(sigma=0.3, spike_probability=0.1, spike_slowdown=4.0, seed=1)
    child = base.spawn(5)
    assert (child.sigma, child.spike_probability, child.spike_slowdown) == (
        0.3, 0.1, 4.0,
    )
    assert child._counter == 0


def test_spawn_rejects_negative_stream():
    with pytest.raises(ValueError):
        NoiseModel(seed=1).spawn(-1)
