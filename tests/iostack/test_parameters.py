"""Parameter definitions, the tuned space and Figure 1 catalogs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.iostack.parameters import (
    LIBRARY_CATALOG,
    TUNED_SPACE,
    LibraryCatalog,
    Parameter,
    ParameterSpace,
    stack_permutations,
)


# -- Parameter ---------------------------------------------------------------


def make_param(values=(1, 2, 4, 8), default=1, kind="ordinal"):
    return Parameter("p", "hdf5", tuple(values), default, kind=kind)


def test_parameter_validates_default_membership():
    with pytest.raises(ValueError):
        make_param(values=(1, 2), default=3)


def test_parameter_rejects_duplicates():
    with pytest.raises(ValueError):
        make_param(values=(1, 1, 2))


def test_parameter_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_param(kind="fuzzy")


def test_parameter_rejects_unknown_layer():
    with pytest.raises(ValueError):
        Parameter("p", "nfs", (1, 2), 1)


def test_index_of_and_default_index():
    p = make_param(values=(10, 20, 30), default=20)
    assert p.index_of(30) == 2
    assert p.default_index == 1
    with pytest.raises(ValueError):
        p.index_of(99)


def test_sample_returns_candidate(rng):
    p = make_param()
    for _ in range(20):
        assert p.sample(rng) in p.values


def test_ordinal_neighbor_moves_are_mostly_adjacent(rng):
    p = make_param(values=tuple(range(16)), default=0)
    moves = [abs(p.neighbor_index(8, rng) - 8) for _ in range(500)]
    adjacent = sum(1 for m in moves if m == 1)
    assert adjacent > 400  # ~95% adjacent
    assert all(0 <= p.neighbor_index(i, rng) < 16 for i in range(16) for _ in range(3))


def test_boolean_neighbor_always_flips(rng):
    p = Parameter("b", "hdf5", (False, True), False, kind="boolean")
    assert all(p.neighbor_index(0, rng) == 1 for _ in range(10))
    assert all(p.neighbor_index(1, rng) == 0 for _ in range(10))


def test_neighbor_index_bounds_checked(rng):
    p = make_param()
    with pytest.raises(IndexError):
        p.neighbor_index(99, rng)


# -- ParameterSpace ------------------------------------------------------------


def test_tuned_space_has_twelve_parameters():
    assert len(TUNED_SPACE) == 12
    assert len(set(TUNED_SPACE.names)) == 12


def test_tuned_space_permutations_match_paper_claim():
    # "a search space of over 2.18 billion permutations"
    assert TUNED_SPACE.permutations() > 2_180_000_000


def test_tuned_space_covers_all_three_layers():
    layers = {p.layer for p in TUNED_SPACE}
    assert layers == {"hdf5", "mpiio", "lustre"}


def test_space_lookup_by_name_and_index():
    p = TUNED_SPACE["striping_factor"]
    assert p.layer == "lustre"
    assert TUNED_SPACE[TUNED_SPACE.index_of_name("striping_factor")] is p
    assert "striping_factor" in TUNED_SPACE
    assert "bogus" not in TUNED_SPACE


def test_encode_decode_roundtrip_defaults():
    values = TUNED_SPACE.default_values()
    genome = TUNED_SPACE.encode(values)
    assert TUNED_SPACE.decode(genome) == values


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_encode_decode_roundtrip_random(seed):
    rng = np.random.default_rng(seed)
    values = TUNED_SPACE.random_values(rng)
    genome = TUNED_SPACE.encode(values)
    assert TUNED_SPACE.decode(genome) == values
    norm = TUNED_SPACE.normalized(genome)
    assert norm.shape == (len(TUNED_SPACE),)
    assert np.all(norm >= 0) and np.all(norm <= 1)


def test_decode_rejects_wrong_length():
    with pytest.raises(ValueError):
        TUNED_SPACE.decode([0, 1])


def test_subset_preserves_space_order():
    sub = TUNED_SPACE.subset(["cb_nodes", "sieve_buf_size"])
    assert sub.names == ("sieve_buf_size", "cb_nodes")  # genome order
    with pytest.raises(KeyError):
        TUNED_SPACE.subset(["nope"])


def test_duplicate_names_rejected():
    p = make_param()
    with pytest.raises(ValueError):
        ParameterSpace([p, p])


# -- Figure 1 catalogs -----------------------------------------------------------


def test_catalog_contains_paper_libraries():
    assert set(LIBRARY_CATALOG) == {
        "HDF5", "PNetCDF", "MPI", "ADIOS", "OpenSHMEMX", "Hermes"
    }


def test_catalog_permutation_rule():
    cat = LibraryCatalog("X", discrete=3, continuous=2)
    assert cat.permutations() == 2**3 * 5**2
    assert cat.permutations(per_discrete=3, per_continuous=2) == 3**3 * 2**2
    assert cat.total_parameters == 5
    with pytest.raises(ValueError):
        cat.permutations(per_discrete=0)


def test_stack_permutations_multiply():
    single = stack_permutations(["HDF5"])
    double = stack_permutations(["HDF5", "MPI"])
    assert double == single * stack_permutations(["MPI"])
    # The paper quotes ~3.81e21 for HDF5+MPI; ours is the same order.
    assert 1e20 < double < 1e23


def test_stack_permutations_unknown_library():
    with pytest.raises(KeyError):
        stack_permutations(["HDF5", "GPFS"])
