"""IOPhase aggregation and transforms."""

import pytest

from repro.iostack.phase import IOPhase
from repro.iostack.requests import MetadataStream, RequestStream


def make_phase(compute=5.0, tier="lustre"):
    w = RequestStream.uniform("write", 1000, 100, 4)
    r = RequestStream.uniform("read", 500, 50, 4)
    m = MetadataStream(total_ops=40, n_procs=4)
    return IOPhase(
        name="p",
        compute_seconds=compute,
        data=(w, r),
        metadata=m,
        chunked=True,
        chunk_size=4096,
        working_set_per_proc=8192,
        tier=tier,
    )


def test_phase_totals():
    p = make_phase()
    assert p.bytes_written == 100_000
    assert p.bytes_read == 25_000
    assert p.write_ops == 100
    assert p.read_ops == 50


def test_phase_validation():
    with pytest.raises(ValueError):
        make_phase(compute=-1.0)
    with pytest.raises(ValueError):
        make_phase(tier="tape")
    with pytest.raises(ValueError):
        IOPhase(name="x", compute_seconds=0.0, data=(), chunked=True, chunk_size=0)


def test_scaled_scales_io_and_compute():
    p = make_phase(compute=10.0)
    half = p.scaled(0.5)
    assert half.write_ops == 50
    assert half.bytes_written == 50_000
    assert half.compute_seconds == pytest.approx(5.0)
    assert half.metadata.total_ops == 20


def test_scaled_with_separate_compute_factor():
    p = make_phase(compute=10.0)
    s = p.scaled(0.5, compute_factor=1.0)
    assert s.compute_seconds == pytest.approx(10.0)
    assert s.write_ops == 50


def test_switched_to_memory():
    p = make_phase()
    m = p.switched_to_memory()
    assert m.tier == "memory"
    assert p.tier == "lustre"  # original untouched
    assert m.bytes_written == p.bytes_written


def test_empty_data_phase_is_legal():
    p = IOPhase(name="compute_only", compute_seconds=3.0, data=())
    assert p.bytes_written == 0 and p.read_ops == 0
